//! Disk-spill storage for shards of the blocking index.
//!
//! ROADMAP names "spill cold shards to disk / mmap" as the next scale step after the
//! in-memory sharded layout: a streaming corpus eventually exceeds RAM, but most shards
//! are *cold* — they hold old rows that rarely win a top-k slot. This module gives every
//! shard matrix a [`ShardStorage`] home with two states:
//!
//! * [`ShardStorage::Resident`] — the row-major [`Matrix`] in memory (the only state
//!   that existed before this layer);
//! * [`ShardStorage::Spilled`] — the same matrix serialized to a compact on-disk file
//!   ([`SpilledShard`]), read back on demand when a query actually needs the shard.
//!
//! Which shards spill is decided by [`crate::ShardedCosineIndex`]'s residency budget
//! after `compact()` (least-recently-used shards go first); which spilled shards are
//! ever *read back* is decided by the routing statistics of [`crate::routing`] — a shard
//! whose cosine upper bound cannot enter the current top-k is skipped without touching
//! disk, which is what makes spilling and routing multiplicative.
//!
//! ## On-disk format
//!
//! A spill file is the shard matrix and nothing else, laid out for a single sequential
//! read:
//!
//! ```text
//! offset  size           field
//! 0       8              magic  b"SWSHARD1" (version baked into the magic)
//! 8       8              rows   (u64, little endian)
//! 16      8              cols   (u64, little endian)
//! 24      rows*cols*4    row-major f32 data, little endian
//! end-4   4              CRC-32 (ISO-HDLC) of every preceding byte, little endian
//! ```
//!
//! The payload is the matrix buffer bit-for-bit (including the zero padding rows up to
//! the SIMD row-quad width), so a spilled-then-faulted shard scores queries **bit
//! identically** to its resident twin — the dense/sharded equivalence contract survives
//! spilling. The CRC trailer is verified on every fault, so silent on-disk corruption
//! (a flipped bit, a truncated-then-padded file) surfaces as a typed [`StorageError`]
//! instead of wrong similarity scores. Files live in a per-index temporary directory
//! ([`SpillDir`]) that is removed when the index is dropped; individual files are
//! removed as soon as their shard is repacked or faulted back to residency.
//!
//! The same format doubles as the per-shard **payload format of persistent snapshots**
//! ([`crate::snapshot`]): a snapshot shard file is byte-identical to a spill file, so a
//! spilled shard is snapshotted with a plain file copy (no deserialization), and a
//! snapshot-loaded shard is served through the exact same fault path — just via a
//! non-owning handle ([`SpilledShard::open`]) that never deletes the snapshot.
//!
//! ## Quantized payloads (`SWSHARDQ1`)
//!
//! A shard quantized by [`QuantizedMatrix::quantize`] (i8 codes with one f32 scale per
//! row) spills and snapshots into a second format that carries **both tiers** of the
//! two-stage scan — the i8 codes the approximate scan reads and the exact f32 rows the
//! rescore tier reads, so a quantized shard still answers queries bit-identically:
//!
//! ```text
//! offset            size           field
//! 0                 9              magic  b"SWSHARDQ1"
//! 9                 7              zero padding (keeps every later field 4-byte aligned)
//! 16                8              rows   (u64, little endian)
//! 24                8              cols   (u64, little endian)
//! 32                4              max_err_norm (f32 LE, see `QuantizedMatrix`)
//! 36                4              max_row_norm (f32 LE)
//! 40                rows*4         per-row scales (f32 LE)
//! 40+4r             rows*cols*4    exact row-major f32 payload (bit-for-bit)
//! 40+4r+4rc         rows*cols      i8 codes, row-major
//! end-4             4              CRC-32 (ISO-HDLC) of every preceding byte
//! ```
//!
//! The exact payload sits at a 4-byte-aligned offset so the mmap query path
//! ([`MappedQuantShard`]) reinterprets it in place exactly like `SWSHARD1`; the codes
//! and scales are decoded into a small heap copy once per handle ([`QuantSpilledShard`])
//! — a quarter the bytes of the f32 payload, which is the whole memory-density point.
//! Torn or corrupt `SWSHARDQ1` files fail with the same typed [`StorageError`]s as
//! `SWSHARD1`, so snapshot loads quarantine them identically.
//!
//! ## Failure model
//!
//! Every fault path returns a typed [`StorageError`] naming the file (and, one layer
//! up, the shard id) instead of panicking: a vanished spill file or a corrupt payload
//! degrades the query that needed it, never the process. [`SpilledShard::load_retrying`]
//! wraps the single-attempt read with a short exponential backoff for transient
//! failures; callers that still fail after the retries quarantine the shard (see
//! [`crate::ShardedCosineIndex`]). The fault-injection points of this module
//! (`spill.read.io_err`, `spill.write.io_err`, `snapshot.payload.torn`) are armed
//! through [`sudowoodo_faults`] and compile to one relaxed atomic load when disarmed.

use std::borrow::Cow;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sudowoodo_faults as faults;
use sudowoodo_nn::matrix::{Matrix, MatrixView};

/// Magic prefix of a spill file; the trailing `1` is the format version.
const MAGIC: &[u8; 8] = b"SWSHARD1";

/// Byte length of the spill-file header (magic + rows + cols).
const HEADER_LEN: usize = 8 + 8 + 8;

/// Byte length of the CRC-32 trailer at the end of a spill file.
const TRAILER_LEN: usize = 4;

/// Read attempts a retrying fault makes in total (1 initial + 3 backoff retries).
/// Strictly below [`faults::SUPPRESS_WINDOW`], so a probabilistically injected read
/// fault always recovers within one retry loop.
pub(crate) const FAULT_ATTEMPTS: u32 = 4;

/// Sleeps the exponential fault-retry backoff for 0-based retry number `retry`
/// (1ms, 2ms, 4ms, ...). Shared by every retry loop in the crate so the policy
/// cannot drift between the storage and query layers.
pub(crate) fn fault_backoff(retry: u32) {
    std::thread::sleep(Duration::from_millis(1u64 << retry.min(6)));
}

// ---- CRC-32 (ISO-HDLC) ---------------------------------------------------------------

/// The reflected CRC-32 lookup table (polynomial 0xEDB88320), built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32/ISO-HDLC (the zlib/PNG checksum) — std-only, table-driven.
/// Shared by the spill-file payloads and the snapshot manifest.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub(crate) fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub(crate) fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice (see [`Crc32`]).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

// ---- typed errors --------------------------------------------------------------------

/// What went wrong inside a [`StorageError`].
#[derive(Debug)]
pub enum StorageErrorKind {
    /// The underlying I/O operation failed (file vanished, permission, injected fault).
    Io(io::Error),
    /// The bytes on disk are not a valid payload (bad magic, shape mismatch, CRC
    /// mismatch, wrong length). Retrying cannot help; the file must be quarantined.
    Corrupt(String),
}

/// A typed fault from the spill/snapshot storage layer: which file failed, which shard
/// it backed (when known), and how. Replaces the panics these paths used to take —
/// callers retry, quarantine, or surface the error, but the process survives.
#[derive(Debug)]
pub struct StorageError {
    path: PathBuf,
    shard: Option<usize>,
    kind: StorageErrorKind,
}

impl StorageError {
    pub(crate) fn io(path: &Path, err: io::Error) -> StorageError {
        StorageError {
            path: path.to_path_buf(),
            shard: None,
            kind: StorageErrorKind::Io(err),
        }
    }

    pub(crate) fn corrupt(path: &Path, what: impl Into<String>) -> StorageError {
        StorageError {
            path: path.to_path_buf(),
            shard: None,
            kind: StorageErrorKind::Corrupt(what.into()),
        }
    }

    /// Attaches the shard id the failing file was backing (for messages and reports).
    pub fn with_shard(mut self, shard: usize) -> StorageError {
        self.shard = Some(shard);
        self
    }

    /// The file that failed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shard the file was backing, when the caller attached it.
    pub fn shard(&self) -> Option<usize> {
        self.shard
    }

    /// What went wrong.
    pub fn kind(&self) -> &StorageErrorKind {
        &self.kind
    }

    /// `true` when the bytes on disk are invalid (retrying cannot help).
    pub fn is_corrupt(&self) -> bool {
        matches!(self.kind, StorageErrorKind::Corrupt(_))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shard {
            Some(i) => write!(f, "shard {i} payload {}: ", self.path.display())?,
            None => write!(f, "payload {}: ", self.path.display())?,
        }
        match &self.kind {
            StorageErrorKind::Io(e) => write!(f, "{e}"),
            StorageErrorKind::Corrupt(what) => write!(f, "corrupt: {what}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            StorageErrorKind::Io(e) => Some(e),
            StorageErrorKind::Corrupt(_) => None,
        }
    }
}

impl From<StorageError> for io::Error {
    /// Keeps `?` working in `io::Result` contexts (the snapshot loader): corruption
    /// maps to [`io::ErrorKind::InvalidData`], I/O faults keep their kind.
    fn from(err: StorageError) -> io::Error {
        let kind = match &err.kind {
            StorageErrorKind::Io(e) => e.kind(),
            StorageErrorKind::Corrupt(_) => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, err.to_string())
    }
}

/// Removes a path best-effort without ever panicking — Drop-path cleanup must not
/// double-panic while the thread is already unwinding.
fn remove_quietly(path: &Path, dir: bool) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if dir {
            let _ = fs::remove_dir_all(path);
        } else {
            let _ = fs::remove_file(path);
        }
    }));
    drop(result); // cleanup is best-effort; a leaked temp path never takes the process down
}

/// A per-index temporary directory holding spill files.
///
/// Cloning shares the directory (spilled shards keep it alive through their own
/// handles); the directory and anything left in it are removed when the last handle
/// drops. Creation is lazy in [`crate::ShardedCosineIndex`] — an index that never
/// spills never touches the filesystem.
#[derive(Clone, Debug)]
pub struct SpillDir {
    inner: Arc<SpillDirInner>,
}

#[derive(Debug)]
struct SpillDirInner {
    path: PathBuf,
    next_file: AtomicU64,
}

impl Drop for SpillDirInner {
    fn drop(&mut self) {
        // Best-effort, panic-safe cleanup; `Drop` may run during an unwind and a
        // second panic here would abort the process.
        remove_quietly(&self.path, true);
    }
}

impl SpillDir {
    /// Creates a fresh, uniquely named spill directory under the system temp dir.
    pub fn create() -> io::Result<SpillDir> {
        static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("sudowoodo-spill-{}-{n}", std::process::id()));
        fs::create_dir_all(&path)?;
        Ok(SpillDir {
            inner: Arc::new(SpillDirInner {
                path,
                next_file: AtomicU64::new(0),
            }),
        })
    }

    /// The directory path (for diagnostics; contents are managed by the index).
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Reserves a fresh file path inside the directory (paths are never reused, so a
    /// shard spilled after a repack can never collide with a stale file).
    fn next_path(&self) -> PathBuf {
        let n = self.inner.next_file.fetch_add(1, Ordering::Relaxed);
        self.inner.path.join(format!("shard-{n}.bin"))
    }
}

/// One shard matrix serialized to disk (see the module docs for the format).
///
/// Comes in two ownership flavours:
///
/// * **Owning** ([`SpilledShard::write`]) — a spill file under a [`SpillDir`]; the file
///   is deleted when the `SpilledShard` drops (shard repacked, faulted back to
///   residency, or index dropped).
/// * **Non-owning** ([`SpilledShard::open`]) — a payload file of a persistent snapshot
///   ([`crate::snapshot`]); the handle reads it on demand but never deletes it, so one
///   snapshot directory can back any number of loaded indexes (across processes).
#[derive(Debug)]
pub struct SpilledShard {
    /// Keeps the spill directory alive as long as any owned file in it exists (never
    /// read — the handle's `Drop` ordering is its whole job). `None` for non-owning
    /// snapshot-backed handles.
    _dir: Option<SpillDir>,
    path: PathBuf,
    /// Whether the file is deleted when this handle drops.
    owns_file: bool,
    rows: usize,
    cols: usize,
    /// The query-path memory mapping, established (and CRC-verified) once on first
    /// use. A failed map is never cached — the next query retries from scratch, so a
    /// transient fault costs retries, never a permanently broken shard.
    #[cfg(all(unix, target_endian = "little"))]
    map: OnceLock<MappedShard>,
}

impl Drop for SpilledShard {
    fn drop(&mut self) {
        if self.owns_file {
            remove_quietly(&self.path, false);
        }
    }
}

/// Serializes `matrix` into the spill-file format at `path` (see the module docs),
/// streaming in bounded chunks so writing a large shard never doubles its memory
/// footprint, and appending the CRC-32 trailer. Shared by the transient spill path and
/// the snapshot writer.
///
/// Failpoint `snapshot.payload.torn`: writes the header plus roughly half the payload
/// and errors out without the trailer — the on-disk shape of a crash mid-write.
pub(crate) fn write_matrix_file(path: &Path, matrix: &Matrix) -> io::Result<()> {
    let torn = faults::fires("snapshot.payload.torn");
    let mut file = io::BufWriter::new(fs::File::create(path)?);
    let mut crc = Crc32::new();
    let mut put = |file: &mut io::BufWriter<fs::File>, bytes: &[u8]| -> io::Result<()> {
        crc.update(bytes);
        file.write_all(bytes)
    };
    put(&mut file, MAGIC)?;
    put(&mut file, &(matrix.rows() as u64).to_le_bytes())?;
    put(&mut file, &(matrix.cols() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(16 * 1024);
    let data = matrix.data();
    let keep = if torn { data.len() / 2 } else { data.len() };
    for chunk in data[..keep].chunks(4 * 1024) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        put(&mut file, &buf)?;
    }
    if torn {
        file.flush()?;
        return Err(io::Error::other(
            "failpoint snapshot.payload.torn: simulated crash mid-payload",
        ));
    }
    file.write_all(&crc.finish().to_le_bytes())?;
    file.flush()
}

impl SpilledShard {
    /// Serializes `matrix` into a fresh file under `dir`. The returned handle owns the
    /// file and deletes it on drop.
    ///
    /// Failpoint `spill.write.io_err`: fails before touching the filesystem (the shard
    /// simply stays resident — spilling is an optimization).
    pub fn write(dir: &SpillDir, matrix: &Matrix) -> io::Result<SpilledShard> {
        if faults::fires("spill.write.io_err") {
            return Err(io::Error::other(
                "failpoint spill.write.io_err: injected spill-write failure",
            ));
        }
        let path = dir.next_path();
        write_matrix_file(&path, matrix)?;
        Ok(SpilledShard {
            _dir: Some(dir.clone()),
            path,
            owns_file: true,
            rows: matrix.rows(),
            cols: matrix.cols(),
            #[cfg(all(unix, target_endian = "little"))]
            map: OnceLock::new(),
        })
    }

    /// Opens an existing payload file (a snapshot shard) **without taking ownership**:
    /// the file is read back on demand exactly like a spill file, but never deleted by
    /// this handle.
    ///
    /// `rows`/`cols` are the shape recorded in the snapshot manifest; the file's own
    /// header and CRC are verified against them on every [`SpilledShard::load`]. The
    /// file length is checked here so a truncated snapshot fails at load time, not
    /// mid-query.
    pub fn open(path: PathBuf, rows: usize, cols: usize) -> Result<SpilledShard, StorageError> {
        let expected = (HEADER_LEN + rows * cols * 4 + TRAILER_LEN) as u64;
        let actual = fs::metadata(&path)
            .map_err(|e| StorageError::io(&path, e))?
            .len();
        if actual != expected {
            return Err(StorageError::corrupt(
                &path,
                format!("{actual} bytes on disk, expected {expected} for a {rows}x{cols} shard"),
            ));
        }
        Ok(Self::open_unchecked(path, rows, cols))
    }

    /// Like [`SpilledShard::open`] but without touching the filesystem — for building
    /// a **quarantined** shard over a payload that already failed validation, so the
    /// rest of a snapshot can load and serve around it.
    pub(crate) fn open_unchecked(path: PathBuf, rows: usize, cols: usize) -> SpilledShard {
        SpilledShard {
            _dir: None,
            path,
            owns_file: false,
            rows,
            cols,
            #[cfg(all(unix, target_endian = "little"))]
            map: OnceLock::new(),
        }
    }

    /// Copies the serialized payload to `dest` without deserializing it — how a spilled
    /// shard snapshots without faulting into memory. Copying a file onto itself (saving
    /// a snapshot-loaded index back into its own directory) is a no-op.
    pub(crate) fn copy_to(&self, dest: &Path) -> io::Result<()> {
        if same_file(&self.path, dest) {
            return Ok(());
        }
        fs::copy(&self.path, dest).map(|_| ())
    }

    /// Reads the shard matrix back, verifying the header against the recorded shape and
    /// the CRC-32 trailer against every preceding byte.
    ///
    /// The returned matrix is bit-for-bit the one passed to [`SpilledShard::write`].
    ///
    /// Failpoint `spill.read.io_err`: fails the attempt before opening the file (the
    /// transient-fault shape: NFS hiccup, EINTR storm, evicted page).
    pub fn load(&self) -> Result<Matrix, StorageError> {
        if faults::fires("spill.read.io_err") {
            return Err(StorageError::io(
                &self.path,
                io::Error::other("failpoint spill.read.io_err: injected spill-read failure"),
            ));
        }
        let ioerr = |e| StorageError::io(&self.path, e);
        let mut file = io::BufReader::new(fs::File::open(&self.path).map_err(ioerr)?);
        let mut crc = Crc32::new();
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header).map_err(ioerr)?;
        crc.update(&header);
        let corrupt = |what: &str| StorageError::corrupt(&self.path, what);
        if &header[..8] != MAGIC {
            return Err(corrupt("bad magic (not a Sudowoodo shard spill file)"));
        }
        let rows = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let cols = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        if (rows, cols) != (self.rows, self.cols) {
            return Err(corrupt("header shape disagrees with the index metadata"));
        }
        let mut bytes = vec![0u8; rows * cols * 4];
        file.read_exact(&mut bytes).map_err(ioerr)?;
        crc.update(&bytes);
        let mut trailer = [0u8; TRAILER_LEN];
        file.read_exact(&mut trailer).map_err(ioerr)?;
        if u32::from_le_bytes(trailer) != crc.finish() {
            return Err(corrupt(
                "CRC-32 mismatch (the payload bytes changed since they were written)",
            ));
        }
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// [`SpilledShard::load`] with a short exponential backoff (1/2/4 ms) for transient
    /// I/O faults. Corruption ([`StorageError::is_corrupt`]) is **not** retried — the
    /// bytes will not improve; the caller should quarantine the shard.
    pub fn load_retrying(&self) -> Result<Matrix, StorageError> {
        let mut last = None;
        for retry in 0..FAULT_ATTEMPTS {
            if retry > 0 {
                fault_backoff(retry - 1);
            }
            match self.load() {
                Ok(matrix) => return Ok(matrix),
                Err(e) if e.is_corrupt() => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Rows of the serialized matrix (including zero padding rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the serialized matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The on-disk location of the payload (diagnostics; the file is managed by this
    /// handle when owned, by the snapshot directory otherwise).
    pub fn file_path(&self) -> &Path {
        &self.path
    }

    /// The shared, validated memory mapping of this payload, established on first
    /// use (see [`MappedShard`]). Failures are **never cached**: a transiently
    /// unmappable file is retried from scratch by the next query, exactly like the
    /// copying fault path.
    #[cfg(all(unix, target_endian = "little"))]
    pub fn mapped(&self) -> Result<&MappedShard, StorageError> {
        if let Some(mapped) = self.map.get() {
            return Ok(mapped);
        }
        let fresh = self.map_retrying()?;
        // A concurrent query may have won the race; the loser's mapping is munmapped
        // harmlessly (read-only, MAP_SHARED — dropping a duplicate changes nothing).
        Ok(self.map.get_or_init(|| fresh))
    }

    /// [`SpilledShard::map_file`] with the shared fault-retry backoff (mirroring
    /// [`SpilledShard::load_retrying`]); corruption is not retried.
    #[cfg(all(unix, target_endian = "little"))]
    fn map_retrying(&self) -> Result<MappedShard, StorageError> {
        let mut last = None;
        for retry in 0..FAULT_ATTEMPTS {
            if retry > 0 {
                fault_backoff(retry - 1);
            }
            match self.map_file() {
                Ok(mapped) => return Ok(mapped),
                Err(e) if e.is_corrupt() => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Maps the payload file read-only and validates it **once**: length against the
    /// recorded shape, magic, header shape, and the CRC-32 trailer over every
    /// preceding byte — the same checks [`SpilledShard::load`] performs per fault,
    /// paid a single time for the lifetime of the mapping.
    ///
    /// Failpoint `spill.read.io_err`: fails the attempt before opening the file,
    /// exactly like the copying read path, so the chaos suites exercise both.
    #[cfg(all(unix, target_endian = "little"))]
    fn map_file(&self) -> Result<MappedShard, StorageError> {
        if faults::fires("spill.read.io_err") {
            return Err(StorageError::io(
                &self.path,
                io::Error::other("failpoint spill.read.io_err: injected spill-read failure"),
            ));
        }
        let ioerr = |e| StorageError::io(&self.path, e);
        let corrupt = |what: &str| StorageError::corrupt(&self.path, what);
        let file = fs::File::open(&self.path).map_err(ioerr)?;
        let expected = HEADER_LEN + self.rows * self.cols * 4 + TRAILER_LEN;
        let actual = file.metadata().map_err(ioerr)?.len();
        if actual != expected as u64 {
            return Err(corrupt(&format!(
                "{actual} bytes on disk, expected {expected} for a {}x{} shard",
                self.rows, self.cols
            )));
        }
        let mapped = MappedShard::map(&file, expected, self.rows, self.cols).map_err(ioerr)?;
        let bytes = mapped.bytes();
        if &bytes[..8] != MAGIC {
            return Err(corrupt("bad magic (not a Sudowoodo shard spill file)"));
        }
        let rows = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let cols = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        if (rows, cols) != (self.rows, self.cols) {
            return Err(corrupt("header shape disagrees with the index metadata"));
        }
        let body = &bytes[..expected - TRAILER_LEN];
        let trailer: [u8; TRAILER_LEN] = bytes[expected - TRAILER_LEN..].try_into().unwrap();
        if u32::from_le_bytes(trailer) != crc32(body) {
            return Err(corrupt(
                "CRC-32 mismatch (the payload bytes changed since they were written)",
            ));
        }
        Ok(mapped)
    }
}

/// A read-only `mmap(2)` of one `SWSHARD1` payload file, shared across every index
/// (and every *process*) serving the same snapshot: the faulted pages live in the OS
/// page cache once, instead of one heap copy per process per query tile. The header,
/// shape, and CRC-32 trailer are verified a single time when the mapping is
/// established ([`SpilledShard::mapped`]); after that a query borrows the `f32`
/// payload directly out of the mapping with zero copies.
///
/// Only built on little-endian Unix — the on-disk floats are little-endian, so the
/// bytes can be reinterpreted in place; elsewhere the query path transparently falls
/// back to the copying [`SpilledShard::load_retrying`] fault.
///
/// The payload offset (`HEADER_LEN` = 24) is 4-byte aligned from the page-aligned
/// mapping base, so the `f32` reinterpretation is always aligned.
#[cfg(all(unix, target_endian = "little"))]
#[derive(Debug)]
pub struct MappedShard {
    ptr: *const u8,
    len: usize,
    rows: usize,
    cols: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime and the
// backing snapshot/spill files are never rewritten in place (spill paths are never
// reused; snapshots are write-once), so concurrent reads from any thread are safe.
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Send for MappedShard {}
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Sync for MappedShard {}

#[cfg(all(unix, target_endian = "little"))]
mod sys {
    //! The two `mmap(2)` symbols this module needs, declared directly against libc
    //! (which `std` already links) — no new dependency, per the workspace's offline
    //! build constraint.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 0x01;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl MappedShard {
    /// Maps `len` bytes of `file` read-only and shared. `len` is never 0 here (every
    /// payload carries at least its 28 header + trailer bytes).
    fn map(file: &fs::File, len: usize, rows: usize, cols: usize) -> io::Result<MappedShard> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: a fresh PROT_READ/MAP_SHARED mapping of a file we hold open; the
        // kernel validates the fd and length, and failure is reported via MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedShard {
            ptr: ptr as *const u8,
            len,
            rows,
            cols,
        })
    }

    /// The whole mapped file, header and trailer included.
    fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live mapping of exactly `len` bytes (established in
        // `map`, released only in `Drop`).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The row-major `f32` payload, borrowed straight out of the page cache.
    pub fn data(&self) -> &[f32] {
        // SAFETY: the payload spans `rows * cols` little-endian f32s starting at the
        // 4-byte-aligned HEADER_LEN offset of the `len`-byte mapping (length was
        // validated at map time); every bit pattern is a valid f32.
        unsafe {
            std::slice::from_raw_parts(
                self.ptr.add(HEADER_LEN) as *const f32,
                self.rows * self.cols,
            )
        }
    }

    /// The payload as a borrowed matrix view for the scoring kernels.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(self.rows, self.cols, self.data())
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl Drop for MappedShard {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact region `map` established; the pointer is never
        // used again (self is being dropped).
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

/// `true` when the two paths resolve to the same existing file or directory (a path
/// that does not exist yet is never "the same"). Shared with [`crate::snapshot`] so
/// the canonicalize-and-compare logic cannot drift between the spill and save paths.
pub(crate) fn same_file(a: &Path, b: &Path) -> bool {
    match (fs::canonicalize(a), fs::canonicalize(b)) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => false,
    }
}

// ---- i8 quantization -----------------------------------------------------------------

/// Magic prefix of a quantized payload file; the trailing `1` is the format version.
const QMAGIC: &[u8; 9] = b"SWSHARDQ1";

/// Byte length of the quantized-file header: magic (9) + zero pad (7) + rows (8) +
/// cols (8) + max_err_norm (4) + max_row_norm (4). A multiple of 4, so the scales and
/// the exact f32 payload that follow are 4-byte aligned from the page-aligned mmap base.
const QHEADER_LEN: usize = 9 + 7 + 8 + 8 + 4 + 4;

/// Total on-disk length of a quantized payload for a `rows x cols` shard.
fn quant_file_len(rows: usize, cols: usize) -> u64 {
    (QHEADER_LEN + rows * 4 + rows * cols * 4 + rows * cols + TRAILER_LEN) as u64
}

/// Rounds a non-negative f64 up into an f32 that is **guaranteed ≥ the true value** —
/// the `as f32` cast rounds to nearest, so a measured error bound could otherwise
/// round *down* and break admissibility. Mirrors the `.next_up()` radius idiom of
/// [`crate::routing`].
fn round_up_to_f32(x: f64) -> f32 {
    let f = x as f32;
    if (f as f64) < x {
        f.next_up()
    } else {
        f
    }
}

/// An i8 (per-row scale) quantized copy of a shard matrix — the first tier of the
/// two-stage quantized scan.
///
/// Each row `x` is encoded as `code[j] = round(x[j] / s)` with `s = max_j |x[j]| / 127`
/// (zero rows get scale 0 and all-zero codes), so `s * code` reconstructs the row to
/// within one half-step per coordinate. Two **measured** (not estimated) per-shard
/// norms travel with the codes and feed the admissible candidate bound in
/// [`crate::routing`]:
///
/// * `max_err_norm` — `max_r ‖x_r − s_r·c_r‖₂`, the worst row reconstruction error;
/// * `max_row_norm` — `max_r ‖x_r‖₂`, the worst row magnitude.
///
/// Both are accumulated in f64 and rounded **up** into f32, so the bound derived from
/// them can only be slacker than reality, never tighter.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
    max_err_norm: f32,
    max_row_norm: f32,
}

impl QuantizedMatrix {
    /// Quantizes `matrix` row by row, measuring the reconstruction-error norms as it
    /// goes. Deterministic: the same matrix always produces the same codes, scales,
    /// and norms on every platform (scalar f32/f64 arithmetic only).
    pub fn quantize(matrix: &Matrix) -> QuantizedMatrix {
        let (rows, cols) = (matrix.rows(), matrix.cols());
        let mut codes = vec![0i8; rows * cols];
        let mut scales = vec![0f32; rows];
        let mut max_err_sq = 0f64;
        let mut max_norm_sq = 0f64;
        for r in 0..rows {
            let row = matrix.row(r);
            let (scale, err_sq, norm_sq) =
                quantize_row_into(row, &mut codes[r * cols..(r + 1) * cols]);
            scales[r] = scale;
            max_err_sq = max_err_sq.max(err_sq);
            max_norm_sq = max_norm_sq.max(norm_sq);
        }
        QuantizedMatrix {
            rows,
            cols,
            codes,
            scales,
            max_err_norm: round_up_to_f32(max_err_sq.sqrt()),
            max_row_norm: round_up_to_f32(max_norm_sq.sqrt()),
        }
    }

    /// Rebuilds a quantized matrix from its serialized parts (the `SWSHARDQ1` loader).
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        codes: Vec<i8>,
        scales: Vec<f32>,
        max_err_norm: f32,
        max_row_norm: f32,
    ) -> QuantizedMatrix {
        QuantizedMatrix {
            rows,
            cols,
            codes,
            scales,
            max_err_norm,
            max_row_norm,
        }
    }

    /// Number of encoded rows (including zero padding rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of encoded columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The i8 codes of row `r`.
    #[inline]
    pub fn code_row(&self, r: usize) -> &[i8] {
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// The reconstruction scale of row `r` (`row ≈ scale * codes`).
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// All row scales (the serialization order of the `SWSHARDQ1` scales section).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// All codes, row-major (the serialization order of the codes section).
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// Worst-row reconstruction error norm `max_r ‖x_r − s_r·c_r‖₂` (rounded up).
    pub fn max_err_norm(&self) -> f32 {
        self.max_err_norm
    }

    /// Worst-row magnitude `max_r ‖x_r‖₂` (rounded up).
    pub fn max_row_norm(&self) -> f32 {
        self.max_row_norm
    }

    /// Heap bytes this quantized copy occupies (codes + scales) — what the
    /// memory-density bench compares against the 4 bytes/coordinate f32 payload.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.codes.as_slice()) + std::mem::size_of_val(self.scales.as_slice())
    }
}

/// Quantizes one row into `out`, returning `(scale, err_sq, norm_sq)` with the error
/// and norm accumulated in f64. Shared by the shard-side [`QuantizedMatrix::quantize`]
/// and the query-side [`QuantizedRow::from_row`] so the two sides can never disagree
/// on the rounding rule (round half away from zero, clamped to ±127).
fn quantize_row_into(row: &[f32], out: &mut [i8]) -> (f32, f64, f64) {
    let amax = row.iter().fold(0f32, |m, &x| m.max(x.abs()));
    let mut err_sq = 0f64;
    let mut norm_sq = 0f64;
    if amax <= 0.0 || !amax.is_finite() {
        // A zero row stays all-zero codes with scale 0 (exactly reconstructed); a
        // non-finite row cannot be coded, so it degrades to "everything is error" —
        // still admissible because the measured norms absorb it.
        for x in row {
            norm_sq += (*x as f64) * (*x as f64);
        }
        out.fill(0);
        return (0.0, norm_sq, norm_sq);
    }
    let scale = amax / 127.0;
    for (c, &x) in out.iter_mut().zip(row.iter()) {
        let code = ((x as f64) / (scale as f64)).round().clamp(-127.0, 127.0);
        *c = code as i8;
        let delta = (x as f64) - (scale as f64) * code;
        err_sq += delta * delta;
        norm_sq += (x as f64) * (x as f64);
    }
    (scale, err_sq, norm_sq)
}

/// A query row quantized with the same rule as [`QuantizedMatrix`], plus the measured
/// norms the candidate bound needs. Built lazily, once per query tile, and only when a
/// quantized shard is actually scanned.
#[derive(Clone, Debug)]
pub struct QuantizedRow {
    /// i8 codes of the (pre-normalized) query row.
    pub codes: Vec<i8>,
    /// Reconstruction scale (`row ≈ scale * codes`).
    pub scale: f32,
    /// Measured `‖row − scale·codes‖₂`, rounded up.
    pub err_norm: f32,
    /// Measured `‖row‖₂`, rounded up.
    pub norm: f32,
}

impl QuantizedRow {
    /// Quantizes one query row (the caller passes the row already scaled by its
    /// inverse norm, so these codes approximate the *unit* query vector).
    pub fn from_row(row: &[f32]) -> QuantizedRow {
        let mut codes = vec![0i8; row.len()];
        let (scale, err_sq, norm_sq) = quantize_row_into(row, &mut codes);
        QuantizedRow {
            codes,
            scale,
            err_norm: round_up_to_f32(err_sq.sqrt()),
            norm: round_up_to_f32(norm_sq.sqrt()),
        }
    }
}

/// Serializes a quantized shard (both tiers) into the `SWSHARDQ1` format at `path` —
/// see the module docs for the layout. Streams the f32 payload in bounded chunks like
/// [`write_matrix_file`] and appends the CRC-32 trailer.
///
/// Failpoint `snapshot.payload.torn`: writes the header, the scales, and roughly half
/// the exact payload, then errors out without codes or trailer — the on-disk shape of
/// a crash mid-write, shared with the `SWSHARD1` writer so the chaos suites exercise
/// both formats through one switch.
pub(crate) fn write_quant_matrix_file(
    path: &Path,
    quant: &QuantizedMatrix,
    exact: &Matrix,
) -> io::Result<()> {
    debug_assert_eq!((quant.rows(), quant.cols()), (exact.rows(), exact.cols()));
    let torn = faults::fires("snapshot.payload.torn");
    let mut file = io::BufWriter::new(fs::File::create(path)?);
    let mut crc = Crc32::new();
    let mut put = |file: &mut io::BufWriter<fs::File>, bytes: &[u8]| -> io::Result<()> {
        crc.update(bytes);
        file.write_all(bytes)
    };
    put(&mut file, QMAGIC)?;
    put(&mut file, &[0u8; 7])?;
    put(&mut file, &(exact.rows() as u64).to_le_bytes())?;
    put(&mut file, &(exact.cols() as u64).to_le_bytes())?;
    put(&mut file, &quant.max_err_norm().to_le_bytes())?;
    put(&mut file, &quant.max_row_norm().to_le_bytes())?;
    let mut buf = Vec::with_capacity(16 * 1024);
    for chunk in quant.scales().chunks(4 * 1024) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        put(&mut file, &buf)?;
    }
    let data = exact.data();
    let keep = if torn { data.len() / 2 } else { data.len() };
    for chunk in data[..keep].chunks(4 * 1024) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        put(&mut file, &buf)?;
    }
    if torn {
        file.flush()?;
        return Err(io::Error::other(
            "failpoint snapshot.payload.torn: simulated crash mid-payload",
        ));
    }
    for chunk in quant.codes().chunks(16 * 1024) {
        // SAFETY-free reinterpret: i8 and u8 have identical layout; iterate instead
        // of transmuting to stay in safe code.
        buf.clear();
        buf.extend(chunk.iter().map(|&c| c as u8));
        put(&mut file, &buf)?;
    }
    file.write_all(&crc.finish().to_le_bytes())?;
    file.flush()
}

/// A quantized shard serialized to disk in the `SWSHARDQ1` format — the quantized twin
/// of [`SpilledShard`], with the same two ownership flavours (owning spill file vs
/// non-owning snapshot payload), the same typed-error fault model, and the same
/// validate-once mmap query path.
///
/// Two lazily established caches live on the handle:
///
/// * `quant` — the heap copy of codes + scales (a quarter of the f32 payload bytes)
///   that the first-stage scan reads; seeded for free when the handle was produced by
///   spilling a resident quantized shard, decoded from the mapping (or the copying
///   fallback) on first scan after a cold snapshot load.
/// * `map` — the shared read-only mapping serving the **exact** f32 tier with zero
///   copies, exactly like [`SpilledShard`]'s.
#[derive(Debug)]
pub struct QuantSpilledShard {
    /// Keeps the spill directory alive as long as any owned file in it exists; `None`
    /// for non-owning snapshot-backed handles.
    _dir: Option<SpillDir>,
    path: PathBuf,
    owns_file: bool,
    rows: usize,
    cols: usize,
    quant: OnceLock<QuantizedMatrix>,
    #[cfg(all(unix, target_endian = "little"))]
    map: OnceLock<MappedQuantShard>,
}

impl Drop for QuantSpilledShard {
    fn drop(&mut self) {
        if self.owns_file {
            remove_quietly(&self.path, false);
        }
    }
}

impl QuantSpilledShard {
    /// Serializes both tiers into a fresh file under `dir`. The returned handle owns
    /// the file and deletes it on drop, and its `quant` cache is seeded from the
    /// in-memory copy — spilling never has to read its own file back.
    ///
    /// Failpoint `spill.write.io_err`: fails before touching the filesystem (the shard
    /// stays resident — spilling is an optimization).
    pub fn write(
        dir: &SpillDir,
        quant: &QuantizedMatrix,
        exact: &Matrix,
    ) -> io::Result<QuantSpilledShard> {
        if faults::fires("spill.write.io_err") {
            return Err(io::Error::other(
                "failpoint spill.write.io_err: injected spill-write failure",
            ));
        }
        let path = dir.next_path();
        write_quant_matrix_file(&path, quant, exact)?;
        let seeded = OnceLock::new();
        let _ = seeded.set(quant.clone());
        Ok(QuantSpilledShard {
            _dir: Some(dir.clone()),
            path,
            owns_file: true,
            rows: exact.rows(),
            cols: exact.cols(),
            quant: seeded,
            #[cfg(all(unix, target_endian = "little"))]
            map: OnceLock::new(),
        })
    }

    /// Opens an existing `SWSHARDQ1` payload (a snapshot shard) without taking
    /// ownership, checking the file length against the manifest shape so a truncated
    /// snapshot fails at load time, not mid-query.
    pub fn open(
        path: PathBuf,
        rows: usize,
        cols: usize,
    ) -> Result<QuantSpilledShard, StorageError> {
        let expected = quant_file_len(rows, cols);
        let actual = fs::metadata(&path)
            .map_err(|e| StorageError::io(&path, e))?
            .len();
        if actual != expected {
            return Err(StorageError::corrupt(
                &path,
                format!(
                    "{actual} bytes on disk, expected {expected} for a {rows}x{cols} quantized shard"
                ),
            ));
        }
        Ok(Self::open_unchecked(path, rows, cols))
    }

    /// Like [`QuantSpilledShard::open`] but without touching the filesystem — for
    /// building a **quarantined** shard over a payload that already failed validation.
    pub(crate) fn open_unchecked(path: PathBuf, rows: usize, cols: usize) -> QuantSpilledShard {
        QuantSpilledShard {
            _dir: None,
            path,
            owns_file: false,
            rows,
            cols,
            quant: OnceLock::new(),
            #[cfg(all(unix, target_endian = "little"))]
            map: OnceLock::new(),
        }
    }

    /// Copies the serialized payload to `dest` without deserializing it (snapshot
    /// save path); copying a file onto itself is a no-op.
    pub(crate) fn copy_to(&self, dest: &Path) -> io::Result<()> {
        if same_file(&self.path, dest) {
            return Ok(());
        }
        fs::copy(&self.path, dest).map(|_| ())
    }

    /// Rows of the serialized shard (including zero padding rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the serialized shard.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The on-disk location of the payload.
    pub fn file_path(&self) -> &Path {
        &self.path
    }

    /// Reads both tiers back, verifying magic, shape, and the CRC-32 trailer. The
    /// returned exact matrix is bit-for-bit the one passed to
    /// [`QuantSpilledShard::write`]; the quantized tier round-trips exactly too
    /// (integer codes, f32 scales and norms).
    ///
    /// Failpoint `spill.read.io_err`: fails the attempt before opening the file.
    pub fn load_all(&self) -> Result<(QuantizedMatrix, Matrix), StorageError> {
        if faults::fires("spill.read.io_err") {
            return Err(StorageError::io(
                &self.path,
                io::Error::other("failpoint spill.read.io_err: injected spill-read failure"),
            ));
        }
        let bytes = fs::read(&self.path).map_err(|e| StorageError::io(&self.path, e))?;
        let corrupt = |what: String| StorageError::corrupt(&self.path, what);
        let expected = quant_file_len(self.rows, self.cols) as usize;
        if bytes.len() != expected {
            return Err(corrupt(format!(
                "{} bytes on disk, expected {expected} for a {}x{} quantized shard",
                bytes.len(),
                self.rows,
                self.cols
            )));
        }
        if &bytes[..QMAGIC.len()] != QMAGIC {
            return Err(corrupt(
                "bad magic (not a Sudowoodo quantized shard file)".into(),
            ));
        }
        let rows = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let cols = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        if (rows, cols) != (self.rows, self.cols) {
            return Err(corrupt(
                "header shape disagrees with the index metadata".into(),
            ));
        }
        let body = &bytes[..expected - TRAILER_LEN];
        let trailer: [u8; TRAILER_LEN] = bytes[expected - TRAILER_LEN..].try_into().unwrap();
        if u32::from_le_bytes(trailer) != crc32(body) {
            return Err(corrupt(
                "CRC-32 mismatch (the payload bytes changed since they were written)".into(),
            ));
        }
        let max_err_norm = f32::from_le_bytes(bytes[32..36].try_into().unwrap());
        let max_row_norm = f32::from_le_bytes(bytes[36..40].try_into().unwrap());
        let scales_at = QHEADER_LEN;
        let exact_at = scales_at + rows * 4;
        let codes_at = exact_at + rows * cols * 4;
        let scales: Vec<f32> = bytes[scales_at..exact_at]
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let data: Vec<f32> = bytes[exact_at..codes_at]
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let codes: Vec<i8> = bytes[codes_at..expected - TRAILER_LEN]
            .iter()
            .map(|&b| b as i8)
            .collect();
        Ok((
            QuantizedMatrix::from_parts(rows, cols, codes, scales, max_err_norm, max_row_norm),
            Matrix::from_vec(rows, cols, data),
        ))
    }

    /// [`QuantSpilledShard::load_all`] with the shared fault-retry backoff;
    /// corruption is not retried.
    pub fn load_all_retrying(&self) -> Result<(QuantizedMatrix, Matrix), StorageError> {
        let mut last = None;
        for retry in 0..FAULT_ATTEMPTS {
            if retry > 0 {
                fault_backoff(retry - 1);
            }
            match self.load_all() {
                Ok(parts) => return Ok(parts),
                Err(e) if e.is_corrupt() => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// The quantized tier (codes + scales + norms), decoded into the heap cache on
    /// first use: from the validated mapping where available, through the copying
    /// loader otherwise. Failures are never cached — the next scan retries.
    pub fn quant(&self) -> Result<&QuantizedMatrix, StorageError> {
        if let Some(q) = self.quant.get() {
            return Ok(q);
        }
        let fresh;
        #[cfg(all(unix, target_endian = "little"))]
        {
            let mapped = self.mapped()?;
            fresh = QuantizedMatrix::from_parts(
                self.rows,
                self.cols,
                mapped.codes().to_vec(),
                mapped.scales().to_vec(),
                mapped.max_err_norm(),
                mapped.max_row_norm(),
            );
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            fresh = self.load_all_retrying()?.0;
        }
        // A concurrent scan may have won the race; both decoded the same bytes.
        Ok(self.quant.get_or_init(|| fresh))
    }

    /// The **exact** f32 tier for the rescore stage and the legacy full-scan path:
    /// borrowed from the shared mapping where available, a copying fault otherwise.
    pub fn exact_payload(&self) -> Result<ShardData<'_>, StorageError> {
        #[cfg(all(unix, target_endian = "little"))]
        {
            self.mapped().map(|m| ShardData::Borrowed(m.view()))
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            self.load_all_retrying().map(|(_, m)| ShardData::Owned(m))
        }
    }

    /// The shared, validated memory mapping (see [`SpilledShard::mapped`] — same
    /// never-cache-failures contract).
    #[cfg(all(unix, target_endian = "little"))]
    pub(crate) fn mapped(&self) -> Result<&MappedQuantShard, StorageError> {
        if let Some(mapped) = self.map.get() {
            return Ok(mapped);
        }
        let fresh = self.map_retrying()?;
        Ok(self.map.get_or_init(|| fresh))
    }

    #[cfg(all(unix, target_endian = "little"))]
    fn map_retrying(&self) -> Result<MappedQuantShard, StorageError> {
        let mut last = None;
        for retry in 0..FAULT_ATTEMPTS {
            if retry > 0 {
                fault_backoff(retry - 1);
            }
            match self.map_file() {
                Ok(mapped) => return Ok(mapped),
                Err(e) if e.is_corrupt() => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Maps the payload read-only and validates it **once** (length, magic, shape,
    /// CRC over every preceding byte), mirroring [`SpilledShard::map_file`].
    ///
    /// Failpoint `spill.read.io_err`: fails the attempt before opening the file.
    #[cfg(all(unix, target_endian = "little"))]
    fn map_file(&self) -> Result<MappedQuantShard, StorageError> {
        if faults::fires("spill.read.io_err") {
            return Err(StorageError::io(
                &self.path,
                io::Error::other("failpoint spill.read.io_err: injected spill-read failure"),
            ));
        }
        let ioerr = |e| StorageError::io(&self.path, e);
        let corrupt = |what: &str| StorageError::corrupt(&self.path, what);
        let file = fs::File::open(&self.path).map_err(ioerr)?;
        let expected = quant_file_len(self.rows, self.cols) as usize;
        let actual = file.metadata().map_err(ioerr)?.len();
        if actual != expected as u64 {
            return Err(corrupt(&format!(
                "{actual} bytes on disk, expected {expected} for a {}x{} quantized shard",
                self.rows, self.cols
            )));
        }
        let mapped = MappedQuantShard::map(&file, expected, self.rows, self.cols).map_err(ioerr)?;
        let bytes = mapped.bytes();
        if &bytes[..QMAGIC.len()] != QMAGIC {
            return Err(corrupt("bad magic (not a Sudowoodo quantized shard file)"));
        }
        let rows = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let cols = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        if (rows, cols) != (self.rows, self.cols) {
            return Err(corrupt("header shape disagrees with the index metadata"));
        }
        let body = &bytes[..expected - TRAILER_LEN];
        let trailer: [u8; TRAILER_LEN] = bytes[expected - TRAILER_LEN..].try_into().unwrap();
        if u32::from_le_bytes(trailer) != crc32(body) {
            return Err(corrupt(
                "CRC-32 mismatch (the payload bytes changed since they were written)",
            ));
        }
        Ok(mapped)
    }
}

/// A read-only `mmap(2)` of one `SWSHARDQ1` payload file — [`MappedShard`]'s quantized
/// twin. Validated once at map time; after that the exact f32 tier is borrowed
/// straight out of the page cache (its offset is 4-byte aligned by the format's header
/// padding) and the i8 codes/scales are copied out once into the handle's heap cache.
#[cfg(all(unix, target_endian = "little"))]
#[derive(Debug)]
pub struct MappedQuantShard {
    ptr: *const u8,
    len: usize,
    rows: usize,
    cols: usize,
}

// SAFETY: same argument as `MappedShard` — PROT_READ for the whole lifetime, backing
// files are write-once, so concurrent reads from any thread are safe.
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Send for MappedQuantShard {}
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Sync for MappedQuantShard {}

#[cfg(all(unix, target_endian = "little"))]
impl MappedQuantShard {
    fn map(file: &fs::File, len: usize, rows: usize, cols: usize) -> io::Result<MappedQuantShard> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: a fresh PROT_READ/MAP_SHARED mapping of a file we hold open; failure
        // is reported via MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedQuantShard {
            ptr: ptr as *const u8,
            len,
            rows,
            cols,
        })
    }

    /// The whole mapped file, header and trailer included.
    fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live mapping of exactly `len` bytes.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Worst-row reconstruction error norm recorded in the header.
    fn max_err_norm(&self) -> f32 {
        f32::from_le_bytes(self.bytes()[32..36].try_into().unwrap())
    }

    /// Worst-row magnitude recorded in the header.
    fn max_row_norm(&self) -> f32 {
        f32::from_le_bytes(self.bytes()[36..40].try_into().unwrap())
    }

    /// The per-row scales section.
    fn scales(&self) -> &[f32] {
        // SAFETY: the scales span `rows` little-endian f32s at the 4-byte-aligned
        // QHEADER_LEN offset of the validated `len`-byte mapping.
        unsafe { std::slice::from_raw_parts(self.ptr.add(QHEADER_LEN) as *const f32, self.rows) }
    }

    /// The i8 codes section, row-major.
    fn codes(&self) -> &[i8] {
        let at = QHEADER_LEN + self.rows * 4 + self.rows * self.cols * 4;
        // SAFETY: the codes span `rows * cols` bytes at offset `at` of the validated
        // mapping; i8 has alignment 1 and every bit pattern is valid.
        unsafe { std::slice::from_raw_parts(self.ptr.add(at) as *const i8, self.rows * self.cols) }
    }

    /// The exact row-major f32 tier, borrowed straight out of the page cache.
    pub fn data(&self) -> &[f32] {
        let at = QHEADER_LEN + self.rows * 4;
        // SAFETY: the exact payload spans `rows * cols` little-endian f32s at the
        // 4-byte-aligned offset `at` (header and scales are both multiples of 4);
        // every bit pattern is a valid f32.
        unsafe { std::slice::from_raw_parts(self.ptr.add(at) as *const f32, self.rows * self.cols) }
    }

    /// The exact tier as a borrowed matrix view for the scoring kernels.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(self.rows, self.cols, self.data())
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl Drop for MappedQuantShard {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact region `map` established.
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

/// What [`ShardStorage::query_payload`] hands the scoring kernels: a zero-copy view
/// whenever the payload has a stable home (resident matrix, established mapping), an
/// owned fault only on targets without the mapping.
#[derive(Debug)]
pub enum ShardData<'a> {
    /// Borrowed straight from resident memory or the shared mapping.
    Borrowed(MatrixView<'a>),
    /// A copying fault (non-Unix / big-endian fallback).
    Owned(Matrix),
}

impl ShardData<'_> {
    /// The payload as a [`MatrixView`], whichever arm holds it.
    pub fn view(&self) -> MatrixView<'_> {
        match self {
            ShardData::Borrowed(v) => *v,
            ShardData::Owned(m) => m.view(),
        }
    }
}

/// Where a shard's row matrix currently lives.
///
/// The surrounding shard metadata (stable ids, tombstones, routing statistics) always
/// stays resident — only the `rows x dim` float payload spills, because that is where
/// virtually all of a shard's memory goes.
#[derive(Debug)]
pub enum ShardStorage {
    /// The matrix is in memory (the hot state; also the only state the pre-spill index
    /// ever had).
    Resident(Matrix),
    /// The matrix is on disk and is read back per use.
    Spilled(SpilledShard),
    /// Both tiers of a quantized shard are in memory: the i8 codes the first-stage
    /// scan reads and the exact f32 matrix the rescore tier reads.
    QuantResident {
        /// The i8 codes + per-row scales + measured error norms.
        quant: QuantizedMatrix,
        /// The exact f32 payload — the bit-identical source of truth for rescoring,
        /// mutation, and snapshots.
        exact: Matrix,
    },
    /// A quantized shard on disk in the `SWSHARDQ1` format; the small quantized tier
    /// is decoded into a heap cache on first scan, the exact tier is served through
    /// the shared mapping.
    QuantSpilled(QuantSpilledShard),
}

impl Clone for ShardStorage {
    /// Cloning faults spilled storage back into memory: spill files are single-owner
    /// (deleted on drop), so the clone gets an independent resident copy (quantized
    /// storage stays quantized — both tiers are cloned or loaded).
    ///
    /// # Panics
    /// `Clone` has no error channel, so an unreadable spill file (after the retry
    /// backoff) still panics here — with the typed [`StorageError`] message. Query
    /// paths never clone storage; this is only reachable through an explicit
    /// [`crate::ShardedCosineIndex`] clone.
    fn clone(&self) -> Self {
        match self {
            ShardStorage::Resident(m) => ShardStorage::Resident(m.clone()),
            ShardStorage::Spilled(s) => ShardStorage::Resident(
                s.load_retrying()
                    .unwrap_or_else(|e| panic!("ShardStorage::clone: {e}")),
            ),
            ShardStorage::QuantResident { quant, exact } => ShardStorage::QuantResident {
                quant: quant.clone(),
                exact: exact.clone(),
            },
            ShardStorage::QuantSpilled(s) => {
                let (quant, exact) = s
                    .load_all_retrying()
                    .unwrap_or_else(|e| panic!("ShardStorage::clone: {e}"));
                ShardStorage::QuantResident { quant, exact }
            }
        }
    }
}

impl ShardStorage {
    /// Rows of the stored matrix (including zero padding rows).
    pub fn rows(&self) -> usize {
        match self {
            ShardStorage::Resident(m) => m.rows(),
            ShardStorage::Spilled(s) => s.rows(),
            ShardStorage::QuantResident { exact, .. } => exact.rows(),
            ShardStorage::QuantSpilled(s) => s.rows(),
        }
    }

    /// Columns of the stored matrix.
    pub fn cols(&self) -> usize {
        match self {
            ShardStorage::Resident(m) => m.cols(),
            ShardStorage::Spilled(s) => s.cols(),
            ShardStorage::QuantResident { exact, .. } => exact.cols(),
            ShardStorage::QuantSpilled(s) => s.cols(),
        }
    }

    /// Bytes the **exact f32** payload occupies (or would occupy) in memory, regardless
    /// of where it currently lives — the per-shard quantity the residency budget weighs
    /// when deciding what to keep resident and what to fault back.
    pub fn payload_bytes(&self) -> usize {
        self.rows() * self.cols() * std::mem::size_of::<f32>()
    }

    /// `true` when the exact payload is in memory.
    pub fn is_resident(&self) -> bool {
        matches!(
            self,
            ShardStorage::Resident(_) | ShardStorage::QuantResident { .. }
        )
    }

    /// `true` when this storage carries a quantized tier (resident or spilled).
    pub fn is_quantized(&self) -> bool {
        matches!(
            self,
            ShardStorage::QuantResident { .. } | ShardStorage::QuantSpilled(_)
        )
    }

    /// Bytes of **exact f32** payload currently held in memory (0 when spilled) — the
    /// quantity the residency budget is accounted in. The quantized tier is tracked
    /// separately by [`ShardStorage::quantized_payload_bytes`]: it is metadata-sized
    /// (a quarter of the payload) and deliberately outside the budget, like the
    /// routing statistics.
    pub fn resident_bytes(&self) -> usize {
        match self {
            ShardStorage::Resident(m) => std::mem::size_of_val(m.data()),
            ShardStorage::Spilled(_) => 0,
            ShardStorage::QuantResident { exact, .. } => std::mem::size_of_val(exact.data()),
            ShardStorage::QuantSpilled(_) => 0,
        }
    }

    /// Heap bytes of the quantized tier (codes + scales), 0 for plain f32 storage and
    /// for quantized spills whose cache has not been decoded yet — what the
    /// memory-density bench sums against [`ShardStorage::payload_bytes`].
    pub fn quantized_payload_bytes(&self) -> usize {
        match self {
            ShardStorage::QuantResident { quant, .. } => quant.heap_bytes(),
            ShardStorage::QuantSpilled(s) => s.quant.get().map_or(0, |q| q.heap_bytes()),
            _ => 0,
        }
    }

    /// The quantized tier for the first-stage scan: `None` for plain f32 storage,
    /// otherwise the codes/scales (decoding the spilled cache on first use).
    ///
    /// # Errors
    /// The inner `Result` carries the same contract as [`ShardStorage::matrix`]: a
    /// spilled quantized payload that stayed unreadable through the retries — the
    /// caller quarantines the shard exactly like an exact-tier fault.
    pub fn quant(&self) -> Option<Result<&QuantizedMatrix, StorageError>> {
        match self {
            ShardStorage::QuantResident { quant, .. } => Some(Ok(quant)),
            ShardStorage::QuantSpilled(s) => Some(s.quant()),
            _ => None,
        }
    }

    /// The **exact** matrix, borrowed when resident and transiently loaded (with the
    /// retry backoff) when spilled. Quantized storage hands out its exact tier —
    /// mutation and legacy paths never see codes.
    ///
    /// # Errors
    /// A spilled shard whose file cannot be read back even after
    /// [`SpilledShard::load_retrying`] — the caller decides whether that degrades one
    /// query (quarantine) or the whole operation.
    pub fn matrix(&self) -> Result<Cow<'_, Matrix>, StorageError> {
        match self {
            ShardStorage::Resident(m) => Ok(Cow::Borrowed(m)),
            ShardStorage::Spilled(s) => s.load_retrying().map(Cow::Owned),
            ShardStorage::QuantResident { exact, .. } => Ok(Cow::Borrowed(exact)),
            ShardStorage::QuantSpilled(s) => s.load_all_retrying().map(|(_, m)| Cow::Owned(m)),
        }
    }

    /// The **query-path** payload: a borrowed view for resident shards, the shared
    /// validated memory mapping for spilled ones ([`SpilledShard::mapped`]) — so a
    /// spilled shard's working set is OS page cache shared across every process
    /// serving the same snapshot, not a fresh heap copy per query tile. On targets
    /// without the mapping (non-Unix or big-endian) the spilled arm transparently
    /// falls back to the copying fault, bit-identically. Quantized storage serves its
    /// **exact** tier here — this is what the rescore stage (and any full scan)
    /// scores against.
    ///
    /// Mutating paths (compaction, ingestion, cloning) keep using
    /// [`ShardStorage::matrix`] / [`ShardStorage::make_resident`].
    ///
    /// # Errors
    /// Same contract as [`ShardStorage::matrix`]: the shard stayed unreadable (or
    /// unmappable) through the retries.
    pub fn query_payload(&self) -> Result<ShardData<'_>, StorageError> {
        match self {
            ShardStorage::Resident(m) => Ok(ShardData::Borrowed(m.view())),
            #[cfg(all(unix, target_endian = "little"))]
            ShardStorage::Spilled(s) => s.mapped().map(|m| ShardData::Borrowed(m.view())),
            #[cfg(not(all(unix, target_endian = "little")))]
            ShardStorage::Spilled(s) => s.load_retrying().map(ShardData::Owned),
            ShardStorage::QuantResident { exact, .. } => Ok(ShardData::Borrowed(exact.view())),
            ShardStorage::QuantSpilled(s) => s.exact_payload(),
        }
    }

    /// Spills the matrix (both tiers when quantized) to a fresh file under `dir`.
    /// No-op when already spilled. On I/O failure the matrix simply stays resident
    /// (spilling is an optimization; the error is returned for reporting).
    pub fn spill(&mut self, dir: &SpillDir) -> io::Result<()> {
        match self {
            ShardStorage::Resident(matrix) => {
                let spilled = SpilledShard::write(dir, matrix)?;
                *self = ShardStorage::Spilled(spilled);
            }
            ShardStorage::QuantResident { quant, exact } => {
                let spilled = QuantSpilledShard::write(dir, quant, exact)?;
                *self = ShardStorage::QuantSpilled(spilled);
            }
            ShardStorage::Spilled(_) | ShardStorage::QuantSpilled(_) => {}
        }
        Ok(())
    }

    /// Faults the exact matrix back into memory for mutation (ingestion into a
    /// partially filled tail shard). An owned spill file is deleted; a non-owning
    /// snapshot payload is left on disk for other loads of the same snapshot. No-op
    /// when already plain-resident.
    ///
    /// Quantized storage degrades to plain [`ShardStorage::Resident`] here: mutation
    /// invalidates the codes, and the next `compact()` re-quantizes under the index's
    /// current quantization setting.
    ///
    /// # Errors
    /// An unreadable spill file (after the retry backoff); the storage is left
    /// spilled and untouched.
    pub fn make_resident(&mut self) -> Result<&mut Matrix, StorageError> {
        match self {
            ShardStorage::Spilled(s) => {
                let matrix = s.load_retrying()?;
                *self = ShardStorage::Resident(matrix);
            }
            ShardStorage::QuantSpilled(s) => {
                let (_, exact) = s.load_all_retrying()?;
                *self = ShardStorage::Resident(exact);
            }
            ShardStorage::QuantResident { .. } => {
                let ShardStorage::QuantResident { exact, .. } =
                    std::mem::replace(self, ShardStorage::Resident(Matrix::zeros(0, 0)))
                else {
                    unreachable!("matched above")
                };
                *self = ShardStorage::Resident(exact);
            }
            ShardStorage::Resident(_) => {}
        }
        match self {
            ShardStorage::Resident(m) => Ok(m),
            _ => unreachable!("made resident above"),
        }
    }

    /// Quantizes a plain-resident shard in place (builds the i8 tier next to the
    /// untouched exact matrix). No-op for already-quantized or spilled storage —
    /// spilled shards are re-quantized when compaction rebuilds them resident.
    pub(crate) fn quantize_resident(&mut self) {
        if matches!(self, ShardStorage::Resident(_)) {
            let ShardStorage::Resident(exact) =
                std::mem::replace(self, ShardStorage::Resident(Matrix::zeros(0, 0)))
            else {
                unreachable!("matched above")
            };
            let quant = QuantizedMatrix::quantize(&exact);
            *self = ShardStorage::QuantResident { quant, exact };
        }
    }

    /// Drops the quantized tier of a quant-resident shard, keeping the exact matrix
    /// (the reverse of [`ShardStorage::quantize_resident`]). No-op otherwise. The
    /// non-test path goes through [`ShardStorage::make_resident`], which lands on the
    /// plain dense state from every variant.
    #[cfg(test)]
    pub(crate) fn dequantize_resident(&mut self) {
        if matches!(self, ShardStorage::QuantResident { .. }) {
            let ShardStorage::QuantResident { exact, .. } =
                std::mem::replace(self, ShardStorage::Resident(Matrix::zeros(0, 0)))
            else {
                unreachable!("matched above")
            };
            *self = ShardStorage::Resident(exact);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Failpoints are process-global; tests arming them serialize here and disarm on
    /// drop so parallel test threads never observe each other's faults.
    pub(crate) fn fault_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) struct DisarmGuard;
    impl Drop for DisarmGuard {
        fn drop(&mut self) {
            faults::disarm_all();
        }
    }

    fn fixture_matrix() -> Matrix {
        // Values chosen to catch any lossy serialization: negatives, -0.0, subnormals,
        // and values whose decimal round-trip would differ from a bit round-trip.
        let mut data = vec![
            0.1f32,
            -0.0,
            1.0e-40,
            std::f32::consts::PI,
            -2.5e7,
            f32::MIN_POSITIVE,
        ];
        let mut state = 0x1234_5678_u64;
        while data.len() < 12 * 5 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push(((state >> 33) as f32 / (1u64 << 30) as f32) - 2.0);
        }
        Matrix::from_vec(12, 5, data)
    }

    #[test]
    fn spill_round_trip_is_byte_identical() {
        let dir = SpillDir::create().expect("create spill dir");
        let matrix = fixture_matrix();
        let spilled = SpilledShard::write(&dir, &matrix).expect("spill");
        let loaded = spilled.load().expect("fault");
        assert_eq!(
            (loaded.rows(), loaded.cols()),
            (matrix.rows(), matrix.cols())
        );
        for (i, (a, b)) in matrix.data().iter().zip(loaded.data().iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "element {i} changed bits across the spill round trip"
            );
        }
    }

    #[test]
    fn storage_transitions_preserve_the_matrix_and_account_bytes() {
        let dir = SpillDir::create().expect("create spill dir");
        let matrix = fixture_matrix();
        let bytes = matrix.data().len() * 4;
        let mut storage = ShardStorage::Resident(matrix.clone());
        assert!(storage.is_resident());
        assert_eq!(storage.resident_bytes(), bytes);

        storage.spill(&dir).expect("spill");
        assert!(!storage.is_resident());
        assert_eq!(storage.resident_bytes(), 0);
        assert_eq!(storage.rows(), matrix.rows());
        assert_eq!(
            *storage.matrix().expect("transient fault"),
            matrix,
            "transient fault must match"
        );

        // Cloning a spilled storage produces an independent resident copy.
        let cloned = storage.clone();
        assert!(cloned.is_resident());
        assert_eq!(*cloned.matrix().expect("resident"), matrix);

        let faulted = storage.make_resident().expect("fault back");
        assert_eq!(*faulted, matrix);
        assert!(storage.is_resident());
        assert_eq!(storage.resident_bytes(), bytes);
    }

    #[test]
    fn files_and_directory_are_cleaned_up_on_drop() {
        let dir = SpillDir::create().expect("create spill dir");
        let dir_path = dir.path().to_path_buf();
        let spilled = SpilledShard::write(&dir, &fixture_matrix()).expect("spill");
        let file_path = spilled.path.clone();
        assert!(file_path.exists());
        drop(spilled);
        assert!(
            !file_path.exists(),
            "spill file must be removed with its shard"
        );
        assert!(dir_path.exists(), "dir survives while a handle exists");
        drop(dir);
        assert!(
            !dir_path.exists(),
            "dir must be removed with the last handle"
        );
    }

    #[test]
    fn open_is_non_owning_and_validates_length() {
        let dir = SpillDir::create().expect("create spill dir");
        let matrix = fixture_matrix();
        let owned = SpilledShard::write(&dir, &matrix).expect("spill");
        let path = owned.path.clone();
        // Detach the file from the owning handle by copying it aside.
        let snapshot_path = dir.path().join("snapshot-copy.bin");
        owned.copy_to(&snapshot_path).expect("copy payload");

        let opened = SpilledShard::open(snapshot_path.clone(), matrix.rows(), matrix.cols())
            .expect("open snapshot payload");
        assert_eq!(opened.load().expect("load"), matrix);
        assert_eq!(opened.file_path(), snapshot_path.as_path());
        drop(opened);
        assert!(
            snapshot_path.exists(),
            "a non-owning handle must leave the file on disk"
        );

        // Copying a file onto itself (snapshot re-saved into its own dir) is a no-op.
        let reopened =
            SpilledShard::open(snapshot_path.clone(), matrix.rows(), matrix.cols()).unwrap();
        reopened.copy_to(&snapshot_path).expect("self-copy");
        assert_eq!(reopened.load().expect("load after self-copy"), matrix);

        // A wrong manifest shape is caught at open time, before any query faults.
        let err = SpilledShard::open(snapshot_path, matrix.rows() + 4, matrix.cols())
            .expect_err("bad shape must fail fast");
        assert!(err.is_corrupt(), "length mismatch is corruption: {err}");
        assert!(err.to_string().contains("bytes on disk"), "got: {err}");
        drop(dir);
        let _ = path;
    }

    #[test]
    fn corrupted_magic_is_rejected() {
        let dir = SpillDir::create().expect("create spill dir");
        let spilled = SpilledShard::write(&dir, &fixture_matrix()).expect("spill");
        let mut bytes = fs::read(&spilled.path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&spilled.path, &bytes).unwrap();
        let err = spilled.load().expect_err("corrupted magic must fail");
        assert!(err.is_corrupt());
        assert!(err.to_string().contains("bad magic"), "got: {err}");
    }

    #[test]
    fn single_flipped_payload_bit_fails_the_crc() {
        let dir = SpillDir::create().expect("create spill dir");
        let spilled = SpilledShard::write(&dir, &fixture_matrix()).expect("spill");
        let mut bytes = fs::read(&spilled.path).unwrap();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - TRAILER_LEN) / 2;
        bytes[mid] ^= 0x01; // one bit, deep in the float payload
        fs::write(&spilled.path, &bytes).unwrap();
        let err = spilled.load().expect_err("bit rot must not load");
        assert!(err.is_corrupt());
        assert!(err.to_string().contains("CRC-32"), "got: {err}");
        // Corruption is not retried — the retry wrapper fails identically and fast.
        assert!(spilled.load_retrying().unwrap_err().is_corrupt());
    }

    #[test]
    fn crc32_matches_the_iso_hdlc_check_value() {
        // The ISO-HDLC check value: crc32(b"123456789") == 0xCBF43926 (zlib, PNG, ...).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn vanished_spill_file_is_a_typed_io_error_with_the_path() {
        let dir = SpillDir::create().expect("create spill dir");
        let spilled = SpilledShard::write(&dir, &fixture_matrix()).expect("spill");
        fs::remove_file(&spilled.path).unwrap();
        let err = spilled.load_retrying().expect_err("missing file must fail");
        assert!(!err.is_corrupt(), "a vanished file is an I/O fault");
        let msg = err.with_shard(3).to_string();
        assert!(msg.contains("shard 3"), "got: {msg}");
        assert!(msg.contains("shard-0.bin"), "got: {msg}");
    }

    #[test]
    fn injected_read_faults_fail_then_recover_within_the_retry_budget() {
        let _s = fault_lock();
        let _g = DisarmGuard;
        let dir = SpillDir::create().expect("create spill dir");
        let matrix = fixture_matrix();
        let spilled = SpilledShard::write(&dir, &matrix).expect("spill");

        // A bounded transient fault: the single-attempt read fails, the retry loop
        // rides it out.
        faults::arm("spill.read.io_err", faults::Policy::Times(2));
        assert!(spilled.load().is_err());
        assert_eq!(spilled.load_retrying().expect("retries recover"), matrix);
        faults::disarm("spill.read.io_err");

        // A durable fault exhausts the retries and surfaces the injected error.
        faults::arm("spill.read.io_err", faults::Policy::Always);
        let err = spilled.load_retrying().expect_err("durable fault");
        assert!(err.to_string().contains("spill.read.io_err"), "got: {err}");
    }

    #[test]
    fn quantized_spill_round_trip_is_byte_identical_on_both_tiers() {
        let dir = SpillDir::create().expect("create spill dir");
        let exact = fixture_matrix();
        let quant = QuantizedMatrix::quantize(&exact);
        let spilled = QuantSpilledShard::write(&dir, &quant, &exact).expect("spill");
        let (q2, e2) = spilled.load_all().expect("fault");
        assert_eq!(q2, quant, "quantized tier must round-trip exactly");
        for (i, (a, b)) in exact.data().iter().zip(e2.data().iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "exact element {i} changed bits across the quantized round trip"
            );
        }
        // The seeded cache answers without re-reading the file.
        assert_eq!(spilled.quant().expect("seeded"), &quant);
        // The mmap'd exact tier serves the same bits.
        let view = spilled.exact_payload().expect("map").view().to_matrix();
        assert_eq!(view, exact);
    }

    #[test]
    fn quantization_reconstructs_rows_within_the_measured_error_norm() {
        let exact = fixture_matrix();
        let quant = QuantizedMatrix::quantize(&exact);
        for r in 0..exact.rows() {
            let row = exact.row(r);
            let s = quant.scale(r) as f64;
            let err_sq: f64 = row
                .iter()
                .zip(quant.code_row(r))
                .map(|(&x, &c)| {
                    let d = x as f64 - s * c as f64;
                    d * d
                })
                .sum();
            assert!(
                err_sq.sqrt() <= quant.max_err_norm() as f64,
                "row {r} error {} exceeds the claimed bound {}",
                err_sq.sqrt(),
                quant.max_err_norm()
            );
            let norm_sq: f64 = row.iter().map(|&x| (x as f64) * (x as f64)).sum();
            assert!(norm_sq.sqrt() <= quant.max_row_norm() as f64);
        }
    }

    #[test]
    fn quantized_storage_transitions_account_both_tiers() {
        let dir = SpillDir::create().expect("create spill dir");
        let exact = fixture_matrix();
        let bytes = exact.data().len() * 4;
        let mut storage = ShardStorage::Resident(exact.clone());
        assert_eq!(storage.quantized_payload_bytes(), 0);

        storage.quantize_resident();
        assert!(storage.is_resident() && storage.is_quantized());
        assert_eq!(storage.resident_bytes(), bytes);
        let qbytes = exact.rows() * exact.cols() + exact.rows() * 4;
        assert_eq!(storage.quantized_payload_bytes(), qbytes);
        assert_eq!(*storage.matrix().expect("exact tier"), exact);

        storage.spill(&dir).expect("spill");
        assert!(!storage.is_resident() && storage.is_quantized());
        assert_eq!(storage.resident_bytes(), 0);
        // The spill seeded the quantized cache, so its bytes are still resident.
        assert_eq!(storage.quantized_payload_bytes(), qbytes);
        assert_eq!(
            storage
                .query_payload()
                .expect("exact view")
                .view()
                .to_matrix(),
            exact
        );

        // Cloning a quantized spill produces an independent quant-resident copy.
        let cloned = storage.clone();
        assert!(cloned.is_resident() && cloned.is_quantized());
        assert_eq!(*cloned.matrix().expect("resident"), exact);

        // Faulting back for mutation drops the (soon stale) quantized tier.
        let faulted = storage.make_resident().expect("fault back");
        assert_eq!(*faulted, exact);
        assert!(storage.is_resident() && !storage.is_quantized());

        storage.quantize_resident();
        storage.dequantize_resident();
        assert!(!storage.is_quantized());
        assert_eq!(*storage.matrix().expect("still exact"), exact);
    }

    #[test]
    fn corrupt_quantized_payloads_fail_typed_like_dense_ones() {
        let dir = SpillDir::create().expect("create spill dir");
        let exact = fixture_matrix();
        let quant = QuantizedMatrix::quantize(&exact);
        let spilled = QuantSpilledShard::write(&dir, &quant, &exact).expect("spill");

        // A single flipped bit deep in the codes section fails the CRC.
        let mut bytes = fs::read(&spilled.path).unwrap();
        let codes_at = QHEADER_LEN + exact.rows() * 4 + exact.rows() * exact.cols() * 4;
        bytes[codes_at + 3] ^= 0x01;
        fs::write(&spilled.path, &bytes).unwrap();
        let fresh =
            QuantSpilledShard::open_unchecked(spilled.path.clone(), exact.rows(), exact.cols());
        let err = fresh.load_all().expect_err("bit rot must not load");
        assert!(err.is_corrupt());
        assert!(err.to_string().contains("CRC-32"), "got: {err}");
        let err = fresh.quant().expect_err("mapped path rejects it too");
        assert!(err.is_corrupt());

        // A truncated (torn) file is caught by the open-time length check.
        bytes.truncate(bytes.len() / 2);
        fs::write(&spilled.path, &bytes).unwrap();
        let err = QuantSpilledShard::open(spilled.path.clone(), exact.rows(), exact.cols())
            .expect_err("torn file must fail fast");
        assert!(err.is_corrupt());
        assert!(err.to_string().contains("bytes on disk"), "got: {err}");
    }

    #[test]
    fn injected_write_faults_keep_the_shard_resident() {
        let _s = fault_lock();
        let _g = DisarmGuard;
        let dir = SpillDir::create().expect("create spill dir");
        let mut storage = ShardStorage::Resident(fixture_matrix());
        faults::arm("spill.write.io_err", faults::Policy::Once);
        assert!(storage.spill(&dir).is_err(), "injected write fault");
        assert!(storage.is_resident(), "a failed spill must not lose data");
        storage.spill(&dir).expect("next spill succeeds");
        assert!(!storage.is_resident());
    }
}
