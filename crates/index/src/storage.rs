//! Disk-spill storage for shards of the blocking index.
//!
//! ROADMAP names "spill cold shards to disk / mmap" as the next scale step after the
//! in-memory sharded layout: a streaming corpus eventually exceeds RAM, but most shards
//! are *cold* — they hold old rows that rarely win a top-k slot. This module gives every
//! shard matrix a [`ShardStorage`] home with two states:
//!
//! * [`ShardStorage::Resident`] — the row-major [`Matrix`] in memory (the only state
//!   that existed before this layer);
//! * [`ShardStorage::Spilled`] — the same matrix serialized to a compact on-disk file
//!   ([`SpilledShard`]), read back on demand when a query actually needs the shard.
//!
//! Which shards spill is decided by [`crate::ShardedCosineIndex`]'s residency budget
//! after `compact()` (least-recently-used shards go first); which spilled shards are
//! ever *read back* is decided by the routing statistics of [`crate::routing`] — a shard
//! whose cosine upper bound cannot enter the current top-k is skipped without touching
//! disk, which is what makes spilling and routing multiplicative.
//!
//! ## On-disk format
//!
//! A spill file is the shard matrix and nothing else, laid out for a single sequential
//! read:
//!
//! ```text
//! offset  size           field
//! 0       8              magic  b"SWSHARD1" (version baked into the magic)
//! 8       8              rows   (u64, little endian)
//! 16      8              cols   (u64, little endian)
//! 24      rows*cols*4    row-major f32 data, little endian
//! ```
//!
//! The payload is the matrix buffer bit-for-bit (including the zero padding rows up to
//! the SIMD row-quad width), so a spilled-then-faulted shard scores queries **bit
//! identically** to its resident twin — the dense/sharded equivalence contract survives
//! spilling. Files live in a per-index temporary directory ([`SpillDir`]) that is
//! removed when the index is dropped; individual files are removed as soon as their
//! shard is repacked or faulted back to residency.
//!
//! The same format doubles as the per-shard **payload format of persistent snapshots**
//! ([`crate::snapshot`]): a snapshot shard file is byte-identical to a spill file, so a
//! spilled shard is snapshotted with a plain file copy (no deserialization), and a
//! snapshot-loaded shard is served through the exact same fault path — just via a
//! non-owning handle ([`SpilledShard::open`]) that never deletes the snapshot.

use std::borrow::Cow;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sudowoodo_nn::matrix::Matrix;

/// Magic prefix of a spill file; the trailing `1` is the format version.
const MAGIC: &[u8; 8] = b"SWSHARD1";

/// Byte length of the spill-file header (magic + rows + cols).
const HEADER_LEN: usize = 8 + 8 + 8;

/// A per-index temporary directory holding spill files.
///
/// Cloning shares the directory (spilled shards keep it alive through their own
/// handles); the directory and anything left in it are removed when the last handle
/// drops. Creation is lazy in [`crate::ShardedCosineIndex`] — an index that never
/// spills never touches the filesystem.
#[derive(Clone, Debug)]
pub struct SpillDir {
    inner: Arc<SpillDirInner>,
}

#[derive(Debug)]
struct SpillDirInner {
    path: PathBuf,
    next_file: AtomicU64,
}

impl Drop for SpillDirInner {
    fn drop(&mut self) {
        // Best-effort cleanup; a leaked temp dir must never take the process down.
        let _ = fs::remove_dir_all(&self.path);
    }
}

impl SpillDir {
    /// Creates a fresh, uniquely named spill directory under the system temp dir.
    pub fn create() -> io::Result<SpillDir> {
        static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("sudowoodo-spill-{}-{n}", std::process::id()));
        fs::create_dir_all(&path)?;
        Ok(SpillDir {
            inner: Arc::new(SpillDirInner {
                path,
                next_file: AtomicU64::new(0),
            }),
        })
    }

    /// The directory path (for diagnostics; contents are managed by the index).
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Reserves a fresh file path inside the directory (paths are never reused, so a
    /// shard spilled after a repack can never collide with a stale file).
    fn next_path(&self) -> PathBuf {
        let n = self.inner.next_file.fetch_add(1, Ordering::Relaxed);
        self.inner.path.join(format!("shard-{n}.bin"))
    }
}

/// One shard matrix serialized to disk (see the module docs for the format).
///
/// Comes in two ownership flavours:
///
/// * **Owning** ([`SpilledShard::write`]) — a spill file under a [`SpillDir`]; the file
///   is deleted when the `SpilledShard` drops (shard repacked, faulted back to
///   residency, or index dropped).
/// * **Non-owning** ([`SpilledShard::open`]) — a payload file of a persistent snapshot
///   ([`crate::snapshot`]); the handle reads it on demand but never deletes it, so one
///   snapshot directory can back any number of loaded indexes (across processes).
#[derive(Debug)]
pub struct SpilledShard {
    /// Keeps the spill directory alive as long as any owned file in it exists (never
    /// read — the handle's `Drop` ordering is its whole job). `None` for non-owning
    /// snapshot-backed handles.
    _dir: Option<SpillDir>,
    path: PathBuf,
    /// Whether the file is deleted when this handle drops.
    owns_file: bool,
    rows: usize,
    cols: usize,
}

impl Drop for SpilledShard {
    fn drop(&mut self) {
        if self.owns_file {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Serializes `matrix` into the spill-file format at `path` (see the module docs),
/// streaming in bounded chunks so writing a large shard never doubles its memory
/// footprint. Shared by the transient spill path and the snapshot writer.
pub(crate) fn write_matrix_file(path: &Path, matrix: &Matrix) -> io::Result<()> {
    let mut file = io::BufWriter::new(fs::File::create(path)?);
    file.write_all(MAGIC)?;
    file.write_all(&(matrix.rows() as u64).to_le_bytes())?;
    file.write_all(&(matrix.cols() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(16 * 1024);
    for chunk in matrix.data().chunks(4 * 1024) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        file.write_all(&buf)?;
    }
    file.flush()
}

impl SpilledShard {
    /// Serializes `matrix` into a fresh file under `dir`. The returned handle owns the
    /// file and deletes it on drop.
    pub fn write(dir: &SpillDir, matrix: &Matrix) -> io::Result<SpilledShard> {
        let path = dir.next_path();
        write_matrix_file(&path, matrix)?;
        Ok(SpilledShard {
            _dir: Some(dir.clone()),
            path,
            owns_file: true,
            rows: matrix.rows(),
            cols: matrix.cols(),
        })
    }

    /// Opens an existing payload file (a snapshot shard) **without taking ownership**:
    /// the file is read back on demand exactly like a spill file, but never deleted by
    /// this handle.
    ///
    /// `rows`/`cols` are the shape recorded in the snapshot manifest; the file's own
    /// header is verified against them on every [`SpilledShard::load`]. The file length
    /// is checked here so a truncated snapshot fails at load time, not mid-query.
    pub fn open(path: PathBuf, rows: usize, cols: usize) -> io::Result<SpilledShard> {
        let expected = (HEADER_LEN + rows * cols * 4) as u64;
        let actual = fs::metadata(&path)?.len();
        if actual != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot payload {}: {actual} bytes on disk, expected {expected} \
                     for a {rows}x{cols} shard",
                    path.display()
                ),
            ));
        }
        Ok(SpilledShard {
            _dir: None,
            path,
            owns_file: false,
            rows,
            cols,
        })
    }

    /// Copies the serialized payload to `dest` without deserializing it — how a spilled
    /// shard snapshots without faulting into memory. Copying a file onto itself (saving
    /// a snapshot-loaded index back into its own directory) is a no-op.
    pub(crate) fn copy_to(&self, dest: &Path) -> io::Result<()> {
        if same_file(&self.path, dest) {
            return Ok(());
        }
        fs::copy(&self.path, dest).map(|_| ())
    }

    /// Reads the shard matrix back, verifying the header against the recorded shape.
    ///
    /// The returned matrix is bit-for-bit the one passed to [`SpilledShard::write`].
    pub fn load(&self) -> io::Result<Matrix> {
        let mut file = io::BufReader::new(fs::File::open(&self.path)?);
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        let corrupt = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill file {}: {what}", self.path.display()),
            )
        };
        if &header[..8] != MAGIC {
            return Err(corrupt("bad magic (not a Sudowoodo shard spill file)"));
        }
        let rows = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let cols = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        if (rows, cols) != (self.rows, self.cols) {
            return Err(corrupt("header shape disagrees with the index metadata"));
        }
        let mut bytes = vec![0u8; rows * cols * 4];
        file.read_exact(&mut bytes)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Rows of the serialized matrix (including zero padding rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the serialized matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The on-disk location of the payload (diagnostics; the file is managed by this
    /// handle when owned, by the snapshot directory otherwise).
    pub fn file_path(&self) -> &Path {
        &self.path
    }
}

/// `true` when the two paths resolve to the same existing file or directory (a path
/// that does not exist yet is never "the same"). Shared with [`crate::snapshot`] so
/// the canonicalize-and-compare logic cannot drift between the spill and save paths.
pub(crate) fn same_file(a: &Path, b: &Path) -> bool {
    match (fs::canonicalize(a), fs::canonicalize(b)) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => false,
    }
}

/// Where a shard's row matrix currently lives.
///
/// The surrounding shard metadata (stable ids, tombstones, routing statistics) always
/// stays resident — only the `rows x dim` float payload spills, because that is where
/// virtually all of a shard's memory goes.
#[derive(Debug)]
pub enum ShardStorage {
    /// The matrix is in memory (the hot state; also the only state the pre-spill index
    /// ever had).
    Resident(Matrix),
    /// The matrix is on disk and is read back per use.
    Spilled(SpilledShard),
}

impl Clone for ShardStorage {
    /// Cloning faults spilled storage back into memory: spill files are single-owner
    /// (deleted on drop), so the clone gets an independent resident copy.
    fn clone(&self) -> Self {
        match self {
            ShardStorage::Resident(m) => ShardStorage::Resident(m.clone()),
            ShardStorage::Spilled(s) => ShardStorage::Resident(
                s.load()
                    .unwrap_or_else(|e| panic!("ShardStorage::clone: faulting spill failed: {e}")),
            ),
        }
    }
}

impl ShardStorage {
    /// Rows of the stored matrix (including zero padding rows).
    pub fn rows(&self) -> usize {
        match self {
            ShardStorage::Resident(m) => m.rows(),
            ShardStorage::Spilled(s) => s.rows(),
        }
    }

    /// Columns of the stored matrix.
    pub fn cols(&self) -> usize {
        match self {
            ShardStorage::Resident(m) => m.cols(),
            ShardStorage::Spilled(s) => s.cols(),
        }
    }

    /// Bytes the matrix payload occupies (or would occupy) in memory, regardless of
    /// where it currently lives — the per-shard quantity the residency budget weighs
    /// when deciding what to keep resident and what to fault back.
    pub fn payload_bytes(&self) -> usize {
        self.rows() * self.cols() * std::mem::size_of::<f32>()
    }

    /// `true` when the matrix is in memory.
    pub fn is_resident(&self) -> bool {
        matches!(self, ShardStorage::Resident(_))
    }

    /// Bytes of matrix payload currently held in memory (0 when spilled) — the quantity
    /// the residency budget is accounted in.
    pub fn resident_bytes(&self) -> usize {
        match self {
            ShardStorage::Resident(m) => std::mem::size_of_val(m.data()),
            ShardStorage::Spilled(_) => 0,
        }
    }

    /// The matrix, borrowed when resident and transiently loaded when spilled.
    ///
    /// # Panics
    /// Panics when a spilled shard cannot be read back (deleted/corrupted spill file) —
    /// at that point index state is unrecoverable and silently dropping a shard would
    /// corrupt search results.
    pub fn matrix(&self) -> Cow<'_, Matrix> {
        match self {
            ShardStorage::Resident(m) => Cow::Borrowed(m),
            ShardStorage::Spilled(s) => Cow::Owned(s.load().unwrap_or_else(|e| {
                panic!("ShardStorage::matrix: faulting spilled shard failed: {e}")
            })),
        }
    }

    /// Spills the matrix to a fresh file under `dir`. No-op when already spilled. On
    /// I/O failure the matrix simply stays resident (spilling is an optimization; the
    /// error is returned for reporting).
    pub fn spill(&mut self, dir: &SpillDir) -> io::Result<()> {
        if let ShardStorage::Resident(matrix) = self {
            let spilled = SpilledShard::write(dir, matrix)?;
            *self = ShardStorage::Spilled(spilled);
        }
        Ok(())
    }

    /// Faults the matrix back into memory for mutation (ingestion into a partially
    /// filled tail shard). An owned spill file is deleted; a non-owning snapshot
    /// payload is left on disk for other loads of the same snapshot. No-op when
    /// already resident.
    ///
    /// # Panics
    /// Panics when the spill file cannot be read back, like [`ShardStorage::matrix`].
    pub fn make_resident(&mut self) -> &mut Matrix {
        if let ShardStorage::Spilled(s) = self {
            let matrix = s.load().unwrap_or_else(|e| {
                panic!("ShardStorage::make_resident: faulting spilled shard failed: {e}")
            });
            *self = ShardStorage::Resident(matrix);
        }
        match self {
            ShardStorage::Resident(m) => m,
            ShardStorage::Spilled(_) => unreachable!("made resident above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_matrix() -> Matrix {
        // Values chosen to catch any lossy serialization: negatives, -0.0, subnormals,
        // and values whose decimal round-trip would differ from a bit round-trip.
        let mut data = vec![
            0.1f32,
            -0.0,
            1.0e-40,
            std::f32::consts::PI,
            -2.5e7,
            f32::MIN_POSITIVE,
        ];
        let mut state = 0x1234_5678_u64;
        while data.len() < 12 * 5 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push(((state >> 33) as f32 / (1u64 << 30) as f32) - 2.0);
        }
        Matrix::from_vec(12, 5, data)
    }

    #[test]
    fn spill_round_trip_is_byte_identical() {
        let dir = SpillDir::create().expect("create spill dir");
        let matrix = fixture_matrix();
        let spilled = SpilledShard::write(&dir, &matrix).expect("spill");
        let loaded = spilled.load().expect("fault");
        assert_eq!(
            (loaded.rows(), loaded.cols()),
            (matrix.rows(), matrix.cols())
        );
        for (i, (a, b)) in matrix.data().iter().zip(loaded.data().iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "element {i} changed bits across the spill round trip"
            );
        }
    }

    #[test]
    fn storage_transitions_preserve_the_matrix_and_account_bytes() {
        let dir = SpillDir::create().expect("create spill dir");
        let matrix = fixture_matrix();
        let bytes = matrix.data().len() * 4;
        let mut storage = ShardStorage::Resident(matrix.clone());
        assert!(storage.is_resident());
        assert_eq!(storage.resident_bytes(), bytes);

        storage.spill(&dir).expect("spill");
        assert!(!storage.is_resident());
        assert_eq!(storage.resident_bytes(), 0);
        assert_eq!(storage.rows(), matrix.rows());
        assert_eq!(*storage.matrix(), matrix, "transient fault must match");

        // Cloning a spilled storage produces an independent resident copy.
        let cloned = storage.clone();
        assert!(cloned.is_resident());
        assert_eq!(*cloned.matrix(), matrix);

        let faulted = storage.make_resident();
        assert_eq!(*faulted, matrix);
        assert!(storage.is_resident());
        assert_eq!(storage.resident_bytes(), bytes);
    }

    #[test]
    fn files_and_directory_are_cleaned_up_on_drop() {
        let dir = SpillDir::create().expect("create spill dir");
        let dir_path = dir.path().to_path_buf();
        let spilled = SpilledShard::write(&dir, &fixture_matrix()).expect("spill");
        let file_path = spilled.path.clone();
        assert!(file_path.exists());
        drop(spilled);
        assert!(
            !file_path.exists(),
            "spill file must be removed with its shard"
        );
        assert!(dir_path.exists(), "dir survives while a handle exists");
        drop(dir);
        assert!(
            !dir_path.exists(),
            "dir must be removed with the last handle"
        );
    }

    #[test]
    fn open_is_non_owning_and_validates_length() {
        let dir = SpillDir::create().expect("create spill dir");
        let matrix = fixture_matrix();
        let owned = SpilledShard::write(&dir, &matrix).expect("spill");
        let path = owned.path.clone();
        // Detach the file from the owning handle by copying it aside.
        let snapshot_path = dir.path().join("snapshot-copy.bin");
        owned.copy_to(&snapshot_path).expect("copy payload");

        let opened = SpilledShard::open(snapshot_path.clone(), matrix.rows(), matrix.cols())
            .expect("open snapshot payload");
        assert_eq!(opened.load().expect("load"), matrix);
        assert_eq!(opened.file_path(), snapshot_path.as_path());
        drop(opened);
        assert!(
            snapshot_path.exists(),
            "a non-owning handle must leave the file on disk"
        );

        // Copying a file onto itself (snapshot re-saved into its own dir) is a no-op.
        let reopened =
            SpilledShard::open(snapshot_path.clone(), matrix.rows(), matrix.cols()).unwrap();
        reopened.copy_to(&snapshot_path).expect("self-copy");
        assert_eq!(reopened.load().expect("load after self-copy"), matrix);

        // A wrong manifest shape is caught at open time, before any query faults.
        let err = SpilledShard::open(snapshot_path, matrix.rows() + 4, matrix.cols())
            .expect_err("bad shape must fail fast");
        assert!(err.to_string().contains("bytes on disk"), "got: {err}");
        drop(dir);
        let _ = path;
    }

    #[test]
    fn corrupted_magic_is_rejected() {
        let dir = SpillDir::create().expect("create spill dir");
        let spilled = SpilledShard::write(&dir, &fixture_matrix()).expect("spill");
        let mut bytes = fs::read(&spilled.path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&spilled.path, &bytes).unwrap();
        let err = spilled.load().expect_err("corrupted magic must fail");
        assert!(err.to_string().contains("bad magic"), "got: {err}");
    }
}
