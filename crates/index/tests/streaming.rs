//! Streaming-path coverage: interleaved `add_batch` / `remove` / `compact` sequences must
//! leave `knn_join` indistinguishable from a fresh build of the surviving rows.
//!
//! The sharded index reports **stable insertion ids** while a fresh build of the
//! survivors numbers rows positionally, so each check maps the surviving insertion ids
//! (ascending = insertion order = fresh-build row order) to fresh positions before
//! comparing. Both layouts pad to the SIMD row-quad width and normalize rows with the
//! same op, so ids *and* scores must match bit-for-bit — no float tolerance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_index::{CosineIndex, ShardedCosineIndex};

fn random_vectors(n: usize, d: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Checks that `index` answers exactly like fresh dense + fresh sharded builds of
/// `survivors` (pairs of `(insertion_id, vector)`).
fn assert_matches_fresh_build(
    index: &ShardedCosineIndex,
    survivors: &[(usize, Vec<f32>)],
    queries: &[Vec<f32>],
    k: usize,
) {
    assert_eq!(index.len(), survivors.len());
    let rows: Vec<Vec<f32>> = survivors.iter().map(|(_, v)| v.clone()).collect();

    // A fresh *sharded* build of the survivors must agree exactly (identical kernels),
    // modulo the id renumbering: fresh ids are 0..n in survivor order.
    let fresh_sharded = ShardedCosineIndex::from_vectors(&rows, index.shard_capacity());
    let got = index.knn_join(queries, k);
    let fresh = fresh_sharded.knn_join(queries, k);
    assert_eq!(got.len(), fresh.len());
    for (g, f) in got.iter().zip(fresh.iter()) {
        assert_eq!(g.0, f.0, "query index diverged");
        assert_eq!(
            g.1, survivors[f.1].0,
            "query {}: streamed index returned id {}, fresh build rank {} maps to id {}",
            g.0, g.1, f.1, survivors[f.1].0
        );
        assert_eq!(g.2, f.2, "query {}: streamed vs fresh sharded score", g.0);
    }

    // A fresh *dense* build must agree exactly as well (see module doc).
    let dense = CosineIndex::build(rows);
    let dense_pairs = dense.knn_join(queries, k);
    assert_eq!(got.len(), dense_pairs.len());
    for (g, d) in got.iter().zip(dense_pairs.iter()) {
        assert_eq!((g.0, g.1), (d.0, survivors[d.1].0), "dense comparison: ids");
        assert_eq!(g.2, d.2, "dense comparison: scores");
    }
}

#[test]
fn interleaved_add_remove_compact_matches_fresh_builds() {
    let mut rng = StdRng::seed_from_u64(21);
    let dim = 12;
    let k = 6;
    let queries = random_vectors(60, dim, &mut rng);

    // `survivors` mirrors what the index should contain: (insertion id, vector), ordered.
    let mut survivors: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut index = ShardedCosineIndex::new(5);

    // Batch 1, then spot removals.
    let batch = random_vectors(23, dim, &mut rng);
    let ids = index.add_batch(&batch);
    survivors.extend(ids.clone().zip(batch.iter().cloned()));
    for id in [0, 7, 22] {
        assert!(index.remove(id).is_ok());
        survivors.retain(|(sid, _)| *sid != id);
    }
    assert_matches_fresh_build(&index, &survivors, &queries, k);

    // Batch 2 lands while tombstones are still in place (no compact yet).
    let batch = random_vectors(9, dim, &mut rng);
    let ids = index.add_batch(&batch);
    survivors.extend(ids.clone().zip(batch.iter().cloned()));
    assert_matches_fresh_build(&index, &survivors, &queries, k);

    // Compact, then remove more — including rows that moved shards during compaction.
    index.compact();
    assert_matches_fresh_build(&index, &survivors, &queries, k);
    for id in [1, 2, 3, 25, 30] {
        assert!(index.remove(id).is_ok());
        survivors.retain(|(sid, _)| *sid != id);
    }
    assert_matches_fresh_build(&index, &survivors, &queries, k);

    // Batch 3 after a second compact; ids keep counting from 32.
    index.compact();
    let batch = random_vectors(14, dim, &mut rng);
    let ids = index.add_batch(&batch);
    assert_eq!(ids.start, 32);
    survivors.extend(ids.clone().zip(batch.iter().cloned()));
    assert_matches_fresh_build(&index, &survivors, &queries, k);
}

#[test]
fn interleaved_mutations_under_a_tiny_residency_budget_match_fresh_builds() {
    // Same contract as above with the storage layer engaged: a one-shard budget keeps
    // at most one shard resident, so every compact() spills the cold remainder and
    // queries fault shards back transiently. Results must stay bit-identical.
    let mut rng = StdRng::seed_from_u64(23);
    let dim = 12;
    let k = 6;
    let queries = random_vectors(40, dim, &mut rng);
    let mut survivors: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut index = ShardedCosineIndex::new(5);
    index.set_memory_budget(Some(5 * dim * 4)); // exactly one unpadded shard

    let batch = random_vectors(31, dim, &mut rng);
    survivors.extend(index.add_batch(&batch).zip(batch.iter().cloned()));
    index.compact();
    assert!(
        index.num_spilled_shards() >= index.num_shards() - 2,
        "the one-shard budget must spill the cold shards (padding may round one out)"
    );
    assert_matches_fresh_build(&index, &survivors, &queries, k);

    for id in [2, 11, 29] {
        assert!(index.remove(id).is_ok());
        survivors.retain(|(sid, _)| *sid != id);
    }
    assert_matches_fresh_build(&index, &survivors, &queries, k);

    // Ingest into the spilled tail shard, then compact again (respill).
    let batch = random_vectors(7, dim, &mut rng);
    survivors.extend(index.add_batch(&batch).zip(batch.iter().cloned()));
    index.compact();
    assert_matches_fresh_build(&index, &survivors, &queries, k);
}

#[test]
fn randomized_streaming_soak_matches_fresh_builds() {
    let mut rng = StdRng::seed_from_u64(22);
    let dim = 8;
    let queries = random_vectors(25, dim, &mut rng);
    let mut survivors: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut index = ShardedCosineIndex::new(6);

    for step in 0..40 {
        match rng.gen_range(0..10) {
            // Mostly adds, so the corpus trends upward.
            0..=5 => {
                let batch = random_vectors(rng.gen_range(1..8), dim, &mut rng);
                let ids = index.add_batch(&batch);
                survivors.extend(ids.zip(batch.iter().cloned()));
            }
            6..=8 if !survivors.is_empty() => {
                let victim = survivors[rng.gen_range(0..survivors.len())].0;
                assert!(
                    index.remove(victim).is_ok(),
                    "step {step}: remove({victim})"
                );
                survivors.retain(|(sid, _)| *sid != victim);
            }
            _ => {
                index.compact();
                assert_eq!(index.num_tombstones(), 0);
            }
        }
        if !survivors.is_empty() {
            assert_matches_fresh_build(&index, &survivors, &queries, 4);
        }
    }
}
