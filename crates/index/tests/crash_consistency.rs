//! Crash-consistency: kill the snapshot save at every registered crash failpoint and
//! prove the loader either round-trips bit-identically (the old snapshot survives) or
//! rejects/quarantines cleanly with a typed error — it never serves a half-written
//! index as if it were whole.
//!
//! Failpoints are process-global, so every test here serializes on one mutex and
//! disarms on exit (panic included) via a guard. This file is its own test binary:
//! `cargo test` runs binaries in parallel but tests *within* a binary share the lock.

use std::sync::{Mutex, MutexGuard, OnceLock};

use sudowoodo_faults as faults;
use sudowoodo_index::{BlockingIndex, QuantSpec, ShardedCosineIndex, MANIFEST_FILE};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Disarms every failpoint when dropped, so a panicking assertion cannot leave the
/// process armed for the tests that follow.
struct DisarmGuard;

impl Drop for DisarmGuard {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

fn crash_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sudowoodo-crash-{tag}-{}", std::process::id()))
}

/// Every snapshot-save crash seam the failpoint registry knows about.
const CRASH_POINTS: [&str; 3] = [
    "snapshot.payload.torn",  // payload write dies mid-file, no CRC trailer
    "snapshot.rename.skip",   // tmp file written, crash before the atomic rename
    "snapshot.manifest.torn", // manifest half-written at its final name
];

/// The crash seams of a DELTA publish: the local-payload writes share the full
/// save's failpoints, the manifest has its own (a delta manifest at its final
/// name is `DELTA.swdel`, torn by `delta.manifest.torn`).
const DELTA_CRASH_POINTS: [&str; 3] = [
    "snapshot.payload.torn",
    "snapshot.rename.skip",
    "delta.manifest.torn",
];

fn assert_bit_identical(
    got: &[(usize, usize, f32)],
    expected: &[(usize, usize, f32)],
    context: &str,
) {
    assert_eq!(got.len(), expected.len(), "{context}: pair count");
    for (a, b) in got.iter().zip(expected.iter()) {
        assert_eq!((a.0, a.1), (b.0, b.1), "{context}: ids");
        assert_eq!(a.2.to_bits(), b.2.to_bits(), "{context}: scores");
    }
}

/// A save into a FRESH directory killed at any crash point must leave a directory the
/// loader refuses (typed error) or quarantines — never a half-written index that
/// loads as if complete.
#[test]
fn a_crashed_first_save_never_loads_as_a_whole_index() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let corpus = vectors(24, 6, 11);
    let queries = vectors(5, 6, 12);
    let built = ShardedCosineIndex::from_vectors(&corpus, 8);
    let expected = built.knn_join(&queries, 4);

    for point in CRASH_POINTS {
        let dir = crash_dir(&format!("fresh-{}", point.replace('.', "-")));
        faults::arm(point, faults::Policy::Once);
        let err = built.save_snapshot(&dir).expect_err("the save must crash");
        assert!(
            err.to_string().contains("failpoint"),
            "{point}: the injected crash must surface, got: {err}"
        );
        faults::disarm(point);

        match ShardedCosineIndex::load_snapshot(&dir) {
            // No manifest reached its final name (or it is torn): a clean, typed
            // rejection is crash-consistent.
            Err(e) => {
                let message = e.to_string();
                assert!(
                    message.contains("manifest")
                        || message.contains("CRC")
                        || e.kind() == std::io::ErrorKind::NotFound,
                    "{point}: rejection must be typed, got: {message}"
                );
            }
            // The manifest survived whole, so the load succeeds — but the torn
            // payload must be quarantined, never silently served.
            Ok(loaded) => {
                let outcome = loaded.knn_join_report(&queries, 4);
                if loaded.quarantined_shards().is_empty() {
                    assert_bit_identical(&outcome.pairs, &expected, point);
                    assert!(!outcome.degraded, "{point}: whole load cannot degrade");
                } else {
                    assert!(
                        outcome.degraded,
                        "{point}: quarantined shards must flag the join"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A save OVER an existing good snapshot killed at any crash point must leave the old
/// snapshot loadable bit-identically (the whole point of tmp-file + atomic rename),
/// or reject/quarantine cleanly when the crash tore the final files themselves.
#[test]
fn a_crashed_overwrite_keeps_the_previous_snapshot_or_fails_typed() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let queries = vectors(5, 6, 22);

    for point in CRASH_POINTS {
        let dir = crash_dir(&format!("overwrite-{}", point.replace('.', "-")));
        let old = ShardedCosineIndex::from_vectors(&vectors(24, 6, 21), 8);
        old.save_snapshot(&dir).expect("the good save");
        let expected = old.knn_join(&queries, 4);

        // The overwriting index differs, so a surviving load must match ONE of the
        // two generations — stitching them together would produce different pairs.
        let mut newer = ShardedCosineIndex::from_vectors(&vectors(24, 6, 21), 8);
        newer.add_batch(&vectors(8, 6, 23));
        let newer_expected = newer.knn_join(&queries, 4);

        faults::arm(point, faults::Policy::Once);
        newer
            .save_snapshot(&dir)
            .expect_err("the overwrite must crash");
        faults::disarm(point);

        match ShardedCosineIndex::load_snapshot(&dir) {
            Err(e) => {
                // Only a torn manifest at its final name can make the directory
                // unloadable; the CRC must be what caught it.
                assert_eq!(point, "snapshot.manifest.torn", "unexpected rejection");
                assert!(e.to_string().contains("CRC"), "got: {e}");
            }
            Ok(loaded) => {
                let outcome = loaded.knn_join_report(&queries, 4);
                if outcome.degraded {
                    // A torn payload under a surviving old manifest: quarantined,
                    // flagged, and the un-quarantined pairs still come from exactly
                    // one generation's shard files.
                    assert!(!loaded.quarantined_shards().is_empty());
                } else {
                    let matches_old =
                        outcome.pairs.len() == expected.len()
                            && outcome.pairs.iter().zip(expected.iter()).all(|(a, b)| {
                                (a.0, a.1, a.2.to_bits()) == (b.0, b.1, b.2.to_bits())
                            });
                    let matches_new = outcome.pairs.len() == newer_expected.len()
                        && outcome
                            .pairs
                            .iter()
                            .zip(newer_expected.iter())
                            .all(|(a, b)| (a.0, a.1, a.2.to_bits()) == (b.0, b.1, b.2.to_bits()));
                    assert!(
                        matches_old || matches_new,
                        "{point}: a loaded snapshot must be one generation, not a blend"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A DELTA publish killed at any of its crash seams must (a) leave the target
/// directory unloadable as a whole epoch — typed rejection or quarantine, never a
/// silently partial chain head — and (b) leave the BASE snapshot untouched and
/// loadable bit-identically: a crashed incremental publish can cost the new
/// epoch, never the old one.
#[test]
fn a_crashed_delta_publish_rejects_the_head_and_preserves_the_base() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let queries = vectors(5, 6, 52);

    for point in DELTA_CRASH_POINTS {
        let base_dir = crash_dir(&format!("delta-base-{}", point.replace('.', "-")));
        let head_dir = crash_dir(&format!("delta-head-{}", point.replace('.', "-")));
        ShardedCosineIndex::from_vectors(&vectors(24, 6, 51), 8)
            .save_snapshot(&base_dir)
            .expect("the good base save");
        let base_expected = ShardedCosineIndex::load_snapshot(&base_dir)
            .expect("base loads")
            .knn_join(&queries, 4);

        let mut index = ShardedCosineIndex::load_snapshot(&base_dir).expect("cold load");
        index.add_batch(&vectors(8, 6, 53));

        faults::arm(point, faults::Policy::Once);
        let err = index
            .save_delta_snapshot(&base_dir, &head_dir)
            .expect_err("the delta publish must crash");
        assert!(
            err.to_string().contains("failpoint"),
            "{point}: the injected crash must surface, got: {err}"
        );
        faults::disarm(point);

        // (a) The half-published head never loads as a whole epoch.
        match ShardedCosineIndex::load_snapshot(&head_dir) {
            Err(e) => {
                let message = e.to_string();
                assert!(
                    message.contains("manifest")
                        || message.contains("CRC")
                        || e.kind() == std::io::ErrorKind::NotFound,
                    "{point}: rejection must be typed, got: {message}"
                );
            }
            Ok(loaded) => {
                // Only possible when the manifest reached its final name whole;
                // a torn local payload must then be quarantined, not served.
                let outcome = loaded.knn_join_report(&queries, 4);
                assert!(
                    outcome.degraded && !loaded.quarantined_shards().is_empty(),
                    "{point}: a surviving manifest over torn payloads must degrade"
                );
            }
        }

        // (b) The base is untouched: bit-identical to before the crashed publish.
        let base_after = ShardedCosineIndex::load_snapshot(&base_dir)
            .unwrap_or_else(|e| panic!("{point}: the base must survive, got: {e}"));
        assert_bit_identical(
            &base_after.knn_join(&queries, 4),
            &base_expected,
            &format!("{point}: base after crashed delta publish"),
        );

        std::fs::remove_dir_all(&base_dir).ok();
        std::fs::remove_dir_all(&head_dir).ok();
    }
}

/// The crash seams hold for the quantized payload format too: `SWSHARDQ1` shares
/// the torn-payload failpoint with `SWSHARD1` (the writer dies mid-file, before the
/// codes and the CRC trailer), and a quantized save killed at any crash point must
/// reject or quarantine — never serve a half-written quantized shard.
#[test]
fn a_crashed_quantized_save_never_loads_as_a_whole_index() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let corpus = vectors(24, 6, 61);
    let queries = vectors(5, 6, 62);
    let mut built = ShardedCosineIndex::from_vectors(&corpus, 8);
    built.set_quantization(Some(QuantSpec::default()));
    built.compact();
    assert_eq!(built.num_quantized_shards(), built.num_shards());
    let expected = built.knn_join(&queries, 4);

    for point in CRASH_POINTS {
        let dir = crash_dir(&format!("quant-fresh-{}", point.replace('.', "-")));
        faults::arm(point, faults::Policy::Once);
        let err = built.save_snapshot(&dir).expect_err("the save must crash");
        assert!(
            err.to_string().contains("failpoint"),
            "{point}: the injected crash must surface, got: {err}"
        );
        faults::disarm(point);

        match ShardedCosineIndex::load_snapshot(&dir) {
            Err(e) => {
                let message = e.to_string();
                assert!(
                    message.contains("manifest")
                        || message.contains("CRC")
                        || e.kind() == std::io::ErrorKind::NotFound,
                    "{point}: rejection must be typed, got: {message}"
                );
            }
            Ok(loaded) => {
                let outcome = loaded.knn_join_report(&queries, 4);
                if loaded.quarantined_shards().is_empty() {
                    assert_bit_identical(&outcome.pairs, &expected, point);
                    assert!(!outcome.degraded, "{point}: whole load cannot degrade");
                } else {
                    assert!(
                        outcome.degraded,
                        "{point}: quarantined shards must flag the join"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The un-faulted save/load cycle is bit-identical — the control leg proving the
/// chaos legs above are testing the fault paths, not masking a broken baseline.
#[test]
fn unfaulted_round_trip_is_bit_identical() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let corpus = vectors(24, 6, 31);
    let queries = vectors(5, 6, 32);
    let built = ShardedCosineIndex::from_vectors(&corpus, 8);
    let dir = crash_dir("control");
    built.save_snapshot(&dir).unwrap();
    let loaded = ShardedCosineIndex::load_snapshot(&dir).unwrap();
    let outcome = loaded.knn_join_report(&queries, 4);
    assert!(!outcome.degraded);
    assert!(outcome.quarantined_shards.is_empty());
    assert_bit_identical(&outcome.pairs, &built.knn_join(&queries, 4), "control");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A foreign or bit-flipped manifest is caught by magic/CRC checks with a typed
/// error naming the cause — the BlockingIndex wrapper included.
#[test]
fn manifest_corruption_is_named_not_misparsed() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let dir = crash_dir("manifest-flip");
    ShardedCosineIndex::from_vectors(&vectors(12, 4, 41), 4)
        .save_snapshot(&dir)
        .unwrap();
    let manifest = dir.join(MANIFEST_FILE);
    let mut bytes = std::fs::read(&manifest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&manifest, &bytes).unwrap();
    let err = BlockingIndex::load_snapshot(&dir).unwrap_err();
    assert!(err.to_string().contains("CRC"), "got: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}
