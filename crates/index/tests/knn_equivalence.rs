//! Equivalence of the GEMM-tiled `knn_join` with the scalar per-query path.
//!
//! The blocking stage's candidate sets must not depend on which execution path (tiled
//! GEMM vs per-query dot scan) produced them: for every query, the neighbor **id sets**
//! must be identical, the ordering contract (score desc, id asc) must hold, and scores
//! must agree to float tolerance. A from-scratch scalar reference (no kernels at all)
//! anchors both paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_index::CosineIndex;

fn random_vectors(n: usize, d: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Ground-truth top-k per query: plain f32 loops, no SIMD, no tiling, no heaps.
fn reference_knn(corpus: &[Vec<f32>], queries: &[Vec<f32>], k: usize) -> Vec<Vec<(usize, f32)>> {
    let normalized: Vec<Vec<f32>> = corpus
        .iter()
        .map(|v| {
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                v.iter().map(|x| x / norm).collect()
            } else {
                v.clone()
            }
        })
        .collect();
    queries
        .iter()
        .map(|q| {
            let qnorm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
            let inv = if qnorm > 1e-12 { 1.0 / qnorm } else { 0.0 };
            let mut scored: Vec<(usize, f32)> = normalized
                .iter()
                .enumerate()
                .map(|(id, v)| {
                    let dot: f32 = v.iter().zip(q.iter()).map(|(a, b)| a * b).sum();
                    (id, dot * inv)
                })
                .collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            scored.truncate(k);
            scored
        })
        .collect()
}

#[test]
fn gemm_tiled_knn_join_matches_scalar_top_k() {
    let mut rng = StdRng::seed_from_u64(5);
    // 700 corpus rows x 300 queries crosses several 256-row query tiles.
    let corpus = random_vectors(700, 32, &mut rng);
    let queries = random_vectors(300, 32, &mut rng);
    let k = 10;
    let index = CosineIndex::build(corpus);

    let joined = index.knn_join(&queries, k);
    assert_eq!(joined.len(), queries.len() * k);

    for (qi, q) in queries.iter().enumerate() {
        let from_join: Vec<(usize, f32)> = joined
            .iter()
            .filter(|(i, _, _)| *i == qi)
            .map(|&(_, id, s)| (id, s))
            .collect();
        let from_scalar: Vec<(usize, f32)> = index
            .top_k(q, k)
            .into_iter()
            .map(|h| (h.id, h.score))
            .collect();

        let join_ids: Vec<usize> = from_join.iter().map(|p| p.0).collect();
        let scalar_ids: Vec<usize> = from_scalar.iter().map(|p| p.0).collect();
        assert_eq!(join_ids, scalar_ids, "query {qi}: neighbor ids diverged");
        for (a, b) in from_join.iter().zip(from_scalar.iter()) {
            assert!(
                (a.1 - b.1).abs() < 1e-5,
                "query {qi}: score mismatch {} vs {}",
                a.1,
                b.1
            );
        }
    }
}

#[test]
fn both_paths_match_a_from_scratch_reference() {
    let mut rng = StdRng::seed_from_u64(6);
    let corpus = random_vectors(300, 24, &mut rng);
    let queries = random_vectors(90, 24, &mut rng);
    let k = 7;
    let index = CosineIndex::build(corpus.clone());
    let expected = reference_knn(&corpus, &queries, k);

    let joined = index.knn_join(&queries, k);
    for (qi, expected_hits) in expected.iter().enumerate() {
        let ids: Vec<usize> = joined
            .iter()
            .filter(|(i, _, _)| *i == qi)
            .map(|&(_, id, _)| id)
            .collect();
        let expected_ids: Vec<usize> = expected_hits.iter().map(|p| p.0).collect();
        assert_eq!(ids, expected_ids, "query {qi} diverged from reference");
    }
}

#[test]
fn knn_join_is_deterministic_across_runs() {
    let mut rng = StdRng::seed_from_u64(7);
    let corpus = random_vectors(400, 16, &mut rng);
    let queries = random_vectors(150, 16, &mut rng);
    let index = CosineIndex::build(corpus);
    let first = index.knn_join(&queries, 5);
    for _ in 0..3 {
        assert_eq!(index.knn_join(&queries, 5), first);
    }
}
