//! Property tier for quantized shard storage: the i8 two-stage scan must be
//! **invisible** in results — ids and f32 score bits identical to the dense build —
//! no matter how adversarial the corpus is, and the routing report must prove the
//! quantized scan actually ran (the assertions would pass vacuously otherwise).
//!
//! The tier covers duplicate rows (maximal tie-breaking pressure), near-ties
//! (candidate ordering decided far below the quantization error), adversarial
//! per-row scale outliers (rows whose i8 reconstruction error is enormous),
//! clustered corpora under spill + routing, both routing extremes (all shards
//! pruned / no shard prunable), and the widened-candidate sufficiency argument
//! checked as an **explicit bound** over every (query, row) pair of the fixture —
//! not by sampling joins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_index::{
    CosineIndex, QuantSpec, QuantizedMatrix, QuantizedRow, RoutingStats, ShardedCosineIndex,
};
use sudowoodo_nn::Matrix;

fn random_vectors(n: usize, d: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Builds a sharded index with quantization applied (and an optional residency
/// budget, so the quantized payloads live on disk in `SWSHARDQ1`).
fn quantized_index(
    corpus: &[Vec<f32>],
    capacity: usize,
    budget: Option<usize>,
    alpha: usize,
) -> ShardedCosineIndex {
    let mut index = ShardedCosineIndex::from_vectors(corpus, capacity);
    index.set_quantization(Some(QuantSpec { alpha }));
    index.set_memory_budget(budget);
    index.compact();
    assert_eq!(
        index.num_quantized_shards(),
        index.num_shards(),
        "every shard must re-encode as quantized after compact"
    );
    index
}

/// Asserts two join results are identical down to the f32 score bits.
fn assert_bit_identical(got: &[(usize, usize, f32)], expected: &[(usize, usize, f32)], ctx: &str) {
    assert_eq!(got.len(), expected.len(), "{ctx}: result size");
    for (g, e) in got.iter().zip(expected.iter()) {
        assert_eq!(
            (g.0, g.1, g.2.to_bits()),
            (e.0, e.1, e.2.to_bits()),
            "{ctx}: (query {}, id {}) scores {} vs {}",
            g.0,
            g.1,
            g.2,
            e.2
        );
    }
}

#[test]
fn duplicate_rows_are_tie_broken_identically_under_quantization() {
    // 30 distinct base rows, each repeated 4 times: every top-k is decided by the
    // id tie-break, the harshest regime for any approximate pre-filter because the
    // quantized scores of duplicates are *exactly* equal.
    let mut rng = StdRng::seed_from_u64(41);
    let base = random_vectors(30, 12, &mut rng);
    let mut corpus = Vec::new();
    for row in &base {
        for _ in 0..4 {
            corpus.push(row.clone());
        }
    }
    let queries = random_vectors(50, 12, &mut rng);
    let expected = CosineIndex::build(corpus.clone()).knn_join(&queries, 6);

    for capacity in [5usize, 17] {
        let index = quantized_index(&corpus, capacity, None, 2);
        let got = index.knn_join(&queries, 6);
        assert_bit_identical(&got, &expected, &format!("duplicates, capacity {capacity}"));
        let report = index.routing_report();
        assert!(
            report.quant_scans > 0,
            "the quantized scan must actually have run: {report:?}"
        );
        assert!(report.rescored_rows >= 6, "{report:?}");
    }
}

#[test]
fn near_ties_are_ordered_identically_under_quantization() {
    // Rows are microscopic perturbations (1e-6) of a handful of directions: exact
    // scores differ in the last few ulps, far below the quantization error, so the
    // ordering is decided entirely by the exact rescore stage.
    let mut rng = StdRng::seed_from_u64(42);
    let base = random_vectors(6, 16, &mut rng);
    let mut corpus = Vec::new();
    for _ in 0..40 {
        let b = &base[rng.gen_range(0..base.len())];
        corpus.push(
            b.iter()
                .map(|x| x + rng.gen_range(-1e-6f32..1e-6))
                .collect(),
        );
    }
    let queries = random_vectors(30, 16, &mut rng);
    let expected = CosineIndex::build(corpus.clone()).knn_join(&queries, 8);

    let index = quantized_index(&corpus, 7, None, 2);
    let got = index.knn_join(&queries, 8);
    assert_bit_identical(&got, &expected, "near-ties");
    assert!(index.routing_report().quant_scans > 0);
}

#[test]
fn adversarial_scale_outliers_stay_bit_identical() {
    // Per-row i8 scales span 12 orders of magnitude: tiny rows (1e-6), huge rows
    // (1e6), and rows with a single enormous coordinate that makes every *other*
    // coordinate quantize to zero — the reconstruction error is maximal, so the
    // candidate bound has to do real work. Cosine normalization means the answers
    // match the unscaled geometry regardless.
    let mut rng = StdRng::seed_from_u64(43);
    let dim = 16;
    let mut corpus = Vec::new();
    for i in 0..120 {
        let mut row: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        match i % 4 {
            0 => row.iter_mut().for_each(|x| *x *= 1e-6),
            1 => row.iter_mut().for_each(|x| *x *= 1e6),
            2 => row[i % dim] = 3e5, // one dominant coordinate: coarsest codes
            _ => {}
        }
        corpus.push(row);
    }
    let queries = random_vectors(40, dim, &mut rng);
    let expected = CosineIndex::build(corpus.clone()).knn_join(&queries, 5);

    for alpha in [1usize, 2, 8] {
        let index = quantized_index(&corpus, 11, None, alpha);
        let got = index.knn_join(&queries, 5);
        assert_bit_identical(&got, &expected, &format!("scale outliers, alpha {alpha}"));
        let report = index.routing_report();
        assert!(
            report.quant_scans > 0 && report.rescored_rows > 0,
            "{report:?}"
        );
    }
}

#[test]
fn clustered_corpus_with_spill_and_routing_is_bit_identical() {
    // The routing-friendly shape: tight clusters, every shard spilled to the
    // SWSHARDQ1 on-disk format (budget 0), routing pruning on. The quantization
    // error term must keep the shard prune admissible while shards fault in.
    let mut rng = StdRng::seed_from_u64(44);
    let dim = 12;
    let centers = random_vectors(8, dim, &mut rng);
    let mut corpus = Vec::new();
    for _ in 0..400 {
        let c = &centers[rng.gen_range(0..centers.len())];
        corpus.push(
            c.iter()
                .map(|x| x + rng.gen_range(-0.05f32..0.05))
                .collect(),
        );
    }
    let queries = random_vectors(60, dim, &mut rng);
    let expected = CosineIndex::build(corpus.clone()).knn_join(&queries, 10);

    let index = quantized_index(&corpus, 32, Some(0), 2);
    assert_eq!(index.num_spilled_shards(), index.num_shards());
    assert!(index.routing_enabled());
    let got = index.knn_join(&queries, 10);
    assert_bit_identical(&got, &expected, "clustered + spilled + routed");
    let report = index.routing_report();
    assert!(report.quant_scans > 0, "{report:?}");
    assert!(
        report.spill_faults > 0,
        "spilled shards must have faulted in"
    );
}

#[test]
fn routing_extreme_all_other_shards_pruned_still_runs_the_quantized_scan() {
    // Shard 0 holds the only plausible matches; every other shard is a tight
    // cluster pointing the opposite way. Routing must prune all of them, and the
    // report must show the one visited shard was scanned *quantized*.
    let dim = 8;
    let mut corpus = Vec::new();
    for i in 0..4 {
        let mut row = vec![0.0f32; dim];
        row[0] = 1.0;
        row[1] = 0.001 * i as f32; // near-duplicates of +e0
        corpus.push(row);
    }
    for i in 0..36 {
        let mut row = vec![0.0f32; dim];
        row[0] = -1.0;
        row[1] = 0.001 * (i % 7) as f32; // tight cluster at -e0
        corpus.push(row);
    }
    let queries = vec![{
        let mut q = vec![0.0f32; dim];
        q[0] = 1.0;
        q
    }];
    let expected = CosineIndex::build(corpus.clone()).knn_join(&queries, 2);

    let index = quantized_index(&corpus, 4, None, 2);
    assert_eq!(index.num_shards(), 10);
    let got = index.knn_join(&queries, 2);
    assert_bit_identical(&got, &expected, "all-pruned extreme");
    let report = index.routing_report();
    assert_eq!(
        (report.shards_visited, report.shards_pruned),
        (1, 9),
        "routing must prune every far shard: {report:?}"
    );
    assert_eq!(
        report.quant_scans, 1,
        "the single visited shard must have been scanned quantized: {report:?}"
    );
    assert!(report.rescored_rows >= 2, "{report:?}");
}

#[test]
fn routing_extreme_nothing_prunable_scans_every_shard_quantized() {
    // Every shard holds rows tied with the best score, so no shard's upper bound
    // can drop below the current worst: zero prunes, and the quantized scan must
    // have run once per shard (single query tile).
    let dim = 8;
    let mut row = vec![0.0f32; dim];
    row[0] = 1.0;
    let corpus = vec![row.clone(); 40];
    let queries = vec![row; 3];
    let expected = CosineIndex::build(corpus.clone()).knn_join(&queries, 3);

    let index = quantized_index(&corpus, 4, None, 2);
    assert_eq!(index.num_shards(), 10);
    let got = index.knn_join(&queries, 3);
    assert_bit_identical(&got, &expected, "none-pruned extreme");
    let report = index.routing_report();
    assert_eq!(report.shards_pruned, 0, "{report:?}");
    assert_eq!(
        report.quant_scans, 10,
        "every shard must have been scanned quantized: {report:?}"
    );
}

#[test]
fn widened_candidate_sufficiency_holds_as_an_explicit_bound() {
    // The admissibility proof, checked exhaustively rather than sampled:
    //
    // 1. For EVERY (query, row) pair, the approximate score is within
    //    `quant_scan_epsilon` of the true (f64) dot product — the reconstruction
    //    bound the two-stage scan relies on.
    // 2. For EVERY query, every true top-k row's approximate score clears the
    //    widened-candidate threshold `a_ref − 2·eps` (a_ref = the alpha·k-th best
    //    approximate score), so the exact rescore always sees the full true top-k.
    //
    // Together these prove the candidate rule can never drop a winner, which is
    // what makes the joint assertion "ids and score bits identical" in the other
    // tests a theorem rather than a lucky draw.
    let mut rng = StdRng::seed_from_u64(45);
    let dim = 24;
    let (k, alpha) = (5usize, 2usize);
    let k_wide = k * alpha;
    // Mixed-magnitude corpus, including scale outliers, as one "shard".
    let mut rows = Vec::new();
    for i in 0..80 {
        let mut row: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        if i % 5 == 0 {
            row.iter_mut().for_each(|x| *x *= 1e4);
        }
        if i % 7 == 0 {
            row[0] = 2e4;
        }
        rows.push(row);
    }
    let matrix = Matrix::from_vec(rows.len(), dim, rows.concat());
    let quant = QuantizedMatrix::quantize(&matrix);

    for _ in 0..25 {
        let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let inv = 1.0f32 / query.iter().map(|x| x * x).sum::<f32>().sqrt();
        let normalized: Vec<f32> = query.iter().map(|x| x * inv).collect();
        let q = QuantizedRow::from_row(&normalized);
        let eps = RoutingStats::quant_scan_epsilon(
            q.norm,
            q.err_norm,
            quant.max_err_norm(),
            quant.max_row_norm(),
            dim,
        );

        let mut exact = Vec::with_capacity(quant.rows());
        let mut approx = Vec::with_capacity(quant.rows());
        for r in 0..quant.rows() {
            let row = matrix.row(r);
            let e: f64 = normalized
                .iter()
                .zip(row)
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            let idot = Matrix::dot_i8(&q.codes, quant.code_row(r));
            let a = q.scale as f64 * quant.scale(r) as f64 * idot as f64;
            // Part 1: the reconstruction bound holds for every single row.
            assert!(
                (e - a).abs() <= eps,
                "row {r}: |{e} - {a}| = {} > eps {eps}",
                (e - a).abs()
            );
            exact.push(e);
            approx.push(a);
        }

        // Part 2: every true top-k row clears the widened-candidate threshold.
        let mut order: Vec<usize> = (0..quant.rows()).collect();
        order.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap().then(a.cmp(&b)));
        let mut by_approx: Vec<f64> = approx.clone();
        by_approx.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let a_ref = by_approx[k_wide - 1];
        for &r in &order[..k] {
            assert!(
                approx[r] >= a_ref - 2.0 * eps,
                "true top-{k} row {r} (exact {}) fell below the widened threshold: \
                 approx {} < a_ref {a_ref} - 2*eps {eps}",
                exact[r],
                approx[r]
            );
        }
    }
}

#[test]
fn alpha_is_invisible_in_results() {
    // The candidate-widening factor only trades scan work for rescore work; any
    // alpha (including the degenerate 1) must produce bit-identical joins.
    let mut rng = StdRng::seed_from_u64(46);
    let corpus = random_vectors(300, 16, &mut rng);
    let queries = random_vectors(80, 16, &mut rng);
    let expected = CosineIndex::build(corpus.clone()).knn_join(&queries, 7);
    for alpha in [1usize, 3, 50] {
        let index = quantized_index(&corpus, 23, None, alpha);
        let got = index.knn_join(&queries, 7);
        assert_bit_identical(&got, &expected, &format!("alpha {alpha}"));
    }
}
