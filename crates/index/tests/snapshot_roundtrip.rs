//! Snapshot persistence contract: a saved-and-cold-loaded index is bit-identical in
//! results to the index it was saved from — ids *and* scores — in every build
//! configuration, including the acceptance case (the 2k×10k fixture with spill forced
//! and routing on). The save/load here crosses a process boundary in everything but
//! the PID: the loader reconstructs the index purely from the files on disk, exactly
//! as another process would.

use std::sync::atomic::{AtomicU64, Ordering};

use sudowoodo_index::{BlockingIndex, QuantSpec, ShardedCosineIndex, MANIFEST_FILE};

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

/// A unique temp directory per test (parallel test threads must not collide).
fn snapshot_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sudowoodo-snap-test-{tag}-{}-{n}",
        std::process::id()
    ))
}

/// Scores must match to the bit, so compare them as bits, not with a tolerance.
fn assert_bit_identical(a: &[(usize, usize, f32)], b: &[(usize, usize, f32)], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: pair count");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!((x.0, x.1), (y.0, y.1), "{context}: ids of pair {i}");
        assert_eq!(
            x.2.to_bits(),
            y.2.to_bits(),
            "{context}: score bits of pair {i}"
        );
    }
}

#[test]
fn acceptance_spilled_routed_2k_x_10k_round_trip_is_bit_identical() {
    let corpus = vectors(10_000, 32, 41);
    let queries = vectors(2_000, 32, 42);
    // Spill forced (zero residency budget), routing on (the default).
    let built = ShardedCosineIndex::from_vectors_with_budget(&corpus, 1024, Some(0));
    assert_eq!(built.num_spilled_shards(), built.num_shards());
    assert!(built.routing_enabled());
    let expected = built.knn_join(&queries, 20);

    let dir = snapshot_dir("acceptance");
    built.save_snapshot(&dir).expect("save");
    drop(built); // the source index (and its spill files) are gone — only the snapshot remains

    let loaded = ShardedCosineIndex::load_snapshot(&dir).expect("load");
    assert_eq!(
        loaded.num_spilled_shards(),
        loaded.num_shards(),
        "a snapshot load must start cold"
    );
    assert_eq!((loaded.len(), loaded.dim()), (10_000, 32));
    assert_bit_identical(&loaded.knn_join(&queries, 20), &expected, "cold load");

    // The cold join really went to the snapshot files (uniform random data offers
    // routing nothing to prune, so every visit is a disk fault).
    let report = loaded.routing_report();
    assert!(report.shards_visited > 0);
    assert_eq!(report.spill_faults, report.shards_visited);

    // Warming up (no budget + compact -> everything resident) changes nothing.
    let mut warmed = ShardedCosineIndex::load_snapshot(&dir).expect("load again");
    warmed.compact();
    assert_eq!(
        warmed.num_spilled_shards(),
        0,
        "compact warms a budgetless load"
    );
    assert_bit_identical(&warmed.knn_join(&queries, 20), &expected, "warmed load");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restored_routing_stats_prune_without_touching_snapshot_files() {
    // Shard 0 aligns with the query; the remaining shards are orthogonal. The loaded
    // index must prune them from the *manifest-restored* statistics — no payload read.
    let mut corpus: Vec<Vec<f32>> = (0..8)
        .map(|i| vec![1.0, 0.001 * i as f32, 0.0, 0.0])
        .collect();
    for i in 0..24 {
        corpus.push(vec![0.0, 0.0, 1.0, 0.001 * i as f32]);
    }
    let built = ShardedCosineIndex::from_vectors(&corpus, 8);
    let dir = snapshot_dir("pruning");
    built.save_snapshot(&dir).expect("save");

    let loaded = ShardedCosineIndex::load_snapshot(&dir).expect("load");
    let query = vec![vec![1.0, 0.0, 0.0, 0.0]];
    let hits = loaded.knn_join(&query, 4);
    assert_eq!(hits, built.knn_join(&query, 4));
    let report = loaded.routing_report();
    assert!(
        report.shards_pruned >= 3,
        "restored stats should prune the orthogonal shards: {report:?}"
    );
    assert!(
        report.spill_faults < 4,
        "pruned shards must never fault from the snapshot: {report:?}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn round_trip_preserves_tombstones_and_stable_ids() {
    let corpus = vectors(57, 8, 7);
    let mut built = ShardedCosineIndex::from_vectors(&corpus, 8);
    built.remove(3).unwrap();
    built.remove(40).unwrap();
    // No compact: the snapshot must carry the tombstones as-is.
    let queries = vectors(9, 8, 8);
    let expected = built.knn_join(&queries, 6);

    let dir = snapshot_dir("tombstones");
    built.save_snapshot(&dir).expect("save");
    let mut loaded = ShardedCosineIndex::load_snapshot(&dir).expect("load");
    assert_eq!(loaded.len(), 55);
    assert_eq!(loaded.num_tombstones(), 2);
    assert!(!loaded.contains(3) && loaded.contains(4));
    assert_bit_identical(&loaded.knn_join(&queries, 6), &expected, "tombstoned load");

    // The loaded index remains fully mutable and keeps assigning stable ids where the
    // saved one left off.
    assert_eq!(
        loaded.remove(3).unwrap_err().to_string(),
        "id 3 is already removed"
    );
    assert_eq!(loaded.add_batch(&vectors(2, 8, 9)), 57..59);
    assert_eq!(loaded.compact(), 2);
    let mut source = ShardedCosineIndex::from_vectors(&corpus, 8);
    source.remove(3).unwrap();
    source.remove(40).unwrap();
    source.add_batch(&vectors(2, 8, 9));
    source.compact();
    assert_bit_identical(
        &loaded.knn_join(&queries, 6),
        &source.knn_join(&queries, 6),
        "mutated-after-load",
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn several_loads_share_one_snapshot_without_interfering() {
    let corpus = vectors(60, 6, 21);
    let built = ShardedCosineIndex::from_vectors(&corpus, 8);
    let queries = vectors(5, 6, 22);
    let expected = built.knn_join(&queries, 4);

    let dir = snapshot_dir("shared");
    built.save_snapshot(&dir).expect("save");
    let a = ShardedCosineIndex::load_snapshot(&dir).expect("load a");
    let b = ShardedCosineIndex::load_snapshot(&dir).expect("load b");
    assert_bit_identical(&a.knn_join(&queries, 4), &expected, "load a");
    // Dropping one loaded index must not delete the snapshot under the other.
    drop(a);
    assert_bit_identical(&b.knn_join(&queries, 4), &expected, "load b after drop a");
    drop(b);
    assert!(
        dir.join(MANIFEST_FILE).exists(),
        "loaded indexes never delete the snapshot"
    );
    let c = ShardedCosineIndex::load_snapshot(&dir).expect("load c");
    assert_bit_identical(&c.knn_join(&queries, 4), &expected, "load c");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn blocking_index_round_trips_both_layouts() {
    let corpus = vectors(41, 5, 31);
    let queries = vectors(7, 5, 32);
    for shard_capacity in [None, Some(4)] {
        let built = BlockingIndex::build(corpus.clone(), shard_capacity);
        let expected = built.knn_join(&queries, 5);
        let dir = snapshot_dir("blocking");
        built.save_snapshot(&dir).expect("save");
        let loaded = BlockingIndex::load_snapshot(&dir).expect("load");
        assert_bit_identical(
            &loaded.knn_join(&queries, 5),
            &expected,
            &format!("layout {shard_capacity:?}"),
        );
        match (&loaded, shard_capacity) {
            (BlockingIndex::Dense(_), None) | (BlockingIndex::Sharded(_), Some(_)) => {}
            other => panic!("snapshot changed the layout: {:?}", other.1),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn saving_over_an_old_snapshot_leaves_no_stale_payloads() {
    let dir = snapshot_dir("overwrite");
    let big = ShardedCosineIndex::from_vectors(&vectors(40, 4, 51), 4); // 10 shards
    big.save_snapshot(&dir).expect("save big");
    let small = ShardedCosineIndex::from_vectors(&vectors(8, 4, 52), 4); // 2 shards
    small.save_snapshot(&dir).expect("save small over big");
    let loaded = ShardedCosineIndex::load_snapshot(&dir).expect("load");
    assert_eq!(loaded.len(), 8);
    let stale: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("shard-") && n != "shard-0.bin" && n != "shard-1.bin")
        .collect();
    assert!(stale.is_empty(), "stale payloads survived: {stale:?}");

    // Overwriting with the dense layout clears the shard payloads too.
    BlockingIndex::build(vectors(8, 4, 53), None)
        .save_snapshot(&dir)
        .expect("save dense over sharded");
    let relisted: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        relisted.iter().all(|n| !n.starts_with("shard-")),
        "sharded payloads survived a dense overwrite: {relisted:?}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn loading_garbage_fails_cleanly() {
    let dir = snapshot_dir("garbage");
    // Missing directory / manifest.
    assert!(ShardedCosineIndex::load_snapshot(&dir).is_err());
    std::fs::create_dir_all(&dir).unwrap();
    assert!(ShardedCosineIndex::load_snapshot(&dir).is_err());
    // Foreign file under the manifest name.
    std::fs::write(dir.join(MANIFEST_FILE), b"definitely not a manifest").unwrap();
    let err = ShardedCosineIndex::load_snapshot(&dir).unwrap_err();
    assert!(err.to_string().contains("bad magic"), "got: {err}");

    // A truncated payload is caught at load time, quarantined, and reported as a
    // degraded (never silently wrong) index rather than aborting the whole load.
    let built = ShardedCosineIndex::from_vectors(&vectors(12, 4, 61), 4);
    built.save_snapshot(&dir).expect("save");
    let payload = dir.join("shard-1.bin");
    let bytes = std::fs::read(&payload).unwrap();
    std::fs::write(&payload, &bytes[..bytes.len() - 3]).unwrap();
    let degraded = ShardedCosineIndex::load_snapshot(&dir).expect("degraded load");
    assert_eq!(degraded.quarantined_shards(), vec![1]);
    let queries = vectors(3, 4, 61);
    let outcome = degraded.knn_join_report(&queries, 3);
    assert!(outcome.degraded, "quarantined shard must flag the join");
    assert_eq!(outcome.quarantined_shards, vec![1]);
    assert!(
        outcome
            .pairs
            .iter()
            .all(|&(_, id, _)| !(4..8).contains(&id)),
        "quarantined rows must not be answered"
    );

    // The dense/sharded loaders refuse each other's layouts with guidance.
    let dense_dir = snapshot_dir("layout-mismatch");
    BlockingIndex::build(vectors(8, 4, 62), None)
        .save_snapshot(&dense_dir)
        .expect("save dense");
    let err = ShardedCosineIndex::load_snapshot(&dense_dir).unwrap_err();
    assert!(
        err.to_string().contains("BlockingIndex::load_snapshot"),
        "got: {err}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dense_dir).unwrap();
}

#[test]
fn quantized_round_trip_is_bit_identical_and_byte_stable() {
    // A quantized index snapshots its shards in the SWSHARDQ1 format (i8 codes +
    // exact f32 residuals). The cold load must restore the quantized tier from disk
    // alone, join bit-identically, and a re-save must reproduce the payload files
    // byte for byte — quantization is deterministic, so the format round-trips
    // without drift.
    let corpus = vectors(300, 12, 81);
    let queries = vectors(40, 12, 82);
    let mut built = ShardedCosineIndex::from_vectors(&corpus, 32);
    built.set_quantization(Some(QuantSpec::default()));
    built.compact();
    assert_eq!(built.num_quantized_shards(), built.num_shards());
    let expected = built.knn_join(&queries, 8);

    let dir = snapshot_dir("quant");
    built.save_snapshot(&dir).expect("save");
    drop(built);

    // The payload files really are the quantized format.
    let bytes = std::fs::read(dir.join("shard-0.bin")).unwrap();
    assert_eq!(&bytes[..9], b"SWSHARDQ1", "payload must be SWSHARDQ1");

    // Cold load restores the quantized tier ("disk wins") and joins identically.
    let loaded = ShardedCosineIndex::load_snapshot(&dir).expect("load");
    assert_eq!(loaded.quantization(), Some(QuantSpec::default()));
    assert_eq!(loaded.num_quantized_shards(), loaded.num_shards());
    assert_bit_identical(&loaded.knn_join(&queries, 8), &expected, "quantized load");
    let report = loaded.routing_report();
    assert!(report.quant_scans > 0, "{report:?}");

    // Re-saving the loaded index reproduces every payload byte-identically.
    let redir = snapshot_dir("quant-resave");
    loaded.save_snapshot(&redir).expect("re-save");
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("shard-") {
            continue;
        }
        let original = std::fs::read(entry.path()).unwrap();
        let resaved = std::fs::read(redir.join(&name)).unwrap();
        assert_eq!(original, resaved, "{name}: re-saved payload bytes diverged");
    }

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&redir).unwrap();
}

#[test]
fn snapshots_cross_load_between_dense_and_quantized_configs() {
    // The typed cross-load behavior: a snapshot carries its storage tier on disk, so
    // the loader always restores what was saved ("disk wins"), and a caller that
    // wants the *other* tier states so explicitly with `set_quantization` + compact
    // — which must re-encode the payloads without moving a single result bit.
    let corpus = vectors(200, 10, 91);
    let queries = vectors(30, 10, 92);
    let plain = ShardedCosineIndex::from_vectors(&corpus, 16);
    let expected = plain.knn_join(&queries, 6);

    // Dense-saved snapshot, opted into quantization after load.
    let dir = snapshot_dir("cross-dense");
    plain.save_snapshot(&dir).expect("save plain");
    let mut loaded = ShardedCosineIndex::load_snapshot(&dir).expect("load plain");
    assert_eq!(loaded.quantization(), None, "plain snapshot loads plain");
    loaded.set_quantization(Some(QuantSpec::default()));
    loaded.compact();
    assert_eq!(loaded.num_quantized_shards(), loaded.num_shards());
    assert_bit_identical(
        &loaded.knn_join(&queries, 6),
        &expected,
        "plain snapshot quantized after load",
    );

    // Quantized-saved snapshot, opted back out after load.
    let qdir = snapshot_dir("cross-quant");
    loaded.save_snapshot(&qdir).expect("save quantized");
    let mut back = ShardedCosineIndex::load_snapshot(&qdir).expect("load quantized");
    assert_eq!(
        back.quantization(),
        Some(QuantSpec::default()),
        "quantized snapshot loads quantized"
    );
    back.set_quantization(None);
    back.compact();
    assert_eq!(back.num_quantized_shards(), 0);
    assert_bit_identical(
        &back.knn_join(&queries, 6),
        &expected,
        "quantized snapshot dequantized after load",
    );

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&qdir).unwrap();
}

#[test]
fn corrupt_quantized_payload_quarantines_instead_of_aborting() {
    // The degraded-load contract extends to SWSHARDQ1: a truncated or bit-flipped
    // quantized payload quarantines that shard (CRC mismatch), the rest of the
    // snapshot loads, and joins answer degraded — exactly the SWSHARD1 behavior.
    let corpus = vectors(48, 6, 95);
    let queries = vectors(5, 6, 96);
    for tamper in ["truncate", "bitflip"] {
        let dir = snapshot_dir(&format!("quant-corrupt-{tamper}"));
        let mut built = ShardedCosineIndex::from_vectors(&corpus, 8);
        built.set_quantization(Some(QuantSpec::default()));
        built.compact();
        built.save_snapshot(&dir).expect("save");

        let payload = dir.join("shard-2.bin");
        let mut bytes = std::fs::read(&payload).unwrap();
        assert_eq!(&bytes[..9], b"SWSHARDQ1");
        match tamper {
            "truncate" => bytes.truncate(bytes.len() - 5),
            _ => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
            }
        }
        std::fs::write(&payload, &bytes).unwrap();

        // A truncated payload fails the length check eagerly at load; a bit-flip
        // keeps the length valid and is only caught by the CRC on the first fault
        // — either way the shard ends up quarantined, never silently wrong.
        let degraded = ShardedCosineIndex::load_snapshot(&dir).expect("degraded load");
        let outcome = degraded.knn_join_report(&queries, 4);
        assert_eq!(degraded.quarantined_shards(), vec![2], "{tamper}");
        assert!(outcome.degraded, "{tamper}: join must flag degradation");
        assert!(
            outcome
                .pairs
                .iter()
                .all(|&(_, id, _)| !(16..24).contains(&id)),
            "{tamper}: quarantined rows must not be answered"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn self_save_of_a_loaded_index_updates_the_snapshot_in_place() {
    let dir = snapshot_dir("self-save");
    ShardedCosineIndex::from_vectors(&vectors(16, 4, 71), 4)
        .save_snapshot(&dir)
        .expect("save");
    let queries = vectors(3, 4, 72);

    // Unmutated: re-saving into the same directory skips every payload (each shard is
    // already exactly its own snapshot file) and just rewrites the manifest.
    let loaded = ShardedCosineIndex::load_snapshot(&dir).expect("load");
    loaded.save_snapshot(&dir).expect("unmutated self-save");
    assert_bit_identical(
        &ShardedCosineIndex::load_snapshot(&dir)
            .expect("reload")
            .knn_join(&queries, 3),
        &loaded.knn_join(&queries, 3),
        "unmutated self-save",
    );

    // Streaming mutations that keep cold shards on their own files — tombstones
    // (metadata only) and appends (the tail faults resident; fresh shards are new
    // files) — self-save cleanly: untouched cold payloads are skipped, changed ones
    // are rewritten, and the manifest carries the new id map.
    let mut cold = ShardedCosineIndex::load_snapshot(&dir).expect("load cold");
    cold.remove(1).unwrap();
    assert_eq!(cold.add_batch(&vectors(3, 4, 73)), 16..19);
    let expected = cold.knn_join(&queries, 5);
    cold.save_snapshot(&dir)
        .expect("self-save after streaming mutations");
    let reloaded = ShardedCosineIndex::load_snapshot(&dir).expect("reload");
    assert_eq!((reloaded.len(), reloaded.num_tombstones()), (18, 1));
    assert_bit_identical(
        &reloaded.knn_join(&queries, 5),
        &expected,
        "mutated self-save",
    );

    // A compacted (fully resident) index snapshots anywhere, including a fresh dir.
    let mut compacted = reloaded;
    compacted.compact();
    let fresh_dir = snapshot_dir("self-save-fresh");
    compacted.save_snapshot(&fresh_dir).expect("fresh-dir save");
    assert_bit_identical(
        &ShardedCosineIndex::load_snapshot(&fresh_dir)
            .expect("load fresh")
            .knn_join(&queries, 5),
        &compacted.knn_join(&queries, 5),
        "post-compact save",
    );

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&fresh_dir).unwrap();
}
