//! Query-batch cache contract: hits are result-identical to recomputing, every
//! mutation (add/remove/compact) invalidates through the epoch, and the cache layer is
//! invisible in results in every index configuration (resident, spilled, routed).

use sudowoodo_index::{BlockingIndex, ShardedCosineIndex};

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

#[test]
fn hits_are_identical_to_uncached_results() {
    let corpus = vectors(120, 8, 1);
    let queries = vectors(30, 8, 2);
    let uncached = ShardedCosineIndex::from_vectors(&corpus, 16);
    assert_eq!(uncached.query_cache_capacity(), 0, "cache is opt-in");
    let expected = uncached.knn_join(&queries, 5);

    let mut cached = ShardedCosineIndex::from_vectors(&corpus, 16);
    cached.set_query_cache_capacity(4);
    assert_eq!(cached.knn_join(&queries, 5), expected, "miss (computed)");
    assert_eq!(cached.knn_join(&queries, 5), expected, "hit (cached)");
    let report = cached.routing_report();
    assert_eq!((report.cache_misses, report.cache_hits), (1, 1));
    assert_eq!(cached.query_cache_len(), 1);

    // The hit really skipped the shards: visit counters stop moving.
    let visits_after_two = cached.routing_report().shards_visited;
    assert_eq!(cached.knn_join(&queries, 5), expected);
    assert_eq!(cached.routing_report().shards_visited, visits_after_two);

    // A scaled copy of the batch shares the entry (cosine is scale-invariant).
    let doubled: Vec<Vec<f32>> = queries
        .iter()
        .map(|q| q.iter().map(|x| x * 2.0).collect())
        .collect();
    assert_eq!(cached.knn_join(&doubled, 5), expected);
    assert_eq!(cached.routing_report().cache_hits, 3);

    // Different k or different batch -> different entry.
    assert_eq!(cached.knn_join(&queries, 3), uncached.knn_join(&queries, 3));
    assert_eq!(cached.routing_report().cache_misses, 2);
}

#[test]
fn every_mutation_bumps_the_epoch_and_invalidates() {
    let corpus = vectors(60, 6, 3);
    let queries = vectors(10, 6, 4);
    let mut index = ShardedCosineIndex::from_vectors(&corpus, 8);
    index.set_query_cache_capacity(4);

    let before = index.knn_join(&queries, 4);
    assert_eq!(index.knn_join(&queries, 4), before, "warm");
    let epoch0 = index.epoch();

    // add_batch: the cached result no longer reflects the corpus.
    index.add_batch(&vectors(5, 6, 5));
    assert!(index.epoch() > epoch0);
    let after_add = index.knn_join(&queries, 4);
    let mut fresh = ShardedCosineIndex::from_vectors(&corpus, 8);
    fresh.add_batch(&vectors(5, 6, 5));
    assert_eq!(after_add, fresh.knn_join(&queries, 4), "post-add recompute");

    // remove: same story.
    let epoch1 = index.epoch();
    index.remove(0).unwrap();
    assert!(index.epoch() > epoch1);
    fresh.remove(0).unwrap();
    assert_eq!(index.knn_join(&queries, 4), fresh.knn_join(&queries, 4));

    // compact: results unchanged, but the epoch still bumps (conservative) and the
    // recomputed answer matches the pre-compact one exactly.
    let pre_compact = index.knn_join(&queries, 4);
    let epoch2 = index.epoch();
    index.compact();
    assert!(index.epoch() > epoch2);
    assert_eq!(
        index.knn_join(&queries, 4),
        pre_compact,
        "before/after compact"
    );

    // Failed mutations leave the epoch (and the cache) alone.
    let epoch3 = index.epoch();
    assert!(index.remove(0).is_err());
    assert!(index.remove(10_000).is_err());
    index.add_batch(&[]);
    assert_eq!(index.epoch(), epoch3);
    let hits_before = index.routing_report().cache_hits;
    assert_eq!(index.knn_join(&queries, 4), pre_compact);
    assert_eq!(
        index.routing_report().cache_hits,
        hits_before + 1,
        "the entry cached after compact must still serve"
    );
}

#[test]
fn cache_is_invisible_over_spilled_and_routed_shards() {
    let corpus = vectors(90, 8, 6);
    let queries = vectors(12, 8, 7);
    let reference = ShardedCosineIndex::from_vectors(&corpus, 8);
    let expected = reference.knn_join(&queries, 5);

    let mut spilled = ShardedCosineIndex::from_vectors_with_budget(&corpus, 8, Some(0));
    spilled.set_query_cache_capacity(2);
    assert_eq!(spilled.knn_join(&queries, 5), expected);
    assert!(
        spilled.routing_report().spill_faults > 0,
        "the miss must have faulted shards in"
    );
    assert_eq!(spilled.knn_join(&queries, 5), expected, "cached over spill");
    // Scan counters describe the most recent join only: a cache hit does no scan
    // work at all, so the hit's report shows zero faults (and zero visits).
    let report = spilled.routing_report();
    assert_eq!(
        (report.spill_faults, report.shards_visited),
        (0, 0),
        "a cache hit must not fault a single shard from disk: {report:?}"
    );
}

#[test]
fn lru_capacity_is_honoured_end_to_end() {
    let corpus = vectors(40, 4, 8);
    let mut index = ShardedCosineIndex::from_vectors(&corpus, 8);
    index.set_query_cache_capacity(2);
    let batches: Vec<Vec<Vec<f32>>> = (0..3).map(|s| vectors(4, 4, 20 + s)).collect();
    for batch in &batches {
        index.knn_join(batch, 3);
    }
    assert_eq!(index.query_cache_len(), 2, "capacity bounds cached batches");
    // Batch 0 was evicted (coldest), batches 1 and 2 still serve.
    let report_before = index.routing_report();
    index.knn_join(&batches[1], 3);
    index.knn_join(&batches[2], 3);
    let report_after = index.routing_report();
    assert_eq!(report_after.cache_hits, report_before.cache_hits + 2);
    index.knn_join(&batches[0], 3);
    assert_eq!(
        index.routing_report().cache_misses,
        report_after.cache_misses + 1
    );
}

#[test]
fn ragged_batches_still_panic_with_the_cache_enabled() {
    // A ragged batch whose concatenated normalized bits equal a cached rectangular
    // batch's must NOT hit the cache — the documented ragged-input panic must fire.
    let mut index = ShardedCosineIndex::from_vectors(&[vec![1.0, 0.0], vec![0.0, 1.0]], 2);
    index.set_query_cache_capacity(4);
    index.knn_join(&[vec![1.0, 0.0], vec![0.0, 1.0]], 1); // cached rectangular batch
    let err = std::panic::catch_unwind(|| index.knn_join(&[vec![1.0], vec![0.0, 0.0, 1.0]], 1))
        .expect_err("ragged batch must panic, not silently hit the cache");
    let message = err
        .downcast_ref::<String>()
        .expect("panic payload is a formatted message");
    assert!(
        message.contains("dimension"),
        "unexpected message: {message}"
    );
}

#[test]
fn blocking_api_exposes_the_cache_only_on_the_sharded_layout() {
    let corpus = vectors(50, 6, 9);
    let queries = vectors(8, 6, 10);
    let mut dense = BlockingIndex::build(corpus.clone(), None);
    let mut sharded = BlockingIndex::build(corpus, Some(8));
    dense.set_query_cache_capacity(4); // no-op by contract
    sharded.set_query_cache_capacity(4);

    let expected = dense.knn_join(&queries, 5);
    assert_eq!(sharded.knn_join(&queries, 5), expected, "miss");
    assert_eq!(sharded.knn_join(&queries, 5), expected, "hit");
    assert_eq!(
        sharded.cached_knn_join(&queries, 5),
        Some(expected.clone()),
        "peek sees the cached batch"
    );
    assert_eq!(
        dense.cached_knn_join(&queries, 5),
        None,
        "dense never caches"
    );
    assert_eq!(dense.knn_join(&queries, 5), expected);
}
