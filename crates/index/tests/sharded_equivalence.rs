//! Acceptance test: sharded top-k equals dense top-k on identical input.
//!
//! `ShardedCosineIndex::knn_join` must return **identical neighbor id lists** (and scores
//! within 1e-6) to `CosineIndex::knn_join` across shard capacities `{1, 7, 64, n}` on a
//! 2k-query × 10k-corpus fixture — i.e. shard layout is invisible in results. The
//! equivalence is exact by construction (rows normalized once with the same op, shard
//! matrices padded so every row is scored by the same SIMD microkernel, one shared
//! selection order); this test is the proof on a realistically-sized workload.
//!
//! The storage/routing layers must be equally invisible: the same fixture also runs
//! with a tiny residency budget (every shard spilled to disk and faulted through the
//! routing filter) and must stay **id- and score-identical** to the dense layout.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_index::{CosineIndex, QuantSpec, ShardedCosineIndex};

fn random_vectors(n: usize, d: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

#[test]
fn sharded_knn_join_matches_dense_across_capacities_2k_x_10k() {
    let mut rng = StdRng::seed_from_u64(11);
    let dim = 16;
    let k = 10;
    let corpus = random_vectors(10_000, dim, &mut rng);
    let queries = random_vectors(2_000, dim, &mut rng);

    let dense = CosineIndex::build(corpus.clone());
    let expected = dense.knn_join(&queries, k);
    assert_eq!(expected.len(), queries.len() * k);

    for capacity in [1usize, 7, 64, corpus.len()] {
        let sharded = ShardedCosineIndex::from_vectors(&corpus, capacity);
        assert_eq!(sharded.num_shards(), corpus.len().div_ceil(capacity));
        let got = sharded.knn_join(&queries, k);
        assert_eq!(
            got.len(),
            expected.len(),
            "capacity {capacity}: result size"
        );
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!(
                (g.0, g.1),
                (e.0, e.1),
                "capacity {capacity}: (query, id) diverged (scores {} vs {})",
                g.2,
                e.2
            );
            assert!(
                (g.2 - e.2).abs() <= 1e-6,
                "capacity {capacity}: score diverged for query {} id {}: {} vs {}",
                g.0,
                g.1,
                g.2,
                e.2
            );
        }
    }
}

#[test]
fn spilled_and_routed_knn_join_matches_dense_2k_x_10k() {
    // The acceptance case for the storage/routing layers: spill forced by a tiny
    // residency budget (0 bytes — every shard on disk), routing pruning enabled
    // (default). Results must be id- AND score-identical to the dense layout.
    let mut rng = StdRng::seed_from_u64(11);
    let dim = 16;
    let k = 10;
    let corpus = random_vectors(10_000, dim, &mut rng);
    let queries = random_vectors(2_000, dim, &mut rng);

    let dense = CosineIndex::build(corpus.clone());
    let expected = dense.knn_join(&queries, k);

    for capacity in [64usize, 1024] {
        let sharded = ShardedCosineIndex::from_vectors_with_budget(&corpus, capacity, Some(0));
        assert_eq!(
            sharded.num_spilled_shards(),
            sharded.num_shards(),
            "capacity {capacity}: the zero budget must spill every shard"
        );
        assert!(sharded.routing_enabled());
        let got = sharded.knn_join(&queries, k);
        assert_eq!(
            got, expected,
            "capacity {capacity}: spilled+routed join must be bit-identical to dense"
        );
        let report = sharded.routing_report();
        assert!(
            report.spill_faults <= report.shards_visited,
            "capacity {capacity}: faults cannot exceed visits ({report:?})"
        );
    }
}

#[test]
fn quantized_spilled_and_routed_knn_join_matches_dense_2k_x_10k() {
    // The acceptance case for the quantized tier: shards re-encoded as i8 codes +
    // exact residuals, every shard spilled to the SWSHARDQ1 on-disk format (budget
    // 0), routing pruning enabled. The two-stage scan (quantized candidate pass,
    // exact f32 rescore) must be **bit-identical** — ids AND score bits — to the
    // dense layout across shard capacities, and the report must prove the quantized
    // scan actually ran.
    let mut rng = StdRng::seed_from_u64(11);
    let dim = 16;
    let k = 10;
    let corpus = random_vectors(10_000, dim, &mut rng);
    let queries = random_vectors(2_000, dim, &mut rng);

    let dense = CosineIndex::build(corpus.clone());
    let expected = dense.knn_join(&queries, k);

    for capacity in [1usize, 7, 64] {
        let mut sharded = ShardedCosineIndex::from_vectors(&corpus, capacity);
        sharded.set_quantization(Some(QuantSpec::default()));
        sharded.set_memory_budget(Some(0));
        sharded.compact();
        assert_eq!(
            sharded.num_quantized_shards(),
            sharded.num_shards(),
            "capacity {capacity}: every shard must be quantized"
        );
        assert_eq!(
            sharded.num_spilled_shards(),
            sharded.num_shards(),
            "capacity {capacity}: the zero budget must spill every shard"
        );
        assert!(sharded.routing_enabled());
        let got = sharded.knn_join(&queries, k);
        assert_eq!(
            got, expected,
            "capacity {capacity}: quantized+spilled+routed join must be bit-identical \
             to dense"
        );
        let report = sharded.routing_report();
        assert!(
            report.quant_scans > 0 && report.rescored_rows > 0,
            "capacity {capacity}: the quantized scan must actually have run: {report:?}"
        );
    }
}

#[test]
fn sharded_top_k_matches_dense_single_queries() {
    let mut rng = StdRng::seed_from_u64(12);
    let corpus = random_vectors(500, 24, &mut rng);
    let queries = random_vectors(40, 24, &mut rng);
    let dense = CosineIndex::build(corpus.clone());
    for capacity in [1usize, 7, 64, corpus.len()] {
        let sharded = ShardedCosineIndex::from_vectors(&corpus, capacity);
        for (qi, q) in queries.iter().enumerate() {
            let d: Vec<(usize, f32)> = dense
                .top_k(q, 9)
                .into_iter()
                .map(|h| (h.id, h.score))
                .collect();
            let s: Vec<(usize, f32)> = sharded
                .top_k(q, 9)
                .into_iter()
                .map(|h| (h.id, h.score))
                .collect();
            assert_eq!(
                d.iter().map(|p| p.0).collect::<Vec<_>>(),
                s.iter().map(|p| p.0).collect::<Vec<_>>(),
                "capacity {capacity}, query {qi}: ids diverged"
            );
            for (a, b) in d.iter().zip(s.iter()) {
                assert!((a.1 - b.1).abs() <= 1e-6, "capacity {capacity}, query {qi}");
            }
        }
    }
}

#[test]
fn sharded_join_is_deterministic_across_runs() {
    let mut rng = StdRng::seed_from_u64(13);
    let corpus = random_vectors(600, 16, &mut rng);
    let queries = random_vectors(200, 16, &mut rng);
    let index = ShardedCosineIndex::from_vectors(&corpus, 37);
    let first = index.knn_join(&queries, 5);
    for _ in 0..3 {
        assert_eq!(index.knn_join(&queries, 5), first);
    }
}
