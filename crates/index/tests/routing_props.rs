//! Property tests for the routing/spill layers: shard skipping and disk residency must
//! be **invisible in results**.
//!
//! The admissibility argument lives in `crate::routing`; these tests are the empirical
//! proof over adversarial corpora — duplicate rows (radius ~0, bounds tying true
//! scores), near-tie scores (1-ulp neighborhoods around the pruning threshold),
//! clustered corpora (the case routing is built for), and the all-pruned / none-pruned
//! extremes — across shard capacities and residency budgets, always comparing four
//! configurations that must agree exactly: dense, sharded+routing, sharded−routing,
//! and sharded+routing with every shard spilled to disk.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_index::{CosineIndex, ShardedCosineIndex};

fn random_vectors(n: usize, d: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// A corpus of `clusters` tight direction bundles — the workload shard routing is built
/// for once ingestion order correlates with content (here it does: cluster by cluster).
fn clustered_vectors(
    clusters: usize,
    per_cluster: usize,
    d: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f32>> {
    let centers = random_vectors(clusters, d, rng);
    let mut out = Vec::with_capacity(clusters * per_cluster);
    for center in &centers {
        for _ in 0..per_cluster {
            out.push(
                center
                    .iter()
                    .map(|&c| c + rng.gen_range(-0.05f32..0.05))
                    .collect(),
            );
        }
    }
    out
}

/// Asserts that every sharded configuration (routing on / off / on+fully-spilled)
/// answers `knn_join` **identically** — ids and scores — to the dense build.
fn assert_all_configurations_agree(
    corpus: &[Vec<f32>],
    queries: &[Vec<f32>],
    k: usize,
    capacity: usize,
    label: &str,
) {
    let dense = CosineIndex::build(corpus.to_vec());
    let expected = dense.knn_join(queries, k);

    let routed = ShardedCosineIndex::from_vectors(corpus, capacity);
    assert!(routed.routing_enabled(), "routing must default on");
    assert_eq!(
        routed.knn_join(queries, k),
        expected,
        "{label}: routed sharded diverged from dense"
    );

    let mut unrouted = ShardedCosineIndex::from_vectors(corpus, capacity);
    unrouted.set_routing_enabled(false);
    assert_eq!(
        unrouted.knn_join(queries, k),
        expected,
        "{label}: unrouted sharded diverged from dense"
    );

    let spilled = ShardedCosineIndex::from_vectors_with_budget(corpus, capacity, Some(0));
    assert_eq!(
        spilled.num_spilled_shards(),
        spilled.num_shards(),
        "{label}: zero budget must spill every shard"
    );
    assert_eq!(
        spilled.knn_join(queries, k),
        expected,
        "{label}: spilled+routed sharded diverged from dense"
    );
}

#[test]
fn routing_never_changes_results_on_seeded_random_corpora() {
    for seed in [31u64, 32, 33] {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus = random_vectors(311, 12, &mut rng);
        let queries = random_vectors(67, 12, &mut rng);
        for capacity in [1usize, 13, 64, 311] {
            for k in [1usize, 5, 17] {
                assert_all_configurations_agree(
                    &corpus,
                    &queries,
                    k,
                    capacity,
                    &format!("seed {seed} capacity {capacity} k {k}"),
                );
            }
        }
    }
}

#[test]
fn routing_never_changes_results_with_duplicate_rows() {
    // Duplicate rows are the adversarial routing case: shard radii collapse to ~0 and
    // the upper bound *ties* the true score, so only the strict `<` (plus slack) in the
    // prune condition keeps id tie-breaks intact.
    let mut rng = StdRng::seed_from_u64(41);
    let base = random_vectors(23, 8, &mut rng);
    let mut corpus = Vec::new();
    for (i, v) in base.iter().enumerate() {
        for _ in 0..(1 + i % 5) {
            corpus.push(v.clone());
        }
    }
    // Queries are the duplicated rows themselves: every duplicate set is an exact tie.
    let queries: Vec<Vec<f32>> = base.iter().take(12).cloned().collect();
    for capacity in [1usize, 3, 7, corpus.len()] {
        assert_all_configurations_agree(
            &corpus,
            &queries,
            4,
            capacity,
            &format!("duplicates capacity {capacity}"),
        );
    }
}

#[test]
fn routing_never_changes_results_on_near_tie_scores() {
    // Rows that differ by ~1 ulp straddle the pruning threshold; any bound computed a
    // hair too low would flip a neighbor. Scores here cluster within float noise.
    let mut rng = StdRng::seed_from_u64(43);
    let direction: Vec<f32> = (0..10).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let corpus: Vec<Vec<f32>> = (0..200)
        .map(|i| {
            direction
                .iter()
                .enumerate()
                .map(|(j, &x)| x + ((i * 10 + j) as f32) * 1e-7)
                .collect()
        })
        .collect();
    let queries = vec![direction.clone(), corpus[57].clone(), corpus[199].clone()];
    for capacity in [4usize, 32, 200] {
        assert_all_configurations_agree(
            &corpus,
            &queries,
            8,
            capacity,
            &format!("near-ties capacity {capacity}"),
        );
    }
}

#[test]
fn routing_never_changes_results_on_clustered_corpora() {
    let mut rng = StdRng::seed_from_u64(47);
    let corpus = clustered_vectors(6, 40, 16, &mut rng);
    let queries = clustered_vectors(6, 3, 16, &mut rng);
    for capacity in [10usize, 40, 120] {
        assert_all_configurations_agree(
            &corpus,
            &queries,
            6,
            capacity,
            &format!("clusters capacity {capacity}"),
        );
    }
}

#[test]
fn all_pruned_extreme_skips_every_cold_shard() {
    // One shard aligned with the query, many orthogonal shards: after the aligned shard
    // fills the selectors, every other shard's bound is hopeless and must prune.
    let mut corpus: Vec<Vec<f32>> = (0..8).map(|i| vec![1.0, 1e-3 * i as f32, 0.0]).collect();
    for i in 0..80 {
        corpus.push(vec![0.0, 0.0, 1.0 + 1e-3 * (i % 7) as f32]);
    }
    let index = ShardedCosineIndex::from_vectors_with_budget(&corpus, 8, Some(0));
    index.reset_routing_report();
    let queries = vec![vec![1.0, 0.0, 0.0]];
    let hits = index.knn_join(&queries, 4);
    assert_eq!(
        hits.iter().map(|h| h.1).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    let report = index.routing_report();
    assert_eq!(
        report.shards_visited, 1,
        "only the aligned shard may be scored: {report:?}"
    );
    assert_eq!(
        report.shards_pruned,
        (index.num_shards() - 1) as u64,
        "all orthogonal shards must prune: {report:?}"
    );
    assert_eq!(
        report.spill_faults, 1,
        "pruned shards must never be read from disk: {report:?}"
    );
    // Transient faults never change residency: everything is still cold on disk.
    assert_eq!(index.num_spilled_shards(), index.num_shards());
}

#[test]
fn none_pruned_extreme_visits_every_shard() {
    // k >= corpus size: every row is in every top-k, so nothing may prune and every
    // shard must be visited (and, when spilled, faulted exactly once per query tile).
    let mut rng = StdRng::seed_from_u64(53);
    let corpus = random_vectors(30, 6, &mut rng);
    let queries = random_vectors(3, 6, &mut rng);
    let index = ShardedCosineIndex::from_vectors_with_budget(&corpus, 5, Some(0));
    index.reset_routing_report();
    let got = index.knn_join(&queries, corpus.len());
    assert_eq!(got.len(), queries.len() * corpus.len());
    let report = index.routing_report();
    assert_eq!(
        report.shards_pruned, 0,
        "nothing can prune at k = n: {report:?}"
    );
    assert_eq!(report.shards_visited, index.num_shards() as u64);
    assert_eq!(report.spill_faults, index.num_shards() as u64);
    let dense = CosineIndex::build(corpus.clone());
    assert_eq!(got, dense.knn_join(&queries, corpus.len()));
}

#[test]
fn streaming_mutations_keep_routing_admissible() {
    // Interleave add/remove (stale-but-admissible stats on spilled shards) and verify
    // against a dense rebuild of the survivors after every step.
    let mut rng = StdRng::seed_from_u64(59);
    let dim = 8;
    let queries = random_vectors(9, dim, &mut rng);
    let mut survivors: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut index = ShardedCosineIndex::new(6);
    index.set_memory_budget(Some(0));
    for step in 0..30 {
        match rng.gen_range(0..6) {
            0..=3 => {
                let batch = random_vectors(rng.gen_range(1..7), dim, &mut rng);
                let ids = index.add_batch(&batch);
                survivors.extend(ids.zip(batch.iter().cloned()));
            }
            4 if !survivors.is_empty() => {
                let victim = survivors[rng.gen_range(0..survivors.len())].0;
                index.remove(victim).expect("victim is live");
                survivors.retain(|(sid, _)| *sid != victim);
            }
            _ => {
                index.compact(); // re-applies the zero budget: everything spills again
            }
        }
        if survivors.is_empty() {
            continue;
        }
        let rows: Vec<Vec<f32>> = survivors.iter().map(|(_, v)| v.clone()).collect();
        let dense = CosineIndex::build(rows);
        let expected: Vec<(usize, usize, f32)> = dense
            .knn_join(&queries, 4)
            .into_iter()
            .map(|(q, pos, s)| (q, survivors[pos].0, s))
            .collect();
        assert_eq!(index.knn_join(&queries, 4), expected, "step {step}");
    }
}
