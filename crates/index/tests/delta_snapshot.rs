//! Delta-snapshot round trips: a base plus a chain of deltas (adds, removes, a
//! compact) must cold-load **bit-identically** to a fresh full snapshot of the same
//! logical index, inheritance must actually avoid rewriting unchanged payloads
//! (observable through [`sudowoodo_index::DeltaSaveReport`]), and every broken-chain
//! shape — torn manifest, republished base, geometry drift — must reject with a
//! typed error instead of serving a stitched-together corpus.
//!
//! Failpoints are process-global; the tests that arm them serialize on one mutex
//! and disarm on exit via a guard (same discipline as `crash_consistency.rs`).

use std::sync::{Mutex, MutexGuard, OnceLock};

use sudowoodo_faults as faults;
use sudowoodo_index::{BlockingIndex, ShardedCosineIndex, DELTA_MANIFEST_FILE};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct DisarmGuard;

impl Drop for DisarmGuard {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                })
                .collect()
        })
        .collect()
}

fn delta_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sudowoodo-delta-{tag}-{}", std::process::id()))
}

struct DirCleanup(Vec<std::path::PathBuf>);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        for dir in &self.0 {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

fn assert_bit_identical(
    got: &[(usize, usize, f32)],
    expected: &[(usize, usize, f32)],
    context: &str,
) {
    assert_eq!(got.len(), expected.len(), "{context}: pair count");
    for (a, b) in got.iter().zip(expected.iter()) {
        assert_eq!((a.0, a.1), (b.0, b.1), "{context}: ids");
        assert_eq!(a.2.to_bits(), b.2.to_bits(), "{context}: scores");
    }
}

/// The round trip the incremental-publish story rests on: full base → delta of
/// adds → delta of removes → delta after a compact, chain-loaded cold at each
/// step and compared bit-identically against a fresh full snapshot of the same
/// state. The save reports prove inheritance is real: a tombstone-only delta
/// rewrites **zero** payloads, an append-only delta rewrites only the tail.
#[test]
fn a_delta_chain_of_adds_removes_and_compact_loads_like_a_full_snapshot() {
    let dims = 8;
    let base_dir = delta_dir("chain-base");
    let adds_dir = delta_dir("chain-adds");
    let rm_dir = delta_dir("chain-removes");
    let compact_dir = delta_dir("chain-compact");
    let full_dir = delta_dir("chain-full");
    let _cleanup = DirCleanup(vec![
        base_dir.clone(),
        adds_dir.clone(),
        rm_dir.clone(),
        compact_dir.clone(),
        full_dir.clone(),
    ]);
    let queries = vectors(30, dims, 100);
    let k = 6;

    // Epoch 0: the full base (15 shards of capacity 16).
    ShardedCosineIndex::from_vectors(&vectors(240, dims, 1), 16)
        .save_snapshot(&base_dir)
        .unwrap();

    // Epoch 1: cold-load, append rows, publish as a delta. Only the shards the
    // append touched (the former tail shard plus the new ones) are written.
    let mut index = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();
    let base_shards = index.num_shards();
    index.add_batch(&vectors(40, dims, 2));
    let report = index.save_delta_snapshot(&base_dir, &adds_dir).unwrap();
    assert!(
        report.inherited_shards >= base_shards - 1,
        "append must inherit every untouched base shard: {report:?}"
    );
    assert!(
        report.written_shards >= 1,
        "the appended rows need a payload"
    );

    // Epoch 2: cold-load the delta, remove some rows, publish on top of it.
    // Tombstones live in the manifest, so NO payload is rewritten.
    let mut index = ShardedCosineIndex::load_snapshot(&adds_dir).unwrap();
    for id in [3usize, 17, 42, 99, 250, 263] {
        index.remove(id).unwrap();
    }
    let report = index.save_delta_snapshot(&adds_dir, &rm_dir).unwrap();
    assert_eq!(
        report.written_shards, 0,
        "a tombstone-only delta must not rewrite any payload: {report:?}"
    );
    assert_eq!(report.inherited_shards, index.num_shards());

    // Reference for the chain head so far: the in-memory index that produced it.
    let expected = index.knn_join(&queries, k);
    let chained = ShardedCosineIndex::load_snapshot(&rm_dir).unwrap();
    assert_eq!(chained.len(), 240 + 40 - 6);
    assert_bit_identical(&chained.knn_join(&queries, k), &expected, "2-delta chain");

    // The same state published as a fresh FULL snapshot must agree bit-for-bit.
    index.save_snapshot(&full_dir).unwrap();
    let full = ShardedCosineIndex::load_snapshot(&full_dir).unwrap();
    assert_bit_identical(
        &full.knn_join(&queries, k),
        &chained.knn_join(&queries, k),
        "chain vs fresh full snapshot",
    );

    // Epoch 3: compact rewrites every surviving row into new shards — the delta
    // degenerates to all-local payloads (inheritance finds nothing to share), and
    // the chain STILL loads identically to the in-memory truth.
    let mut index = chained;
    let dropped = index.compact();
    assert!(dropped > 0, "compact must reclaim the tombstoned rows");
    let expected = index.knn_join(&queries, k);
    let report = index.save_delta_snapshot(&rm_dir, &compact_dir).unwrap();
    assert_eq!(
        report.inherited_shards, 0,
        "compact rewrites every shard: {report:?}"
    );
    let reloaded = ShardedCosineIndex::load_snapshot(&compact_dir).unwrap();
    assert_bit_identical(&reloaded.knn_join(&queries, k), &expected, "3-delta chain");

    // The BlockingIndex wrapper routes through the same chain loader.
    let wrapped = BlockingIndex::load_snapshot(&compact_dir).unwrap();
    assert_bit_identical(&wrapped.knn_join(&queries, k), &expected, "BlockingIndex");
}

/// A torn delta manifest (the crash failpoint writes half of it at its final
/// name) must fail the publish AND leave a directory the loader rejects with the
/// CRC diagnostic — it can never pass for a whole epoch.
#[test]
fn a_torn_delta_manifest_is_rejected_typed() {
    let _serial = fault_lock();
    let _disarm = DisarmGuard;
    let base_dir = delta_dir("torn-base");
    let head_dir = delta_dir("torn-head");
    let _cleanup = DirCleanup(vec![base_dir.clone(), head_dir.clone()]);

    ShardedCosineIndex::from_vectors(&vectors(60, 6, 5), 8)
        .save_snapshot(&base_dir)
        .unwrap();
    let mut index = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();
    index.add_batch(&vectors(10, 6, 6));

    faults::arm("delta.manifest.torn", faults::Policy::Once);
    let err = index
        .save_delta_snapshot(&base_dir, &head_dir)
        .expect_err("the publish must crash");
    assert!(err.to_string().contains("failpoint"), "got: {err}");
    faults::disarm("delta.manifest.torn");

    let err = ShardedCosineIndex::load_snapshot(&head_dir).unwrap_err();
    assert!(
        err.to_string().contains("CRC-32 mismatch"),
        "a torn delta manifest must be caught by its CRC, got: {err}"
    );
}

/// Republishing the base AFTER a delta referenced it invalidates the chain: the
/// epoch fingerprint (the base manifest's CRC) no longer matches, and the loader
/// says so instead of pairing the delta's shard table with foreign payloads.
#[test]
fn a_republished_base_invalidates_the_chain_with_a_typed_error() {
    let base_dir = delta_dir("repub-base");
    let head_dir = delta_dir("repub-head");
    let _cleanup = DirCleanup(vec![base_dir.clone(), head_dir.clone()]);

    ShardedCosineIndex::from_vectors(&vectors(60, 6, 7), 8)
        .save_snapshot(&base_dir)
        .unwrap();
    let mut index = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();
    index.add_batch(&vectors(10, 6, 8));
    index.save_delta_snapshot(&base_dir, &head_dir).unwrap();
    assert!(ShardedCosineIndex::load_snapshot(&head_dir).is_ok());

    // The base moves on without the delta: a different index is published into
    // the same directory (the immutable-publish rule says never to do this — the
    // fingerprint is what catches whoever does).
    let mut moved_on = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();
    moved_on.add_batch(&vectors(4, 6, 9));
    moved_on.save_snapshot(&base_dir).unwrap();

    let err = ShardedCosineIndex::load_snapshot(&head_dir).unwrap_err();
    assert!(
        err.to_string().contains("republished"),
        "a republished base must be named as the cause, got: {err}"
    );
}

/// The publish-time misuse guards: same directory for base and target, a target
/// already holding a full snapshot, and a geometry change against the base are
/// all `InvalidInput` — caught before any byte is written.
#[test]
fn delta_publish_misuse_is_rejected_before_writing() {
    let base_dir = delta_dir("misuse-base");
    let full_dir = delta_dir("misuse-full");
    let _cleanup = DirCleanup(vec![base_dir.clone(), full_dir.clone()]);

    let built = ShardedCosineIndex::from_vectors(&vectors(40, 6, 10), 8);
    built.save_snapshot(&base_dir).unwrap();
    built.save_snapshot(&full_dir).unwrap();
    let index = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();

    let err = index.save_delta_snapshot(&base_dir, &base_dir).unwrap_err();
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::InvalidInput,
        "same dir: {err}"
    );

    let err = index.save_delta_snapshot(&base_dir, &full_dir).unwrap_err();
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::InvalidInput,
        "target holds a full snapshot: {err}"
    );

    // Different shard capacity than the base → the delta cannot express it.
    let other = ShardedCosineIndex::from_vectors(&vectors(40, 6, 10), 4);
    let err = other
        .save_delta_snapshot(&base_dir, &delta_dir("misuse-geom"))
        .unwrap_err();
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::InvalidInput,
        "geometry: {err}"
    );
}

/// A delta directory is self-describing: deleting its manifest leaves payload
/// files the full-snapshot loader refuses (no manifest), and a stray
/// `DELTA.swdel` in a full-snapshot directory is removed by a later full save
/// (`save_snapshot` over a former delta dir must not leave a stale chain).
#[test]
fn full_saves_clean_up_stale_delta_manifests() {
    let base_dir = delta_dir("stale-base");
    let head_dir = delta_dir("stale-head");
    let _cleanup = DirCleanup(vec![base_dir.clone(), head_dir.clone()]);

    ShardedCosineIndex::from_vectors(&vectors(60, 6, 12), 8)
        .save_snapshot(&base_dir)
        .unwrap();
    let mut index = ShardedCosineIndex::load_snapshot(&base_dir).unwrap();
    index.add_batch(&vectors(10, 6, 13));
    index.save_delta_snapshot(&base_dir, &head_dir).unwrap();
    assert!(head_dir.join(DELTA_MANIFEST_FILE).is_file());

    // Republish the head as a FULL snapshot into the same directory: the delta
    // manifest must be gone, and the directory must load standalone (no base).
    let expected = index.knn_join(&vectors(10, 6, 14), 4);
    index.save_snapshot(&head_dir).unwrap();
    assert!(
        !head_dir.join(DELTA_MANIFEST_FILE).exists(),
        "a full save must remove the stale delta manifest"
    );
    std::fs::remove_dir_all(&base_dir).unwrap(); // the chain must not be needed
    let standalone = ShardedCosineIndex::load_snapshot(&head_dir).unwrap();
    assert_bit_identical(
        &standalone.knn_join(&vectors(10, 6, 14), 4),
        &expected,
        "standalone full snapshot after delta cleanup",
    );
}
