//! Synthetic Entity Matching benchmarks.
//!
//! The paper evaluates on the DeepMatcher benchmark suite (Abt-Buy, Amazon-Google,
//! DBLP-ACM, DBLP-Scholar, Walmart-Amazon, plus Beer / Fodors-Zagats / iTunes-Amazon for
//! the fully supervised setting, Tables II and XVII). Those datasets are not available
//! offline, so this module generates synthetic counterparts that reproduce the properties
//! the paper's analysis attributes performance differences to:
//!
//! * two entity tables with controlled size asymmetry,
//! * a controlled fraction of matching entities rendered with source-specific noise
//!   (abbreviations, dropped tokens, typos, reordered words, numeric jitter),
//! * hard non-matching pairs drawn from the same "family" (same brand & product line, same
//!   research group & topic, ...), which is what makes Walmart-Amazon-like datasets hard,
//! * labeled pair sets with the paper's positive rates, split 3:1:1.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sudowoodo_text::serialize::serialize_record;
use sudowoodo_text::Record;

use crate::perturb::{perturb_number, perturb_text};
use crate::vocab;

/// A labeled candidate pair referencing rows of table A and table B.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabeledPair {
    /// Row index in table A.
    pub a: usize,
    /// Row index in table B.
    pub b: usize,
    /// `true` when the two rows refer to the same real-world entity.
    pub label: bool,
}

/// A complete EM dataset: two tables, gold matches, and labeled splits.
#[derive(Clone, Debug)]
pub struct EmDataset {
    /// Dataset name (mirrors the paper's abbreviations: AB, AG, DA, DS, WA, ...).
    pub name: String,
    /// Left entity table.
    pub table_a: Vec<Record>,
    /// Right entity table.
    pub table_b: Vec<Record>,
    /// All true matching `(a, b)` pairs (used for blocking recall).
    pub gold_matches: Vec<(usize, usize)>,
    /// Training pairs.
    pub train: Vec<LabeledPair>,
    /// Validation pairs.
    pub valid: Vec<LabeledPair>,
    /// Test pairs.
    pub test: Vec<LabeledPair>,
}

/// Summary statistics in the layout of Table II.
#[derive(Clone, Debug, PartialEq)]
pub struct EmStats {
    /// Dataset name.
    pub name: String,
    /// |Table A|.
    pub size_a: usize,
    /// |Table B|.
    pub size_b: usize,
    /// Number of train + validation pairs.
    pub train_valid: usize,
    /// Number of test pairs.
    pub test: usize,
    /// Positive rate over all labeled pairs.
    pub positive_rate: f32,
}

impl EmDataset {
    /// All labeled pairs (train + valid + test).
    pub fn all_pairs(&self) -> Vec<LabeledPair> {
        let mut v = self.train.clone();
        v.extend(self.valid.iter().copied());
        v.extend(self.test.iter().copied());
        v
    }

    /// Serializations of every entity in both tables (the unlabeled pre-training corpus).
    pub fn corpus(&self) -> Vec<String> {
        self.table_a
            .iter()
            .chain(self.table_b.iter())
            .map(serialize_record)
            .collect()
    }

    /// Table II style statistics.
    pub fn stats(&self) -> EmStats {
        let all = self.all_pairs();
        let pos = all.iter().filter(|p| p.label).count();
        EmStats {
            name: self.name.clone(),
            size_a: self.table_a.len(),
            size_b: self.table_b.len(),
            train_valid: self.train.len() + self.valid.len(),
            test: self.test.len(),
            positive_rate: if all.is_empty() {
                0.0
            } else {
                pos as f32 / all.len() as f32
            },
        }
    }
}

/// The entity domain determining schema and vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Consumer products / electronics / software.
    Product,
    /// Bibliographic records.
    Publication,
    /// Restaurants.
    Restaurant,
    /// Music tracks.
    Song,
    /// Beers.
    Beer,
}

/// Generation profile for one synthetic EM dataset.
#[derive(Clone, Debug)]
pub struct EmProfile {
    /// Dataset name.
    pub name: &'static str,
    /// Entity domain.
    pub domain: Domain,
    /// Size of table A (at scale 1.0).
    pub size_a: usize,
    /// Size of table B (at scale 1.0).
    pub size_b: usize,
    /// Number of labeled pairs (at scale 1.0).
    pub num_pairs: usize,
    /// Fraction of labeled pairs that are positive.
    pub positive_rate: f32,
    /// Perturbation level applied when rendering table-B entities (dataset difficulty).
    pub match_noise: f32,
    /// Fraction of negative pairs drawn from the same entity family (hard negatives).
    pub hard_negative_rate: f32,
    /// Fraction of table-B rows that have a counterpart in table A.
    pub overlap: f32,
}

impl EmProfile {
    /// Abt-Buy analog: mid-sized product tables, noisy descriptions.
    pub fn abt_buy() -> Self {
        EmProfile {
            name: "Abt-Buy",
            domain: Domain::Product,
            size_a: 300,
            size_b: 300,
            num_pairs: 1400,
            positive_rate: 0.107,
            match_noise: 0.45,
            hard_negative_rate: 0.5,
            overlap: 0.5,
        }
    }

    /// Amazon-Google analog: asymmetric product tables, heavier noise.
    pub fn amazon_google() -> Self {
        EmProfile {
            name: "Amazon-Google",
            domain: Domain::Product,
            size_a: 300,
            size_b: 650,
            num_pairs: 1600,
            positive_rate: 0.102,
            match_noise: 0.6,
            hard_negative_rate: 0.6,
            overlap: 0.35,
        }
    }

    /// DBLP-ACM analog: clean bibliographic records (the easy dataset).
    pub fn dblp_acm() -> Self {
        EmProfile {
            name: "DBLP-ACM",
            domain: Domain::Publication,
            size_a: 500,
            size_b: 450,
            num_pairs: 1700,
            positive_rate: 0.18,
            match_noise: 0.1,
            hard_negative_rate: 0.3,
            overlap: 0.8,
        }
    }

    /// DBLP-Scholar analog: large noisy right table.
    pub fn dblp_scholar() -> Self {
        EmProfile {
            name: "DBLP-Scholar",
            domain: Domain::Publication,
            size_a: 500,
            size_b: 1600,
            num_pairs: 2400,
            positive_rate: 0.186,
            match_noise: 0.35,
            hard_negative_rate: 0.4,
            overlap: 0.28,
        }
    }

    /// Walmart-Amazon analog: the hardest product dataset (strong noise, many hard negatives).
    pub fn walmart_amazon() -> Self {
        EmProfile {
            name: "Walmart-Amazon",
            domain: Domain::Product,
            size_a: 350,
            size_b: 1500,
            num_pairs: 1400,
            positive_rate: 0.094,
            match_noise: 0.65,
            hard_negative_rate: 0.7,
            overlap: 0.25,
        }
    }

    /// Beer analog (fully supervised setting).
    pub fn beer() -> Self {
        EmProfile {
            name: "Beer",
            domain: Domain::Beer,
            size_a: 350,
            size_b: 300,
            num_pairs: 360,
            positive_rate: 0.151,
            match_noise: 0.3,
            hard_negative_rate: 0.4,
            overlap: 0.3,
        }
    }

    /// Fodors-Zagats analog (fully supervised setting; nearly clean).
    pub fn fodors_zagats() -> Self {
        EmProfile {
            name: "Fodors-Zagats",
            domain: Domain::Restaurant,
            size_a: 250,
            size_b: 180,
            num_pairs: 500,
            positive_rate: 0.116,
            match_noise: 0.2,
            hard_negative_rate: 0.3,
            overlap: 0.45,
        }
    }

    /// iTunes-Amazon analog (fully supervised setting).
    pub fn itunes_amazon() -> Self {
        EmProfile {
            name: "iTunes-Amazon",
            domain: Domain::Song,
            size_a: 400,
            size_b: 700,
            num_pairs: 430,
            positive_rate: 0.245,
            match_noise: 0.4,
            hard_negative_rate: 0.5,
            overlap: 0.3,
        }
    }

    /// The five datasets of the semi-supervised / unsupervised experiments (Tables V, VI, VII).
    pub fn semi_supervised_suite() -> Vec<EmProfile> {
        vec![
            Self::abt_buy(),
            Self::amazon_google(),
            Self::dblp_acm(),
            Self::dblp_scholar(),
            Self::walmart_amazon(),
        ]
    }

    /// The eight datasets of the fully supervised experiment (Table XVIII).
    pub fn full_suite() -> Vec<EmProfile> {
        vec![
            Self::abt_buy(),
            Self::amazon_google(),
            Self::beer(),
            Self::dblp_acm(),
            Self::dblp_scholar(),
            Self::fodors_zagats(),
            Self::itunes_amazon(),
            Self::walmart_amazon(),
        ]
    }

    /// Generates the dataset at the given scale (1.0 = profile sizes) and seed.
    pub fn generate(&self, scale: f32, seed: u64) -> EmDataset {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(self.name));
        let size_a = scaled(self.size_a, scale);
        let size_b = scaled(self.size_b, scale);
        let num_pairs = scaled(self.num_pairs, scale);

        // --- 1. generate underlying entities grouped into families --------------------
        let matched = ((size_b as f32) * self.overlap).round() as usize;
        let matched = matched.min(size_a).min(size_b);
        let num_entities = size_a + size_b - matched;
        let family_size = 4usize;
        let num_families = num_entities.div_ceil(family_size).max(1);
        let mut entities: Vec<Entity> = Vec::with_capacity(num_entities);
        for family in 0..num_families {
            let family_seed = FamilySeed::generate(self.domain, &mut rng);
            for _ in 0..family_size {
                if entities.len() == num_entities {
                    break;
                }
                entities.push(Entity::generate(
                    self.domain,
                    family,
                    &family_seed,
                    &mut rng,
                ));
            }
        }

        // --- 2. assign entities to tables ---------------------------------------------
        // Entities [0, size_a) appear in A. Entities [0, matched) also appear in B,
        // together with entities [size_a, size_a + (size_b - matched)).
        let mut table_a: Vec<Record> = Vec::with_capacity(size_a);
        for entity in entities.iter().take(size_a) {
            table_a.push(entity.render_a(&mut rng));
        }
        let mut table_b: Vec<Record> = Vec::with_capacity(size_b);
        let mut b_entity_ids: Vec<usize> = Vec::with_capacity(size_b);
        for (id, entity) in entities.iter().enumerate().take(matched) {
            table_b.push(entity.render_b(self.match_noise, &mut rng));
            b_entity_ids.push(id);
        }
        for (id, entity) in entities
            .iter()
            .enumerate()
            .skip(size_a)
            .take(size_b - matched)
        {
            table_b.push(entity.render_b(self.match_noise, &mut rng));
            b_entity_ids.push(id);
        }
        // Shuffle table B so matched rows are not all at the front.
        let mut b_order: Vec<usize> = (0..table_b.len()).collect();
        b_order.shuffle(&mut rng);
        let table_b: Vec<Record> = b_order.iter().map(|&i| table_b[i].clone()).collect();
        let b_entity_ids: Vec<usize> = b_order.iter().map(|&i| b_entity_ids[i]).collect();

        // --- 3. gold matches ------------------------------------------------------------
        let entity_to_b: HashMap<usize, usize> = b_entity_ids
            .iter()
            .enumerate()
            .map(|(b_idx, &entity)| (entity, b_idx))
            .collect();
        let mut gold_matches: Vec<(usize, usize)> = Vec::new();
        for a_idx in 0..size_a.min(entities.len()) {
            if let Some(&b_idx) = entity_to_b.get(&a_idx) {
                gold_matches.push((a_idx, b_idx));
            }
        }

        // --- 4. labeled pairs -------------------------------------------------------------
        let num_pos = ((num_pairs as f32) * self.positive_rate).round() as usize;
        let num_pos = num_pos.min(gold_matches.len().max(1) * 4); // allow re-sampling
        let num_neg = num_pairs.saturating_sub(num_pos);
        // Group table-B rows by family for hard-negative sampling.
        let mut family_to_b: HashMap<usize, Vec<usize>> = HashMap::new();
        for (b_idx, &entity) in b_entity_ids.iter().enumerate() {
            family_to_b
                .entry(entities[entity].family)
                .or_default()
                .push(b_idx);
        }
        let mut pairs: Vec<LabeledPair> = Vec::with_capacity(num_pairs);
        for _ in 0..num_pos {
            if gold_matches.is_empty() {
                break;
            }
            let &(a, b) = gold_matches.choose(&mut rng).expect("non-empty");
            pairs.push(LabeledPair { a, b, label: true });
        }
        let gold_set: std::collections::HashSet<(usize, usize)> =
            gold_matches.iter().copied().collect();
        let mut attempts = 0;
        while pairs.len() < num_pos + num_neg && attempts < num_pairs * 20 {
            attempts += 1;
            let a = rng.gen_range(0..table_a.len());
            let b = if rng.gen::<f32>() < self.hard_negative_rate {
                // Hard negative: a table-B row from the same family as `a`, if one exists.
                let family = entities[a].family;
                match family_to_b.get(&family).and_then(|v| v.choose(&mut rng)) {
                    Some(&b) => b,
                    None => rng.gen_range(0..table_b.len()),
                }
            } else {
                rng.gen_range(0..table_b.len())
            };
            if gold_set.contains(&(a, b)) {
                continue;
            }
            pairs.push(LabeledPair { a, b, label: false });
        }
        pairs.shuffle(&mut rng);

        // --- 5. split 3:1:1 -----------------------------------------------------------------
        let n = pairs.len();
        let train_end = n * 3 / 5;
        let valid_end = n * 4 / 5;
        EmDataset {
            name: self.name.to_string(),
            table_a,
            table_b,
            gold_matches,
            train: pairs[..train_end].to_vec(),
            valid: pairs[train_end..valid_end].to_vec(),
            test: pairs[valid_end..].to_vec(),
        }
    }
}

fn scaled(base: usize, scale: f32) -> usize {
    ((base as f32 * scale).round() as usize).max(4)
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Family-level attributes shared by hard-negative siblings.
struct FamilySeed {
    brand: String,
    noun: String,
    topic: String,
    venue: String,
    city: String,
    state_idx: usize,
    artist: String,
    brewery: String,
}

impl FamilySeed {
    fn generate(domain: Domain, rng: &mut impl Rng) -> Self {
        let _ = domain;
        FamilySeed {
            brand: vocab::pick(vocab::BRANDS, rng).to_string(),
            noun: vocab::pick(vocab::PRODUCT_NOUNS, rng).to_string(),
            topic: vocab::pick(vocab::PAPER_TOPICS, rng).to_string(),
            venue: vocab::pick(vocab::VENUES, rng).to_string(),
            city: vocab::pick(vocab::US_CITIES, rng).to_string(),
            state_idx: rng.gen_range(0..vocab::US_STATES.len()),
            artist: vocab::pick(vocab::ARTISTS, rng).to_string(),
            brewery: vocab::pick(vocab::BREWERIES, rng).to_string(),
        }
    }
}

/// An underlying real-world entity with canonical attribute values.
struct Entity {
    family: usize,
    attributes: Vec<(String, String)>,
    domain: Domain,
}

impl Entity {
    fn generate(domain: Domain, family: usize, seed: &FamilySeed, rng: &mut impl Rng) -> Self {
        let attributes = match domain {
            Domain::Product => {
                let modifier = vocab::pick(vocab::PRODUCT_MODIFIERS, rng);
                let model = vocab::model_number(rng);
                let color = vocab::pick(vocab::COLORS, rng);
                let price = vocab::price(8.0, 900.0, rng);
                vec![
                    (
                        "title".to_string(),
                        format!("{} {} {} {}", seed.brand, seed.noun, modifier, model),
                    ),
                    ("brand".to_string(), seed.brand.clone()),
                    ("modelno".to_string(), model),
                    (
                        "description".to_string(),
                        format!("{} {} {}", seed.noun, color, modifier),
                    ),
                    ("price".to_string(), price),
                ]
            }
            Domain::Publication => {
                let frame = vocab::pick(vocab::PAPER_FRAMES, rng);
                let year = rng.gen_range(1995..2021).to_string();
                let authors = format!(
                    "{} and {}",
                    vocab::person_name(rng),
                    vocab::person_name(rng)
                );
                vec![
                    ("title".to_string(), format!("{} {}", frame, seed.topic)),
                    ("authors".to_string(), authors),
                    ("venue".to_string(), seed.venue.clone()),
                    ("year".to_string(), year),
                ]
            }
            Domain::Restaurant => {
                let name = vocab::pick(vocab::RESTAURANTS, rng);
                let number = rng.gen_range(1..999);
                let street = vocab::pick(vocab::STREETS, rng);
                vec![
                    ("name".to_string(), name.to_string()),
                    ("address".to_string(), format!("{number} {street}")),
                    ("city".to_string(), seed.city.clone()),
                    (
                        "state".to_string(),
                        vocab::US_STATES[seed.state_idx].to_string(),
                    ),
                    ("phone".to_string(), vocab::phone(rng)),
                ]
            }
            Domain::Song => {
                let title = format!(
                    "{} {}",
                    vocab::pick(vocab::SONG_WORDS, rng),
                    vocab::pick(vocab::SONG_WORDS, rng)
                );
                let album = format!("{} album", vocab::pick(vocab::SONG_WORDS, rng));
                vec![
                    ("song".to_string(), title),
                    ("artist".to_string(), seed.artist.clone()),
                    ("album".to_string(), album),
                    ("price".to_string(), vocab::price(0.69, 1.49, rng)),
                ]
            }
            Domain::Beer => {
                let style = vocab::pick(vocab::BEER_STYLES, rng);
                let name = format!("{} {}", vocab::pick(vocab::SONG_WORDS, rng), style);
                let abv = format!("{:.3}", rng.gen_range(0.03..0.12));
                vec![
                    ("beer_name".to_string(), name),
                    ("style".to_string(), style.to_string()),
                    ("brewery".to_string(), seed.brewery.clone()),
                    ("abv".to_string(), abv),
                ]
            }
        };
        Entity {
            family,
            attributes,
            domain,
        }
    }

    /// Renders the entity as a table-A record (canonical, clean values; A-side schema).
    fn render_a(&self, _rng: &mut impl Rng) -> Record {
        let keep: Vec<&str> = match self.domain {
            Domain::Product => vec!["title", "description", "price"],
            Domain::Publication => vec!["title", "authors", "venue", "year"],
            Domain::Restaurant => vec!["name", "address", "city", "state", "phone"],
            Domain::Song => vec!["song", "artist", "album", "price"],
            Domain::Beer => vec!["beer_name", "style", "brewery", "abv"],
        };
        Record::from_pairs(
            self.attributes
                .iter()
                .filter(|(a, _)| keep.contains(&a.as_str()))
                .map(|(a, v)| (a.clone(), v.clone())),
        )
    }

    /// Renders the entity as a table-B record: B-side schema plus source noise.
    fn render_b(&self, noise: f32, rng: &mut impl Rng) -> Record {
        let keep: Vec<&str> = match self.domain {
            Domain::Product => vec!["title", "brand", "modelno", "price"],
            Domain::Publication => vec!["title", "authors", "venue", "year"],
            Domain::Restaurant => vec!["name", "address", "city", "phone"],
            Domain::Song => vec!["song", "artist", "album", "price"],
            Domain::Beer => vec!["beer_name", "style", "brewery", "abv"],
        };
        let mut pairs = Vec::new();
        for (attr, value) in &self.attributes {
            if !keep.contains(&attr.as_str()) {
                continue;
            }
            let rendered = if attr == "price" || attr == "abv" || attr == "year" {
                if rng.gen::<f32>() < noise * 0.5 {
                    perturb_number(value, 0.08, rng)
                } else {
                    value.clone()
                }
            } else if attr == "modelno" || attr == "phone" {
                // Identifier attributes are kept verbatim most of the time; occasionally
                // dropped entirely (empty value), which is what makes matching hard.
                if rng.gen::<f32>() < noise * 0.3 {
                    String::new()
                } else {
                    value.clone()
                }
            } else {
                perturb_text(value, noise, rng)
            };
            pairs.push((attr.clone(), rendered));
        }
        Record::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_text::jaccard::jaccard_text;

    #[test]
    fn profiles_generate_requested_shapes() {
        for profile in EmProfile::semi_supervised_suite() {
            let ds = profile.generate(0.3, 7);
            let stats = ds.stats();
            assert!(stats.size_a > 0 && stats.size_b > 0);
            assert!(!ds.train.is_empty() && !ds.valid.is_empty() && !ds.test.is_empty());
            // Positive rate within a factor of ~2 of the profile target.
            assert!(
                (stats.positive_rate - profile.positive_rate).abs() < profile.positive_rate,
                "{}: positive rate {} too far from {}",
                profile.name,
                stats.positive_rate,
                profile.positive_rate
            );
            // All pair indices in range.
            for p in ds.all_pairs() {
                assert!(p.a < ds.table_a.len() && p.b < ds.table_b.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = EmProfile::abt_buy();
        let d1 = p.generate(0.2, 42);
        let d2 = p.generate(0.2, 42);
        let d3 = p.generate(0.2, 43);
        assert_eq!(d1.table_a, d2.table_a);
        assert_eq!(d1.train, d2.train);
        assert_ne!(
            d1.table_a.iter().map(|r| r.text()).collect::<Vec<_>>(),
            d3.table_a.iter().map(|r| r.text()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gold_matches_reference_valid_rows_and_positives_are_gold() {
        let ds = EmProfile::dblp_acm().generate(0.3, 5);
        let gold: std::collections::HashSet<(usize, usize)> =
            ds.gold_matches.iter().copied().collect();
        for &(a, b) in &ds.gold_matches {
            assert!(a < ds.table_a.len() && b < ds.table_b.len());
        }
        for p in ds.all_pairs() {
            assert_eq!(
                p.label,
                gold.contains(&(p.a, p.b)),
                "label/gold inconsistency"
            );
        }
    }

    #[test]
    fn matched_pairs_are_textually_closer_than_negatives() {
        // The whole premise of similarity-based matching: on average, gold matches overlap
        // more than hard negatives. Verify on the easy and on the hardest profile.
        for profile in [EmProfile::dblp_acm(), EmProfile::walmart_amazon()] {
            let ds = profile.generate(0.3, 11);
            let avg = |pairs: &[LabeledPair], label| {
                let sel: Vec<f32> = pairs
                    .iter()
                    .filter(|p| p.label == label)
                    .map(|p| jaccard_text(&ds.table_a[p.a].text(), &ds.table_b[p.b].text()))
                    .collect();
                sel.iter().sum::<f32>() / sel.len().max(1) as f32
            };
            let all = ds.all_pairs();
            let pos = avg(&all, true);
            let neg = avg(&all, false);
            assert!(
                pos > neg + 0.05,
                "{}: positives ({pos}) should overlap more than negatives ({neg})",
                profile.name
            );
        }
    }

    #[test]
    fn easy_dataset_has_higher_match_overlap_than_hard_dataset() {
        let easy = EmProfile::dblp_acm().generate(0.3, 13);
        let hard = EmProfile::walmart_amazon().generate(0.3, 13);
        let avg_match_overlap = |ds: &EmDataset| {
            let sims: Vec<f32> = ds
                .gold_matches
                .iter()
                .map(|&(a, b)| jaccard_text(&ds.table_a[a].text(), &ds.table_b[b].text()))
                .collect();
            sims.iter().sum::<f32>() / sims.len().max(1) as f32
        };
        assert!(
            avg_match_overlap(&easy) > avg_match_overlap(&hard) + 0.1,
            "DBLP-ACM analog should be much cleaner than Walmart-Amazon analog"
        );
    }

    #[test]
    fn corpus_contains_all_rows_serialized() {
        let ds = EmProfile::beer().generate(0.2, 3);
        let corpus = ds.corpus();
        assert_eq!(corpus.len(), ds.table_a.len() + ds.table_b.len());
        assert!(corpus[0].starts_with("[COL]"));
    }

    #[test]
    fn full_suite_has_eight_profiles() {
        assert_eq!(EmProfile::full_suite().len(), 8);
        assert_eq!(EmProfile::semi_supervised_suite().len(), 5);
    }

    #[test]
    fn table_sizes_respect_asymmetry() {
        let ds = EmProfile::dblp_scholar().generate(0.2, 9);
        assert!(ds.table_b.len() > 2 * ds.table_a.len());
    }
}
