//! Small embedded vocabularies used by the synthetic data generators.
//!
//! The real benchmarks (DeepMatcher EM datasets, Raha/Baran cleaning tables, the VizNet
//! column corpus) are not available offline, so the generators in this crate synthesize
//! data with similar surface statistics. These word lists provide the raw material: brands,
//! product nouns, publication venues, author names, US cities/states, beer styles, etc.

/// Product brands (product-domain EM datasets: Abt-Buy, Amazon-Google, Walmart-Amazon).
pub const BRANDS: &[&str] = &[
    "canon",
    "epson",
    "sony",
    "panasonic",
    "samsung",
    "toshiba",
    "logitech",
    "netgear",
    "linksys",
    "belkin",
    "kodak",
    "nikon",
    "olympus",
    "garmin",
    "sandisk",
    "kingston",
    "microsoft",
    "apple",
    "hewlett packard",
    "dell",
    "lenovo",
    "asus",
    "acer",
    "brother",
    "encore",
    "topics entertainment",
    "adobe",
    "intuit",
    "symantec",
    "mcafee",
    "corel",
    "roxio",
    "nuance",
    "swann",
    "dlink",
    "tp link",
];

/// Product category nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "ink cartridge",
    "laser printer",
    "digital camera",
    "camcorder",
    "wireless router",
    "memory card",
    "flash drive",
    "hard drive",
    "keyboard",
    "optical mouse",
    "lcd monitor",
    "security camera",
    "dvr system",
    "headphones",
    "speaker system",
    "office suite",
    "photo software",
    "tax software",
    "antivirus",
    "language course",
    "adventure workshop",
    "typing tutor",
    "notebook battery",
    "usb hub",
    "docking station",
    "graphics tablet",
    "media player",
    "game controller",
    "projector",
    "scanner",
];

/// Product adjectives / edition markers.
pub const PRODUCT_MODIFIERS: &[&str] = &[
    "deluxe",
    "premium",
    "professional",
    "standard",
    "home",
    "portable",
    "compact",
    "wireless",
    "bluetooth",
    "digital",
    "hd",
    "ultra",
    "mini",
    "pro",
    "plus",
    "elite",
    "classic",
    "advanced",
    "special edition",
    "2nd edition",
    "3rd edition",
    "7th edition",
];

/// Colors used in product variants.
pub const COLORS: &[&str] = &[
    "black", "white", "cyan", "magenta", "yellow", "silver", "blue", "red", "gray",
];

/// Publication title topic words (publication-domain EM datasets: DBLP-ACM, DBLP-Scholar).
pub const PAPER_TOPICS: &[&str] = &[
    "query optimization",
    "data integration",
    "entity resolution",
    "schema matching",
    "transaction processing",
    "concurrency control",
    "stream processing",
    "data cleaning",
    "information extraction",
    "knowledge bases",
    "semantic web",
    "graph databases",
    "approximate query answering",
    "index structures",
    "column stores",
    "mapreduce",
    "distributed systems",
    "sensor networks",
    "data mining",
    "machine learning",
    "deep learning",
    "representation learning",
    "crowdsourcing",
    "data provenance",
    "privacy preservation",
    "spatial databases",
    "temporal databases",
    "text analytics",
    "recommendation systems",
    "similarity joins",
];

/// Publication title patterns / framing words.
pub const PAPER_FRAMES: &[&str] = &[
    "towards",
    "a survey of",
    "on the complexity of",
    "efficient",
    "scalable",
    "adaptive",
    "a framework for",
    "revisiting",
    "benchmarking",
    "learning based",
    "principles of",
    "an empirical study of",
    "optimizing",
    "incremental",
];

/// Publication venues.
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "edbt", "cikm", "kdd", "www", "acl", "emnlp", "neurips", "icml",
    "aaai", "pods", "sigir", "wsdm",
];

/// Author first names.
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "william",
    "elizabeth",
    "david",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "wei",
    "yuliang",
    "jin",
    "runhui",
    "xin",
    "lei",
    "ana",
    "carlos",
    "maria",
    "pierre",
    "hans",
    "yuki",
    "chen",
    "raj",
    "priya",
    "omar",
    "fatima",
];

/// Author last names.
pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "wang",
    "li",
    "zhang",
    "chen",
    "liu",
    "yang",
    "kumar",
    "patel",
    "kim",
    "park",
    "nguyen",
    "tran",
    "mueller",
    "schmidt",
    "rossi",
    "silva",
    "tanaka",
    "sato",
    "ivanov",
    "novak",
];

/// US cities (restaurant/business domain, cleaning tables, column corpus).
pub const US_CITIES: &[&str] = &[
    "new york",
    "los angeles",
    "chicago",
    "houston",
    "phoenix",
    "philadelphia",
    "san antonio",
    "san diego",
    "dallas",
    "san jose",
    "austin",
    "jacksonville",
    "columbus",
    "charlotte",
    "indianapolis",
    "seattle",
    "denver",
    "boston",
    "nashville",
    "portland",
    "madison",
    "redmond",
    "mountain view",
    "new brunswick",
    "princeton",
];

/// European cities (used for the fine-grained "central EU city" column cluster, Table IX).
pub const EU_CITIES: &[&str] = &[
    "berlin",
    "munich",
    "marburg",
    "stollberg",
    "pratteln",
    "osnabruck",
    "vienna",
    "graz",
    "zurich",
    "basel",
    "prague",
    "brno",
    "krakow",
    "wroclaw",
    "budapest",
    "leipzig",
    "dresden",
    "stuttgart",
    "salzburg",
    "linz",
];

/// US state abbreviations.
pub const US_STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY",
    "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY",
];

/// US state full names (same order as [`US_STATES`]).
pub const US_STATE_NAMES: &[&str] = &[
    "alabama",
    "alaska",
    "arizona",
    "arkansas",
    "california",
    "colorado",
    "connecticut",
    "delaware",
    "florida",
    "georgia",
    "hawaii",
    "idaho",
    "illinois",
    "indiana",
    "iowa",
    "kansas",
    "kentucky",
    "louisiana",
    "maine",
    "maryland",
    "massachusetts",
    "michigan",
    "minnesota",
    "mississippi",
    "missouri",
    "montana",
    "nebraska",
    "nevada",
    "new hampshire",
    "new jersey",
    "new mexico",
    "new york",
    "north carolina",
    "north dakota",
    "ohio",
    "oklahoma",
    "oregon",
    "pennsylvania",
    "rhode island",
    "south carolina",
    "south dakota",
    "tennessee",
    "texas",
    "utah",
    "vermont",
    "virginia",
    "washington",
    "west virginia",
    "wisconsin",
    "wyoming",
];

/// Street name stems (address attributes).
pub const STREETS: &[&str] = &[
    "main st",
    "oak ave",
    "maple dr",
    "cedar ln",
    "park blvd",
    "washington st",
    "lake rd",
    "hill st",
    "river rd",
    "church st",
    "elm st",
    "pine ave",
    "sunset blvd",
    "broadway",
    "2nd ave",
    "5th ave",
    "market st",
    "mission st",
    "university ave",
    "campus dr",
];

/// Beer style names (the `beers` cleaning table and the Beer EM dataset).
pub const BEER_STYLES: &[&str] = &[
    "american ipa",
    "imperial stout",
    "pale ale",
    "porter",
    "pilsner",
    "hefeweizen",
    "saison",
    "amber ale",
    "brown ale",
    "blonde ale",
    "double ipa",
    "lager",
    "wheat ale",
    "barleywine",
    "kolsch",
    "mead",
    "cider",
    "sour ale",
    "gose",
    "dunkel",
];

/// Brewery name stems.
pub const BREWERIES: &[&str] = &[
    "redstone meadery",
    "lone pine brewing",
    "stone brewing",
    "sierra nevada",
    "dogfish head",
    "founders brewing",
    "bells brewery",
    "lagunitas",
    "deschutes",
    "new belgium",
    "oskar blues",
    "half acre",
    "three floyds",
    "russian river",
    "cigar city",
    "trillium",
    "tree house",
    "maine beer company",
    "alchemist",
    "firestone",
];

/// Restaurant name stems (Fodors-Zagats profile).
pub const RESTAURANTS: &[&str] = &[
    "la bella cucina",
    "golden dragon",
    "el toro loco",
    "the rusty spoon",
    "blue plate",
    "harvest table",
    "sakura garden",
    "taverna athena",
    "le petit bistro",
    "smokehouse 52",
    "noodle republic",
    "the corner grill",
    "casa verde",
    "pho saigon",
    "curry leaf",
    "bombay palace",
    "old mill diner",
    "sea breeze cafe",
    "the black olive",
    "trattoria roma",
];

/// Music artist stems (iTunes-Amazon profile).
pub const ARTISTS: &[&str] = &[
    "the midnight owls",
    "silver canyon",
    "dj nebula",
    "aurora skies",
    "velvet thunder",
    "los hermanos",
    "miss scarlett",
    "the paper kites",
    "neon harbor",
    "stone lotus",
    "golden era trio",
    "the wandering",
    "electric meadow",
    "crimson tide band",
    "north avenue",
];

/// Song title words.
pub const SONG_WORDS: &[&str] = &[
    "midnight",
    "summer",
    "river",
    "heart",
    "fire",
    "dancing",
    "shadow",
    "golden",
    "dream",
    "thunder",
    "broken",
    "paradise",
    "echoes",
    "horizon",
    "gravity",
    "wildflower",
];

/// Hospital / medical measure descriptions (the `hospital` cleaning table).
pub const MEASURES: &[&str] = &[
    "heart failure",
    "heart attack",
    "pneumonia",
    "surgical infection prevention",
    "children asthma care",
    "stroke care",
    "blood clot prevention",
    "emergency department",
];

/// Generic languages (column corpus).
pub const LANGUAGES: &[&str] = &[
    "english",
    "spanish",
    "french",
    "german",
    "polski",
    "turkish",
    "afrikaans",
    "japanese",
    "mandarin",
    "hindi",
    "portuguese",
    "italian",
    "korean",
    "arabic",
    "russian",
    "dutch",
];

/// Sports club abbreviations (column corpus).
pub const CLUBS: &[&str] = &[
    "AMS", "SDSM", "GAKW", "WSM", "DCM", "NYAC", "LAAC", "CHI", "BOS", "SEA", "ATL", "DEN",
];

/// Company names (column corpus "company name" type).
pub const COMPANIES: &[&str] = &[
    "lone pine capital llc",
    "t rowe price associates inc",
    "trigran investments inc",
    "icahn associates corp",
    "apple inc",
    "alphabet inc",
    "berkshire hathaway",
    "vanguard group",
    "blackrock inc",
    "fidelity investments",
    "bridgewater associates",
    "citadel llc",
    "renaissance technologies",
    "two sigma investments",
];

/// Ball-game result strings (column corpus "result" type, coarse).
pub const GAME_RESULTS: &[&str] = &[
    "win", "loss", "draw", "win 3-1", "3-1 l", "w 9-0", "l 2-4", "win 2-0", "loss 0-1",
];

/// Baseball in-game events (fine-grained subtype of "result", Table IX).
pub const BASEBALL_EVENTS: &[&str] = &[
    "single, left field",
    "pop fly out, center field",
    "strikeout",
    "pitcher to first base",
    "walk",
    "double, right field",
    "home run",
    "ground out to shortstop",
    "sacrifice bunt",
    "stolen base",
];

/// Weight strings (column corpus "weight" type).
pub const WEIGHTS: &[&str] = &[
    "50 lbs or less",
    "38kg",
    "40 lbs",
    "up to 25 lbs",
    "5 lbs",
    "12 kg",
    "100 lbs",
    "65kg",
    "under 10 lbs",
    "heavyweight",
];

/// Genders (column corpus).
pub const GENDERS: &[&str] = &["m", "f", "male", "female"];

/// Currencies (column corpus).
pub const CURRENCIES: &[&str] = &["usd", "eur", "gbp", "jpy", "chf", "cad", "aud", "cny"];

/// Picks one element of a slice with the given RNG.
pub fn pick<'a, T: ?Sized>(items: &[&'a T], rng: &mut impl rand::Rng) -> &'a T {
    items[rng.gen_range(0..items.len())]
}

/// Picks `n` not-necessarily-distinct elements and joins them with spaces.
pub fn pick_join(items: &[&str], n: usize, rng: &mut impl rand::Rng) -> String {
    (0..n)
        .map(|_| pick(items, rng).to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Generates a pseudo model number such as `swa49-d5` or `cli8c`.
pub fn model_number(rng: &mut impl rand::Rng) -> String {
    let letters = ["sw", "cli", "mp", "dx", "pro", "mk", "xt", "gz", "hd", "np"];
    let prefix = pick(&letters, rng);
    let digits = rng.gen_range(1..9999);
    if rng.gen_bool(0.5) {
        format!("{prefix}{digits}")
    } else {
        let suffix_letter = (b'a' + rng.gen_range(0..26u8)) as char;
        let suffix_digit = rng.gen_range(0..10u32);
        format!("{prefix}{digits}-{suffix_letter}{suffix_digit}")
    }
}

/// Generates a price string with two decimals in `[low, high)`.
pub fn price(low: f32, high: f32, rng: &mut impl rand::Rng) -> String {
    format!("{:.2}", rng.gen_range(low..high))
}

/// Generates a phone number string.
pub fn phone(rng: &mut impl rand::Rng) -> String {
    format!(
        "{}{}{}{}",
        rng.gen_range(200..999),
        rng.gen_range(2..9),
        rng.gen_range(100..999),
        rng.gen_range(1000..9999)
    )
}

/// Generates a 5-digit zip code string.
pub fn zip(rng: &mut impl rand::Rng) -> String {
    format!("{:05}", rng.gen_range(501..99950))
}

/// Generates a personal name "last, first".
pub fn person_name(rng: &mut impl rand::Rng) -> String {
    format!("{}, {}", pick(LAST_NAMES, rng), pick(FIRST_NAMES, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pick_and_join_stay_inside_vocabulary() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let b = pick(BRANDS, &mut rng);
            assert!(BRANDS.contains(&b));
        }
        let joined = pick_join(COLORS, 3, &mut rng);
        assert_eq!(joined.split(' ').count(), 3);
    }

    #[test]
    fn generated_values_have_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = model_number(&mut rng);
        assert!(m.len() >= 3);
        let p = price(5.0, 100.0, &mut rng);
        assert!(p.parse::<f32>().unwrap() >= 5.0);
        assert!(p.contains('.'));
        assert_eq!(zip(&mut rng).len(), 5);
        assert!(phone(&mut rng).len() >= 10);
        assert!(person_name(&mut rng).contains(", "));
    }

    #[test]
    fn state_lists_are_aligned() {
        assert_eq!(US_STATES.len(), US_STATE_NAMES.len());
    }
}
