//! # sudowoodo-datasets
//!
//! Synthetic workloads standing in for the paper's benchmarks (none of which are available
//! offline). Every generator is deterministic given a seed and exposes a `scale` knob so the
//! test suite can run on tiny instances while the benchmark harness uses larger ones.
//!
//! * [`em`] — Entity Matching datasets modeled after the DeepMatcher suite (Abt-Buy,
//!   Amazon-Google, DBLP-ACM, DBLP-Scholar, Walmart-Amazon, Beer, Fodors-Zagats,
//!   iTunes-Amazon): two entity tables, gold matches, labeled pair splits, with per-profile
//!   difficulty controlled through rendering noise and hard-negative density.
//! * [`cleaning`] — dirty relational tables with injected errors of the four types in
//!   Table III plus a Baran-style candidate-correction generator (coverage / candidate-set
//!   size knobs).
//! * [`columns`] — a typed column corpus for semantic type detection, including fine-grained
//!   subtypes (e.g. "central EU city" within "city") to exercise the cluster-discovery
//!   analysis of Table IX.
//! * [`difficulty`] — Jaccard-similarity difficulty levels of EM test sets (Table XVI).
//! * [`perturb`] / [`vocab`] — shared string-corruption utilities and word lists.

#![warn(missing_docs)]

pub mod cleaning;
pub mod columns;
pub mod difficulty;
pub mod em;
pub mod perturb;
pub mod vocab;

pub use cleaning::{CleaningDataset, CleaningProfile, CleaningStats, ErrorType};
pub use columns::{ColumnCorpus, ColumnPair, ColumnProfile};
pub use difficulty::{difficulty_levels, DifficultyLevel};
pub use em::{Domain, EmDataset, EmProfile, EmStats, LabeledPair};
