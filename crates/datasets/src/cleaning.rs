//! Synthetic data-cleaning benchmarks (dirty tables + candidate corrections).
//!
//! The paper evaluates error correction on the Raha/Baran benchmark tables (`beers`,
//! `hospital`, `rayyan`, `tax` — Table III). This module generates synthetic counterparts:
//! a clean relational table, a dirty copy with injected errors of the four types the paper
//! lists (missing value, typo, formatting issue, violated attribute dependency), and a
//! candidate-correction generator emulating Baran's external error-correction tools with a
//! controllable coverage and candidate-set size (the facets reported in Tables III and XIV).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sudowoodo_text::Table;

use crate::perturb::{reformat, typo};
use crate::vocab;

/// The error types of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorType {
    /// Missing value (cell replaced by empty / "N/A").
    MissingValue,
    /// Typographical error.
    Typo,
    /// Formatting issue (extra unit, case change, added symbol).
    FormattingIssue,
    /// Violated attribute dependency (value swapped with one that breaks an FD such as
    /// city -> state).
    ViolatedDependency,
}

impl ErrorType {
    /// Short code used in reports (MV / T / FI / VAD, as in Table III).
    pub fn code(&self) -> &'static str {
        match self {
            ErrorType::MissingValue => "MV",
            ErrorType::Typo => "T",
            ErrorType::FormattingIssue => "FI",
            ErrorType::ViolatedDependency => "VAD",
        }
    }
}

/// One injected error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellError {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Error type.
    pub error_type: ErrorType,
    /// The correct (clean) value.
    pub correct_value: String,
    /// The dirty value that replaced it.
    pub dirty_value: String,
}

/// A complete data-cleaning dataset.
#[derive(Clone, Debug)]
pub struct CleaningDataset {
    /// Dataset name (beers / hospital / rayyan / tax analogs).
    pub name: String,
    /// The dirty table given to the cleaning system.
    pub dirty: Table,
    /// The clean ground-truth table.
    pub clean: Table,
    /// All injected errors.
    pub errors: Vec<CellError>,
    /// Candidate corrections per cell `(row, col)`. Every erroneous cell has an entry;
    /// a fraction of clean cells also has (distractor) candidates, as Baran's generators do.
    pub candidates: HashMap<(usize, usize), Vec<String>>,
}

/// Summary statistics in the layout of Tables III / XIV.
#[derive(Clone, Debug, PartialEq)]
pub struct CleaningStats {
    /// Dataset name.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Fraction of cells that are erroneous.
    pub error_rate: f32,
    /// Error-type codes present.
    pub error_types: Vec<&'static str>,
    /// Fraction of erroneous cells whose ground-truth correction appears in the candidates.
    pub coverage: f32,
    /// Mean candidate-set size over cells that have candidates.
    pub avg_candidates: f32,
}

impl CleaningDataset {
    /// Indices of all cells `(row, col)` flagged as containing an error.
    pub fn error_cells(&self) -> Vec<(usize, usize)> {
        self.errors.iter().map(|e| (e.row, e.col)).collect()
    }

    /// Ground-truth correction for a cell, when that cell is erroneous.
    pub fn correction_for(&self, row: usize, col: usize) -> Option<&str> {
        self.errors
            .iter()
            .find(|e| e.row == row && e.col == col)
            .map(|e| e.correct_value.as_str())
    }

    /// Statistics of the dataset (Table III / XIV layout).
    pub fn stats(&self) -> CleaningStats {
        let total_cells = self.dirty.num_rows() * self.dirty.num_columns();
        let mut covered = 0usize;
        for e in &self.errors {
            if self
                .candidates
                .get(&(e.row, e.col))
                .map(|c| c.iter().any(|v| v == &e.correct_value))
                .unwrap_or(false)
            {
                covered += 1;
            }
        }
        let mut types: Vec<&'static str> =
            self.errors.iter().map(|e| e.error_type.code()).collect();
        types.sort_unstable();
        types.dedup();
        let candidate_sizes: Vec<usize> = self.candidates.values().map(|c| c.len()).collect();
        CleaningStats {
            name: self.name.clone(),
            rows: self.dirty.num_rows(),
            cols: self.dirty.num_columns(),
            error_rate: if total_cells == 0 {
                0.0
            } else {
                self.errors.len() as f32 / total_cells as f32
            },
            error_types: types,
            coverage: if self.errors.is_empty() {
                1.0
            } else {
                covered as f32 / self.errors.len() as f32
            },
            avg_candidates: if candidate_sizes.is_empty() {
                0.0
            } else {
                candidate_sizes.iter().sum::<usize>() as f32 / candidate_sizes.len() as f32
            },
        }
    }
}

/// Generation profile for one cleaning dataset.
#[derive(Clone, Debug)]
pub struct CleaningProfile {
    /// Dataset name.
    pub name: &'static str,
    /// Number of rows (at scale 1.0).
    pub rows: usize,
    /// Fraction of cells receiving an injected error.
    pub error_rate: f32,
    /// Error types to inject.
    pub error_types: Vec<ErrorType>,
    /// Probability that the true correction appears in a dirty cell's candidate set.
    pub coverage: f32,
    /// Average number of candidate corrections per cell.
    pub candidates_per_cell: usize,
    /// Which clean-table schema to use.
    pub schema: CleaningSchema,
}

/// The table schema families mirroring the four benchmark tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CleaningSchema {
    /// Beer catalog (name, style, ounces, abv, ibu, brewery, city, state).
    Beers,
    /// Hospital directory (name, address, city, state, zip, county, phone, measure code).
    Hospital,
    /// Bibliography screening (title, language, journal, created date, pagination).
    Rayyan,
    /// Personal tax records (name, gender, area code, phone, city, state, zip, salary, rate).
    Tax,
}

impl CleaningProfile {
    /// `beers` analog: moderate error rate, MV + FI + VAD errors, high coverage.
    pub fn beers() -> Self {
        CleaningProfile {
            name: "beers",
            rows: 600,
            error_rate: 0.16,
            error_types: vec![
                ErrorType::MissingValue,
                ErrorType::FormattingIssue,
                ErrorType::ViolatedDependency,
            ],
            coverage: 0.95,
            candidates_per_cell: 8,
            schema: CleaningSchema::Beers,
        }
    }

    /// `hospital` analog: low error rate, typos + VAD, high coverage.
    pub fn hospital() -> Self {
        CleaningProfile {
            name: "hospital",
            rows: 400,
            error_rate: 0.03,
            error_types: vec![ErrorType::Typo, ErrorType::ViolatedDependency],
            coverage: 0.9,
            candidates_per_cell: 8,
            schema: CleaningSchema::Hospital,
        }
    }

    /// `rayyan` analog: all four error types, *low* candidate coverage (the hard dataset).
    pub fn rayyan() -> Self {
        CleaningProfile {
            name: "rayyan",
            rows: 400,
            error_rate: 0.09,
            error_types: vec![
                ErrorType::MissingValue,
                ErrorType::Typo,
                ErrorType::FormattingIssue,
                ErrorType::ViolatedDependency,
            ],
            coverage: 0.52,
            candidates_per_cell: 12,
            schema: CleaningSchema::Rayyan,
        }
    }

    /// `tax` analog: low error rate, typos + FI + VAD, large candidate sets.
    pub fn tax() -> Self {
        CleaningProfile {
            name: "tax",
            rows: 800,
            error_rate: 0.04,
            error_types: vec![
                ErrorType::Typo,
                ErrorType::FormattingIssue,
                ErrorType::ViolatedDependency,
            ],
            coverage: 0.92,
            candidates_per_cell: 16,
            schema: CleaningSchema::Tax,
        }
    }

    /// The four datasets of the data-cleaning experiment (Table VIII).
    pub fn suite() -> Vec<CleaningProfile> {
        vec![Self::beers(), Self::hospital(), Self::rayyan(), Self::tax()]
    }

    /// Generates the dataset at the given scale and seed.
    pub fn generate(&self, scale: f32, seed: u64) -> CleaningDataset {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(self.name));
        let rows = ((self.rows as f32 * scale).round() as usize).max(10);
        let clean = generate_clean_table(self.schema, rows, &mut rng);
        let mut dirty = clean.clone();
        let num_cols = clean.num_columns();

        // Column value domains (for VAD errors and distractor candidates).
        let mut domains: Vec<Vec<String>> = Vec::with_capacity(num_cols);
        for c in 0..num_cols {
            let mut values = clean.column(c).values;
            values.sort();
            values.dedup();
            domains.push(values);
        }

        // Inject errors.
        let total_cells = rows * num_cols;
        let num_errors = ((total_cells as f32) * self.error_rate).round() as usize;
        let mut cells: Vec<(usize, usize)> = (0..rows)
            .flat_map(|r| (0..num_cols).map(move |c| (r, c)))
            .collect();
        cells.shuffle(&mut rng);
        let mut errors = Vec::with_capacity(num_errors);
        for &(row, col) in cells.iter().take(num_errors) {
            let correct = clean.cell(row, col).unwrap_or_default().to_string();
            if correct.is_empty() {
                continue;
            }
            let error_type = *self
                .error_types
                .choose(&mut rng)
                .expect("non-empty error types");
            let dirty_value = match error_type {
                ErrorType::MissingValue => {
                    if rng.gen_bool(0.5) {
                        String::new()
                    } else {
                        "n/a".to_string()
                    }
                }
                ErrorType::Typo => {
                    let t = typo(&correct, &mut rng);
                    if t == correct {
                        format!("{correct}x")
                    } else {
                        t
                    }
                }
                ErrorType::FormattingIssue => reformat(&correct, &mut rng),
                ErrorType::ViolatedDependency => {
                    // Replace with a different value from the same column's domain.
                    let domain = &domains[col];
                    let alt = domain
                        .iter()
                        .filter(|v| *v != &correct)
                        .nth(rng.gen_range(0..domain.len().max(2) - 1))
                        .cloned()
                        .unwrap_or_else(|| format!("{correct} alt"));
                    alt
                }
            };
            if dirty_value == correct {
                continue;
            }
            dirty.set_cell(row, col, dirty_value.clone());
            errors.push(CellError {
                row,
                col,
                error_type,
                correct_value: correct,
                dirty_value,
            });
        }

        // Candidate corrections: for erroneous cells, include the truth with prob `coverage`
        // plus distractors; a fraction of clean cells also receive (pure-distractor)
        // candidate sets so that the matcher must learn to reject corrections on clean cells.
        let mut candidates: HashMap<(usize, usize), Vec<String>> = HashMap::new();
        let error_lookup: HashMap<(usize, usize), &CellError> =
            errors.iter().map(|e| ((e.row, e.col), e)).collect();
        for (row, col) in cells.iter().copied() {
            let is_error = error_lookup.contains_key(&(row, col));
            let wants_candidates = is_error || rng.gen::<f32>() < 0.25;
            if !wants_candidates {
                continue;
            }
            let current = dirty.cell(row, col).unwrap_or_default().to_string();
            let mut cand: Vec<String> = Vec::new();
            if let Some(err) = error_lookup.get(&(row, col)) {
                if rng.gen::<f32>() < self.coverage {
                    cand.push(err.correct_value.clone());
                }
            }
            let domain = &domains[col];
            let extra = self.candidates_per_cell.saturating_sub(cand.len());
            for _ in 0..extra {
                let distractor = if domain.len() > 1 && rng.gen_bool(0.7) {
                    domain[rng.gen_range(0..domain.len())].clone()
                } else {
                    typo(&current, &mut rng)
                };
                if distractor != current && !cand.contains(&distractor) && !distractor.is_empty() {
                    cand.push(distractor);
                }
            }
            cand.shuffle(&mut rng);
            if !cand.is_empty() {
                candidates.insert((row, col), cand);
            }
        }

        CleaningDataset {
            name: self.name.to_string(),
            dirty,
            clean,
            errors,
            candidates,
        }
    }
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Generates the clean table for a schema.
fn generate_clean_table(schema: CleaningSchema, rows: usize, rng: &mut impl Rng) -> Table {
    match schema {
        CleaningSchema::Beers => {
            let mut t = Table::new(
                "beers",
                vec![
                    "beer_name".into(),
                    "style".into(),
                    "ounces".into(),
                    "abv".into(),
                    "ibu".into(),
                    "brewery_name".into(),
                    "city".into(),
                    "state".into(),
                ],
            );
            for _ in 0..rows {
                let style = vocab::pick(vocab::BEER_STYLES, rng);
                let brewery = vocab::pick(vocab::BREWERIES, rng);
                let city_idx = rng.gen_range(0..vocab::US_CITIES.len());
                let state = vocab::US_STATES[city_idx % vocab::US_STATES.len()];
                t.push_row(vec![
                    format!("{} {}", vocab::pick(vocab::SONG_WORDS, rng), style),
                    style.to_string(),
                    ["12", "16", "19.2"][rng.gen_range(0..3)].to_string(),
                    format!("{:.3}", rng.gen_range(0.03..0.12)),
                    format!("{}", rng.gen_range(5..120)),
                    brewery.to_string(),
                    vocab::US_CITIES[city_idx].to_string(),
                    state.to_string(),
                ]);
            }
            t
        }
        CleaningSchema::Hospital => {
            let mut t = Table::new(
                "hospital",
                vec![
                    "name".into(),
                    "address".into(),
                    "city".into(),
                    "state".into(),
                    "zip".into(),
                    "county".into(),
                    "phone".into(),
                    "measure_name".into(),
                    "measure_code".into(),
                ],
            );
            for _ in 0..rows {
                let city_idx = rng.gen_range(0..vocab::US_CITIES.len());
                let state = vocab::US_STATES[city_idx % vocab::US_STATES.len()];
                let measure_idx = rng.gen_range(0..vocab::MEASURES.len());
                t.push_row(vec![
                    format!("{} memorial hospital", vocab::pick(vocab::LAST_NAMES, rng)),
                    format!(
                        "{} {}",
                        rng.gen_range(1..999),
                        vocab::pick(vocab::STREETS, rng)
                    ),
                    vocab::US_CITIES[city_idx].to_string(),
                    state.to_string(),
                    vocab::zip(rng),
                    format!("{} county", vocab::pick(vocab::LAST_NAMES, rng)),
                    vocab::phone(rng),
                    vocab::MEASURES[measure_idx].to_string(),
                    format!("m-{measure_idx}"),
                ]);
            }
            t
        }
        CleaningSchema::Rayyan => {
            let mut t = Table::new(
                "rayyan",
                vec![
                    "article_title".into(),
                    "article_language".into(),
                    "journal_title".into(),
                    "created_at".into(),
                    "pagination".into(),
                    "author_list".into(),
                ],
            );
            for _ in 0..rows {
                let start = rng.gen_range(1..400);
                t.push_row(vec![
                    format!(
                        "{} {}",
                        vocab::pick(vocab::PAPER_FRAMES, rng),
                        vocab::pick(vocab::PAPER_TOPICS, rng)
                    ),
                    vocab::pick(vocab::LANGUAGES, rng).to_string(),
                    format!("journal of {}", vocab::pick(vocab::PAPER_TOPICS, rng)),
                    format!(
                        "{}/{}/{}",
                        rng.gen_range(1..13),
                        rng.gen_range(1..29),
                        rng.gen_range(1..21)
                    ),
                    format!("{}-{}", start, start + rng.gen_range(1..40)),
                    format!("{{\"{}\"}}", vocab::person_name(rng)),
                ]);
            }
            t
        }
        CleaningSchema::Tax => {
            let mut t = Table::new(
                "tax",
                vec![
                    "f_name".into(),
                    "l_name".into(),
                    "gender".into(),
                    "area_code".into(),
                    "phone".into(),
                    "city".into(),
                    "state".into(),
                    "zip".into(),
                    "salary".into(),
                    "rate".into(),
                ],
            );
            for _ in 0..rows {
                let city_idx = rng.gen_range(0..vocab::US_CITIES.len());
                let state = vocab::US_STATES[city_idx % vocab::US_STATES.len()];
                t.push_row(vec![
                    vocab::pick(vocab::FIRST_NAMES, rng).to_string(),
                    vocab::pick(vocab::LAST_NAMES, rng).to_string(),
                    ["m", "f"][rng.gen_range(0..2)].to_string(),
                    format!("{}", rng.gen_range(200..990)),
                    vocab::phone(rng),
                    vocab::US_CITIES[city_idx].to_string(),
                    state.to_string(),
                    vocab::zip(rng),
                    format!("{}", rng.gen_range(1..40) * 2500),
                    format!("{:.1}", rng.gen_range(1.0..9.0)),
                ]);
            }
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_profiles_generate_expected_stats() {
        for profile in CleaningProfile::suite() {
            let ds = profile.generate(0.3, 17);
            let stats = ds.stats();
            assert!(stats.rows >= 10);
            assert!(
                !ds.errors.is_empty(),
                "{}: no errors injected",
                profile.name
            );
            // Error rate close to the profile target (scaled tables are small so allow slack).
            assert!(
                (stats.error_rate - profile.error_rate).abs() < profile.error_rate * 0.6 + 0.01,
                "{}: error rate {} vs target {}",
                profile.name,
                stats.error_rate,
                profile.error_rate
            );
            // Coverage close to the profile target.
            assert!(
                (stats.coverage - profile.coverage).abs() < 0.25,
                "{}: coverage {} vs target {}",
                profile.name,
                stats.coverage,
                profile.coverage
            );
            assert!(stats.avg_candidates > 1.0);
        }
    }

    #[test]
    fn dirty_cells_differ_from_clean_only_at_error_positions() {
        let ds = CleaningProfile::beers().generate(0.2, 3);
        let error_cells: std::collections::HashSet<(usize, usize)> =
            ds.error_cells().into_iter().collect();
        for r in 0..ds.clean.num_rows() {
            for c in 0..ds.clean.num_columns() {
                let clean = ds.clean.cell(r, c).unwrap();
                let dirty = ds.dirty.cell(r, c).unwrap();
                if error_cells.contains(&(r, c)) {
                    assert_ne!(clean, dirty, "error cell ({r},{c}) should differ");
                } else {
                    assert_eq!(clean, dirty, "clean cell ({r},{c}) should be untouched");
                }
            }
        }
    }

    #[test]
    fn every_error_records_the_clean_value() {
        let ds = CleaningProfile::hospital().generate(0.3, 5);
        for e in &ds.errors {
            assert_eq!(ds.clean.cell(e.row, e.col).unwrap(), e.correct_value);
            assert_eq!(ds.dirty.cell(e.row, e.col).unwrap(), e.dirty_value);
            assert_eq!(
                ds.correction_for(e.row, e.col),
                Some(e.correct_value.as_str())
            );
        }
        assert_eq!(ds.correction_for(usize::MAX, 0), None);
    }

    #[test]
    fn rayyan_has_lower_coverage_than_beers() {
        let beers = CleaningProfile::beers().generate(0.3, 7).stats();
        let rayyan = CleaningProfile::rayyan().generate(0.3, 7).stats();
        assert!(
            beers.coverage > rayyan.coverage + 0.2,
            "beers coverage {} should exceed rayyan coverage {}",
            beers.coverage,
            rayyan.coverage
        );
    }

    #[test]
    fn error_types_match_profile() {
        let ds = CleaningProfile::hospital().generate(0.3, 9);
        for e in &ds.errors {
            assert!(
                matches!(
                    e.error_type,
                    ErrorType::Typo | ErrorType::ViolatedDependency
                ),
                "hospital should only contain T and VAD errors"
            );
        }
        let stats = ds.stats();
        assert!(stats.error_types.contains(&"T") || stats.error_types.contains(&"VAD"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CleaningProfile::tax().generate(0.2, 21);
        let b = CleaningProfile::tax().generate(0.2, 21);
        assert_eq!(a.dirty, b.dirty);
        assert_eq!(a.errors, b.errors);
    }

    #[test]
    fn error_codes() {
        assert_eq!(ErrorType::MissingValue.code(), "MV");
        assert_eq!(ErrorType::Typo.code(), "T");
        assert_eq!(ErrorType::FormattingIssue.code(), "FI");
        assert_eq!(ErrorType::ViolatedDependency.code(), "VAD");
    }
}
