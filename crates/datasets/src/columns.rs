//! Synthetic column corpus for semantic type detection / column matching (§V-B, §VI-D).
//!
//! The paper uses ~119k columns from the VizNet corpus annotated with 78 semantic types.
//! Offline, this module generates a typed column corpus: each column is assigned a semantic
//! type (and, for some types, a finer-grained subtype such as "central EU city" inside
//! "city", mirroring Table IX), and its values are drawn from that type's value generator
//! with light noise. Column matching labels two columns as a match iff they share the
//! coarse semantic type; the subtype labels let the experiments verify that Sudowoodo's
//! discovered clusters are finer-grained than the coarse label set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_text::serialize::serialize_column;
use sudowoodo_text::Column;

use crate::vocab;

/// A column corpus with coarse and fine-grained type labels.
#[derive(Clone, Debug)]
pub struct ColumnCorpus {
    /// The columns.
    pub columns: Vec<Column>,
    /// Coarse semantic type index per column (index into [`ColumnCorpus::type_names`]).
    pub type_labels: Vec<usize>,
    /// Coarse type names.
    pub type_names: Vec<String>,
    /// Fine-grained subtype index per column (index into [`ColumnCorpus::fine_names`]).
    pub fine_labels: Vec<usize>,
    /// Fine-grained subtype names.
    pub fine_names: Vec<String>,
}

impl ColumnCorpus {
    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Serializations of every column (bare-bone `[VAL] ...` scheme, capped at `max_values`).
    pub fn corpus(&self, max_values: usize) -> Vec<String> {
        self.columns
            .iter()
            .map(|c| serialize_column(c, max_values))
            .collect()
    }

    /// `true` when two columns share the coarse semantic type (the matching criterion).
    pub fn same_type(&self, i: usize, j: usize) -> bool {
        self.type_labels[i] == self.type_labels[j]
    }
}

/// Generation profile for the column corpus.
#[derive(Clone, Debug)]
pub struct ColumnProfile {
    /// Number of columns to generate (at scale 1.0).
    pub num_columns: usize,
    /// Values per column (sampled uniformly within the range).
    pub min_values: usize,
    /// Upper bound of values per column.
    pub max_values: usize,
}

impl Default for ColumnProfile {
    fn default() -> Self {
        ColumnProfile {
            num_columns: 600,
            min_values: 8,
            max_values: 20,
        }
    }
}

/// The coarse semantic types of the synthetic corpus with their fine-grained subtypes.
/// Each entry is `(coarse type, subtypes)`.
fn type_catalog() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("city", vec!["us city", "central eu city"]),
        ("state", vec!["us state code", "us state name"]),
        ("name", vec!["person name", "company name"]),
        ("result", vec!["ball game result", "baseball in-game event"]),
        ("language", vec!["language"]),
        ("club", vec!["club"]),
        ("weight", vec!["weight"]),
        ("year", vec!["year"]),
        ("age", vec!["age"]),
        ("price", vec!["price"]),
        ("gender", vec!["gender"]),
        ("currency", vec!["currency"]),
        ("phone", vec!["phone"]),
        ("zip", vec!["zip"]),
        ("brand", vec!["brand"]),
        ("venue", vec!["venue"]),
        ("style", vec!["beer style"]),
        ("street", vec!["street address"]),
        ("artist", vec!["artist"]),
        ("measure", vec!["medical measure"]),
    ]
}

/// Generates one value of the given fine-grained subtype.
fn generate_value(subtype: &str, rng: &mut impl Rng) -> String {
    match subtype {
        "us city" => vocab::pick(vocab::US_CITIES, rng).to_string(),
        "central eu city" => vocab::pick(vocab::EU_CITIES, rng).to_string(),
        "us state code" => vocab::pick(vocab::US_STATES, rng).to_string(),
        "us state name" => vocab::pick(vocab::US_STATE_NAMES, rng).to_string(),
        "person name" => vocab::person_name(rng),
        "company name" => vocab::pick(vocab::COMPANIES, rng).to_string(),
        "ball game result" => vocab::pick(vocab::GAME_RESULTS, rng).to_string(),
        "baseball in-game event" => vocab::pick(vocab::BASEBALL_EVENTS, rng).to_string(),
        "language" => vocab::pick(vocab::LANGUAGES, rng).to_string(),
        "club" => vocab::pick(vocab::CLUBS, rng).to_string(),
        "weight" => vocab::pick(vocab::WEIGHTS, rng).to_string(),
        "year" => rng.gen_range(1950..2023).to_string(),
        "age" => rng.gen_range(1..95).to_string(),
        "price" => vocab::price(1.0, 500.0, rng),
        "gender" => vocab::pick(vocab::GENDERS, rng).to_string(),
        "currency" => vocab::pick(vocab::CURRENCIES, rng).to_string(),
        "phone" => vocab::phone(rng),
        "zip" => vocab::zip(rng),
        "brand" => vocab::pick(vocab::BRANDS, rng).to_string(),
        "venue" => vocab::pick(vocab::VENUES, rng).to_string(),
        "beer style" => vocab::pick(vocab::BEER_STYLES, rng).to_string(),
        "street address" => {
            format!(
                "{} {}",
                rng.gen_range(1..999),
                vocab::pick(vocab::STREETS, rng)
            )
        }
        "artist" => vocab::pick(vocab::ARTISTS, rng).to_string(),
        "medical measure" => vocab::pick(vocab::MEASURES, rng).to_string(),
        other => panic!("unknown column subtype: {other}"),
    }
}

impl ColumnProfile {
    /// Generates the corpus at the given scale and seed.
    pub fn generate(&self, scale: f32, seed: u64) -> ColumnCorpus {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x05ee_dc01); // distinct stream per task
        let num_columns = ((self.num_columns as f32 * scale).round() as usize).max(20);
        let catalog = type_catalog();
        let type_names: Vec<String> = catalog.iter().map(|(t, _)| t.to_string()).collect();
        let fine_names: Vec<String> = catalog
            .iter()
            .flat_map(|(_, subs)| subs.iter().map(|s| s.to_string()))
            .collect();
        // Map fine index -> coarse index.
        let mut fine_to_coarse = Vec::new();
        for (coarse_idx, (_, subs)) in catalog.iter().enumerate() {
            for _ in subs {
                fine_to_coarse.push(coarse_idx);
            }
        }

        let mut columns = Vec::with_capacity(num_columns);
        let mut type_labels = Vec::with_capacity(num_columns);
        let mut fine_labels = Vec::with_capacity(num_columns);
        for _ in 0..num_columns {
            let fine = rng.gen_range(0..fine_names.len());
            let coarse = fine_to_coarse[fine];
            let len = rng.gen_range(self.min_values..=self.max_values);
            let mut values: Vec<String> = (0..len)
                .map(|_| generate_value(&fine_names[fine], &mut rng))
                .collect();
            // Light noise: a small fraction of cells come from a different type, as in messy
            // web tables.
            if rng.gen_bool(0.2) && !values.is_empty() {
                let other = rng.gen_range(0..fine_names.len());
                let slot = rng.gen_range(0..values.len());
                values[slot] = generate_value(&fine_names[other], &mut rng);
            }
            columns.push(Column {
                name: Some(type_names[coarse].clone()),
                values,
            });
            type_labels.push(coarse);
            fine_labels.push(fine);
        }
        ColumnCorpus {
            columns,
            type_labels,
            type_names,
            fine_labels,
            fine_names,
        }
    }
}

/// A labeled column pair for training/evaluating pairwise column matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnPair {
    /// Index of the first column.
    pub left: usize,
    /// Index of the second column.
    pub right: usize,
    /// `true` when the two columns share the coarse semantic type.
    pub label: bool,
}

/// Samples `n` labeled column pairs from candidate pairs, preserving the candidate
/// positive/negative mix, and splits them train/valid/test 2:1:1 (the paper's protocol).
pub fn sample_labeled_pairs(
    corpus: &ColumnCorpus,
    candidates: &[(usize, usize)],
    n: usize,
    seed: u64,
) -> (Vec<ColumnPair>, Vec<ColumnPair>, Vec<ColumnPair>) {
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: Vec<(usize, usize)> = candidates.to_vec();
    chosen.shuffle(&mut rng);
    chosen.truncate(n);
    let pairs: Vec<ColumnPair> = chosen
        .into_iter()
        .map(|(l, r)| ColumnPair {
            left: l,
            right: r,
            label: corpus.same_type(l, r),
        })
        .collect();
    let n = pairs.len();
    let train_end = n / 2;
    let valid_end = n * 3 / 4;
    (
        pairs[..train_end].to_vec(),
        pairs[train_end..valid_end].to_vec(),
        pairs[valid_end..].to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_columns_of_every_type_and_valid_labels() {
        let corpus = ColumnProfile::default().generate(0.5, 3);
        assert!(!corpus.is_empty());
        assert!(corpus.len() >= 100);
        assert_eq!(corpus.columns.len(), corpus.type_labels.len());
        assert_eq!(corpus.columns.len(), corpus.fine_labels.len());
        for (&t, &f) in corpus.type_labels.iter().zip(&corpus.fine_labels) {
            assert!(t < corpus.type_names.len());
            assert!(f < corpus.fine_names.len());
        }
        // With 300 columns and 20 types, every coarse type should appear.
        let mut seen = vec![false; corpus.type_names.len()];
        for &t in &corpus.type_labels {
            seen[t] = true;
        }
        assert!(seen.iter().all(|&s| s), "some coarse type never generated");
    }

    #[test]
    fn same_type_matches_labels() {
        let corpus = ColumnProfile::default().generate(0.2, 5);
        for i in 0..corpus.len().min(20) {
            for j in 0..corpus.len().min(20) {
                assert_eq!(
                    corpus.same_type(i, j),
                    corpus.type_labels[i] == corpus.type_labels[j]
                );
            }
        }
    }

    #[test]
    fn serialization_uses_val_markers_and_caps_length() {
        let corpus = ColumnProfile::default().generate(0.2, 7);
        let texts = corpus.corpus(5);
        assert_eq!(texts.len(), corpus.len());
        for t in &texts {
            assert!(t.starts_with("[VAL]"));
            assert!(t.matches("[VAL]").count() <= 5);
        }
    }

    #[test]
    fn subtypes_share_coarse_type_but_differ_in_values() {
        let corpus = ColumnProfile {
            num_columns: 400,
            min_values: 10,
            max_values: 12,
        }
        .generate(1.0, 11);
        // Find a "us city" column and a "central eu city" column: same coarse type.
        let us = corpus
            .fine_names
            .iter()
            .position(|n| n == "us city")
            .unwrap();
        let eu = corpus
            .fine_names
            .iter()
            .position(|n| n == "central eu city")
            .unwrap();
        let us_col = corpus.fine_labels.iter().position(|&f| f == us);
        let eu_col = corpus.fine_labels.iter().position(|&f| f == eu);
        let (us_col, eu_col) = (
            us_col.expect("us city column"),
            eu_col.expect("eu city column"),
        );
        assert!(corpus.same_type(us_col, eu_col));
        assert_ne!(corpus.fine_labels[us_col], corpus.fine_labels[eu_col]);
        // Their value sets should be (almost) disjoint.
        let us_values: std::collections::HashSet<&String> =
            corpus.columns[us_col].values.iter().collect();
        let overlap = corpus.columns[eu_col]
            .values
            .iter()
            .filter(|v| us_values.contains(v))
            .count();
        assert!(overlap <= 2);
    }

    #[test]
    fn labeled_pair_sampling_respects_split_and_labels() {
        let corpus = ColumnProfile::default().generate(0.3, 13);
        let candidates: Vec<(usize, usize)> = (0..corpus.len() - 1).map(|i| (i, i + 1)).collect();
        let (train, valid, test) = sample_labeled_pairs(&corpus, &candidates, 100, 1);
        assert_eq!(train.len() + valid.len() + test.len(), 100);
        assert!(train.len() >= valid.len());
        for p in train.iter().chain(&valid).chain(&test) {
            assert_eq!(p.label, corpus.same_type(p.left, p.right));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ColumnProfile::default().generate(0.2, 99);
        let b = ColumnProfile::default().generate(0.2, 99);
        assert_eq!(a.columns, b.columns);
        assert_eq!(a.type_labels, b.type_labels);
    }
}
