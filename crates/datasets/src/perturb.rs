//! String perturbation utilities shared by the dataset generators.
//!
//! Matched entity entries in two sources rarely agree verbatim: one side abbreviates,
//! drops tokens, reorders words, introduces typos, or reports slightly different numeric
//! values. These helpers inject exactly those discrepancies, with a single `noise`
//! knob controlling how aggressive the perturbation is (this is what makes the
//! Walmart-Amazon-like profiles "hard" and the DBLP-ACM-like profiles "easy").

use rand::Rng;

/// Common abbreviation pairs applied during perturbation (direction chosen at random).
const ABBREVIATIONS: &[(&str, &str)] = &[
    ("deluxe", "dlux"),
    ("immersion", "immers"),
    ("professional", "pro"),
    ("incorporated", "inc"),
    ("corporation", "corp"),
    ("edition", "ed"),
    ("international", "intl"),
    ("proceedings", "proc"),
    ("conference", "conf"),
    ("journal", "j"),
    ("street", "st"),
    ("avenue", "ave"),
    ("second", "2nd"),
    ("seventh", "7th"),
    ("eighth", "8th"),
    ("memorial", "mem"),
    ("hospital", "hosp"),
    ("company", "co"),
    ("brewing", "brew"),
    ("systems", "sys"),
    ("wireless", "wi fi"),
];

/// Replaces a token with its abbreviation (or expansion) when one is known.
pub fn abbreviate(token: &str) -> Option<&'static str> {
    for (long, short) in ABBREVIATIONS {
        if token == *long {
            return Some(short);
        }
        if token == *short {
            return Some(long);
        }
    }
    None
}

/// Introduces a single character-level typo (swap, delete, or duplicate) into a token.
pub fn typo(token: &str, rng: &mut impl Rng) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() < 3 {
        return token.to_string();
    }
    let mut out = chars.clone();
    match rng.gen_range(0..3) {
        0 => {
            // swap two adjacent characters
            let i = rng.gen_range(0..out.len() - 1);
            out.swap(i, i + 1);
        }
        1 => {
            // delete a character
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        }
        _ => {
            // duplicate a character
            let i = rng.gen_range(0..out.len());
            let c = out[i];
            out.insert(i, c);
        }
    }
    out.into_iter().collect()
}

/// Perturbs free text: per token, tokens may be dropped, abbreviated, typo'd, or kept.
/// `noise` in `[0, 1]` scales every corruption probability; 0 returns the input verbatim.
pub fn perturb_text(text: &str, noise: f32, rng: &mut impl Rng) -> String {
    if noise <= 0.0 {
        return text.to_string();
    }
    let mut tokens: Vec<String> = Vec::new();
    for token in text.split_whitespace() {
        let roll: f32 = rng.gen();
        if roll < 0.25 * noise {
            continue; // drop token
        } else if roll < 0.55 * noise {
            if let Some(ab) = abbreviate(token) {
                tokens.push(ab.to_string());
                continue;
            }
            tokens.push(typo(token, rng));
        } else if roll < 0.7 * noise {
            tokens.push(typo(token, rng));
        } else {
            tokens.push(token.to_string());
        }
    }
    if tokens.is_empty() {
        // Never return an empty string: keep the first original token.
        return text.split_whitespace().next().unwrap_or("").to_string();
    }
    // Occasionally swap two adjacent tokens (word-order discrepancy between sources).
    if tokens.len() >= 2 && rng.gen::<f32>() < 0.4 * noise {
        let i = rng.gen_range(0..tokens.len() - 1);
        tokens.swap(i, i + 1);
    }
    tokens.join(" ")
}

/// Perturbs a numeric string by a relative amount of up to `max_relative`, preserving the
/// number of decimals. Non-numeric strings are returned unchanged.
pub fn perturb_number(value: &str, max_relative: f32, rng: &mut impl Rng) -> String {
    match value.parse::<f64>() {
        Err(_) => value.to_string(),
        Ok(v) => {
            let factor = 1.0 + rng.gen_range(-max_relative..=max_relative) as f64;
            let perturbed = v * factor;
            let decimals = value.split('.').nth(1).map(|d| d.len()).unwrap_or(0);
            format!("{:.*}", decimals, perturbed)
        }
    }
}

/// Reformats a value the way a second data source might (formatting-issue style error):
/// adds a percent sign to a decimal, uppercases a short code, or adds a unit suffix.
pub fn reformat(value: &str, rng: &mut impl Rng) -> String {
    if value.parse::<f64>().is_ok() {
        match rng.gen_range(0..3) {
            0 => format!("{value}%"),
            1 => format!("{value} ounce"),
            _ => format!("${value}"),
        }
    } else if value.len() <= 4 {
        value.to_uppercase()
    } else {
        let mut c = value.chars();
        match c.next() {
            Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
            None => value.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = "canon cli8c ink cartridge cyan";
        assert_eq!(perturb_text(text, 0.0, &mut rng), text);
    }

    #[test]
    fn high_noise_changes_but_never_empties_text() {
        let mut rng = StdRng::seed_from_u64(2);
        let text = "instant immersion spanish deluxe edition topics entertainment";
        let mut changed = 0;
        for _ in 0..20 {
            let p = perturb_text(text, 0.9, &mut rng);
            assert!(!p.is_empty());
            if p != text {
                changed += 1;
            }
        }
        assert!(
            changed >= 18,
            "high noise should almost always change the text"
        );
    }

    #[test]
    fn low_noise_often_keeps_text_similar() {
        let mut rng = StdRng::seed_from_u64(3);
        let text = "efficient query optimization in distributed systems";
        let mut unchanged = 0;
        for _ in 0..50 {
            if perturb_text(text, 0.05, &mut rng) == text {
                unchanged += 1;
            }
        }
        assert!(
            unchanged > 25,
            "low noise should keep most strings intact: {unchanged}/50"
        );
    }

    #[test]
    fn abbreviations_work_both_ways() {
        assert_eq!(abbreviate("deluxe"), Some("dlux"));
        assert_eq!(abbreviate("dlux"), Some("deluxe"));
        assert_eq!(abbreviate("zebra"), None);
    }

    #[test]
    fn typo_changes_long_tokens_only() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(typo("ab", &mut rng), "ab");
        let mut changed = 0;
        for _ in 0..20 {
            if typo("cartridge", &mut rng) != "cartridge" {
                changed += 1;
            }
        }
        assert!(changed >= 15);
    }

    #[test]
    fn number_perturbation_preserves_decimals_and_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let p = perturb_number("36.11", 0.1, &mut rng);
            let v: f64 = p.parse().unwrap();
            assert!(v > 30.0 && v < 42.0);
            assert_eq!(p.split('.').nth(1).unwrap().len(), 2);
        }
        assert_eq!(perturb_number("n/a", 0.1, &mut rng), "n/a");
    }

    #[test]
    fn reformat_produces_expected_patterns() {
        let mut rng = StdRng::seed_from_u64(6);
        let out = reformat("0.08", &mut rng);
        assert!(out.contains("0.08"));
        assert_ne!(out, "0.08");
        assert_eq!(reformat("ca", &mut rng), "CA");
        let long = reformat("heart failure", &mut rng);
        assert!(long.starts_with('H'));
    }
}
