//! Jaccard-based difficulty profiling of EM test sets (Table XVI / Appendix E).
//!
//! The paper splits each test set into five equal-size difficulty levels: pairs are ranked
//! so that the hardest level contains the positive pairs with the *lowest* Jaccard
//! similarity and the negative pairs with the *highest* Jaccard similarity (i.e. the pairs a
//! purely syntactic matcher gets wrong), keeping the positive rate of every level equal.

use sudowoodo_text::jaccard::jaccard_text;

use crate::em::{EmDataset, LabeledPair};

/// One difficulty level of a test set.
#[derive(Clone, Debug)]
pub struct DifficultyLevel {
    /// Level number; 1 = easiest, `num_levels` = hardest.
    pub level: usize,
    /// The pairs of this level.
    pub pairs: Vec<LabeledPair>,
    /// Jaccard range `[min, max]` of the positive pairs in this level.
    pub positive_jaccard_range: (f32, f32),
    /// Jaccard range `[min, max]` of the negative pairs in this level.
    pub negative_jaccard_range: (f32, f32),
}

/// Splits `pairs` (typically a test set) into `num_levels` difficulty levels of equal size
/// and equal positive ratio.
pub fn difficulty_levels(
    dataset: &EmDataset,
    pairs: &[LabeledPair],
    num_levels: usize,
) -> Vec<DifficultyLevel> {
    assert!(num_levels >= 1, "need at least one level");
    let jaccard_of =
        |p: &LabeledPair| jaccard_text(&dataset.table_a[p.a].text(), &dataset.table_b[p.b].text());

    // Positives: ascending Jaccard = hardest first. Negatives: descending Jaccard = hardest
    // first. Level `num_levels` takes the head of both lists.
    let mut positives: Vec<(LabeledPair, f32)> = pairs
        .iter()
        .filter(|p| p.label)
        .map(|p| (*p, jaccard_of(p)))
        .collect();
    let mut negatives: Vec<(LabeledPair, f32)> = pairs
        .iter()
        .filter(|p| !p.label)
        .map(|p| (*p, jaccard_of(p)))
        .collect();
    positives.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    negatives.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut levels = Vec::with_capacity(num_levels);
    for i in 0..num_levels {
        // i = 0 -> hardest (level number num_levels), i = num_levels-1 -> easiest (level 1)
        let pos_chunk = chunk(&positives, i, num_levels);
        let neg_chunk = chunk(&negatives, i, num_levels);
        let range = |chunk: &[(LabeledPair, f32)]| {
            if chunk.is_empty() {
                (0.0, 0.0)
            } else {
                (
                    chunk.iter().map(|(_, j)| *j).fold(f32::MAX, f32::min),
                    chunk.iter().map(|(_, j)| *j).fold(f32::MIN, f32::max),
                )
            }
        };
        let mut level_pairs: Vec<LabeledPair> = pos_chunk.iter().map(|(p, _)| *p).collect();
        level_pairs.extend(neg_chunk.iter().map(|(p, _)| *p));
        levels.push(DifficultyLevel {
            level: num_levels - i,
            pairs: level_pairs,
            positive_jaccard_range: range(&pos_chunk),
            negative_jaccard_range: range(&neg_chunk),
        });
    }
    levels
}

fn chunk<T: Clone>(items: &[T], index: usize, num_chunks: usize) -> Vec<T> {
    let n = items.len();
    let start = n * index / num_chunks;
    let end = n * (index + 1) / num_chunks;
    items[start..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::EmProfile;

    #[test]
    fn levels_partition_the_test_set_with_equal_positive_ratio() {
        let ds = EmProfile::abt_buy().generate(0.4, 19);
        let levels = difficulty_levels(&ds, &ds.test, 5);
        assert_eq!(levels.len(), 5);
        let total: usize = levels.iter().map(|l| l.pairs.len()).sum();
        assert_eq!(total, ds.test.len());
        // Level sizes within 2 of each other, positive counts within 2 of each other.
        let sizes: Vec<usize> = levels.iter().map(|l| l.pairs.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 2);
        let pos_counts: Vec<usize> = levels
            .iter()
            .map(|l| l.pairs.iter().filter(|p| p.label).count())
            .collect();
        assert!(pos_counts.iter().max().unwrap() - pos_counts.iter().min().unwrap() <= 2);
    }

    #[test]
    fn hardest_level_has_lowest_positive_and_highest_negative_jaccard() {
        let ds = EmProfile::walmart_amazon().generate(0.4, 23);
        let levels = difficulty_levels(&ds, &ds.test, 5);
        let hardest = levels.iter().find(|l| l.level == 5).unwrap();
        let easiest = levels.iter().find(|l| l.level == 1).unwrap();
        assert!(
            hardest.positive_jaccard_range.1 <= easiest.positive_jaccard_range.0 + 1e-6,
            "hardest positives should have lower Jaccard than easiest positives"
        );
        assert!(
            hardest.negative_jaccard_range.0 >= easiest.negative_jaccard_range.1 - 1e-6,
            "hardest negatives should have higher Jaccard than easiest negatives"
        );
    }

    #[test]
    fn single_level_contains_everything() {
        let ds = EmProfile::dblp_acm().generate(0.3, 29);
        let levels = difficulty_levels(&ds, &ds.test, 1);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].pairs.len(), ds.test.len());
        assert_eq!(levels[0].level, 1);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_rejected() {
        let ds = EmProfile::dblp_acm().generate(0.2, 31);
        let _ = difficulty_levels(&ds, &ds.test, 0);
    }
}
