//! The concurrent query server: one thread per connection, one batching worker.
//!
//! ## Threading model
//!
//! * An **accept thread** owns the `TcpListener` and spawns one handler thread per
//!   connection (connections are long-lived; entity-matching clients keep a socket
//!   open and stream query batches through it).
//! * Handler threads do the byte work — framing, decoding, encoding — and hand every
//!   decoded `KNN` request to the shared **batcher** instead of calling the index
//!   directly.
//! * One **join worker** drains the batcher: requests that arrived while the previous
//!   join was running are coalesced — their query batches are concatenated and
//!   answered by a *single* `knn_join` (one GEMM pass over each visited shard instead
//!   of one per request), then split back per request. Under light load the queue
//!   holds a single request and the worker degenerates to a plain call, which keeps
//!   the query-cache fingerprint of a lone repeated batch stable — exactly the case
//!   the cache exists for.
//!
//! `PING` and `STATS` answer inline on the handler thread; only `KNN` pays the
//! batcher hop. `KNN_SUBSET` — the scatter-gather frame a coordinator sends — also
//! runs inline: coalescing two different shard subsets into one join would change
//! both answers, and the query cache must not see subset joins at all (its
//! fingerprint covers queries and `k` but not the subset, so a cached subset result
//! would alias a whole-index one). Each subset request therefore pays its own join;
//! the coordinator already amortizes by scattering one large batch per replica.
//!
//! ## Survival under faults and overload
//!
//! The server is built to keep answering when things go wrong, never to hang or
//! silently drop a connection:
//!
//! * **Bounded admission** ([`ServerConfig::admission_queue_depth`]): when the
//!   batcher's queue is full, new `KNN` requests are answered immediately with a
//!   `BUSY` frame instead of queueing without bound (load shedding). The connection
//!   stays usable; clients retry after backoff.
//! * **Per-request deadlines** ([`ServerConfig::request_deadline`]): a request whose
//!   deadline passes while it waits in the queue is answered `BUSY` without running —
//!   under overload the server spends its joins on requests whose clients are still
//!   listening.
//! * **Degraded joins**: when the index quarantines unreadable shards, the response
//!   carries the degraded status byte so clients know coverage is incomplete — exact
//!   pairs, explicitly flagged, never silently wrong.
//! * **Panic containment**: the join and the request dispatch run under
//!   `catch_unwind`; a handler failure answers an error frame on the same
//!   connection instead of killing the thread and dropping the socket.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] flips a stop flag, wakes the accept thread with a loopback
//! connection, wakes the worker through its condvar, and joins everything. Handler
//! threads poll the flag between reads (sockets carry a short read timeout), so
//! shutdown completes promptly even with idle clients attached.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sudowoodo_faults as faults;
use sudowoodo_index::BlockingIndex;

use crate::protocol::{
    decode_knn_request, decode_knn_subset_request, encode_busy_response, encode_error_response,
    encode_knn_response, encode_knn_subset_response, encode_stats_response, ServerStats,
    MAX_FRAME_LEN, OP_KNN, OP_KNN_SUBSET, OP_PING, OP_STATS, STATUS_OK,
};

/// How long a handler thread blocks in a read before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server-side robustness knobs — see the module docs ("Survival under faults and
/// overload") for the behavior each one buys.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Most `KNN` requests allowed to wait in the admission queue at once; requests
    /// beyond it are answered `BUSY` immediately (load shedding). `0` sheds every
    /// request — useful only for tests.
    pub admission_queue_depth: usize,
    /// A request older than this when the join worker reaches it is answered `BUSY`
    /// without running. `None` (the default) disables deadlines.
    pub request_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission_queue_depth: 256,
            request_deadline: None,
        }
    }
}

/// What the join worker tells a handler about its request.
enum JoinReply {
    /// The join ran; `degraded` is `true` when quarantined shards were skipped.
    Done {
        pairs: Vec<(usize, usize, f32)>,
        degraded: bool,
    },
    /// The deadline expired before the join ran; answer `BUSY` (safe to retry).
    Expired,
    /// The join panicked; answer an error frame with this message.
    Failed(String),
}

/// One decoded `KNN` request waiting for the join worker.
struct Pending {
    queries: Vec<Vec<f32>>,
    k: usize,
    enqueued_at: Instant,
    reply: mpsc::Sender<JoinReply>,
}

/// The outcome of offering a request to the admission queue.
enum Admission {
    /// Queued; a [`JoinReply`] will arrive on the reply channel.
    Queued,
    /// The queue is full; the caller answers `BUSY` itself.
    Busy,
    /// The worker already exited (shutdown); the caller answers an error itself.
    Stopped,
}

/// The queue state behind the batcher's mutex. `stopped` lives under the same lock as
/// the queue so a push can never race the worker's exit: the worker marks `stopped`
/// while holding the lock, so every later push observes it and is rejected — a
/// request can never be enqueued with nobody left to answer it (which would leave its
/// handler blocked in `rx.recv()` forever and hang shutdown).
#[derive(Default)]
struct BatchQueue {
    queue: VecDeque<Pending>,
    stopped: bool,
}

/// The shared request queue between handler threads and the join worker.
struct Batcher {
    state: Mutex<BatchQueue>,
    ready: Condvar,
    depth: usize,
}

impl Batcher {
    fn new(depth: usize) -> Batcher {
        Batcher {
            state: Mutex::default(),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Offers a request to the admission queue. [`Admission::Busy`] when the queue is
    /// at depth (load shed); [`Admission::Stopped`] when the worker has already
    /// exited (server shutting down) — either way the caller answers the request
    /// itself instead of waiting for a reply that will never come.
    fn push(&self, pending: Pending) -> Admission {
        let mut state = self.state.lock().unwrap();
        if state.stopped {
            return Admission::Stopped;
        }
        if state.queue.len() >= self.depth {
            return Admission::Busy;
        }
        state.queue.push_back(pending);
        self.ready.notify_one();
        Admission::Queued
    }

    /// Blocks until at least one request is queued (or `stop` is set), then drains
    /// every queued request sharing the front request's `k` (requests with another
    /// `k` keep their order for the next round). Already-queued requests are always
    /// served before the stop flag is honoured; the empty return marks the queue
    /// `stopped` under the lock (see [`BatchQueue`]).
    fn next_group(&self, stop: &AtomicBool) -> Vec<Pending> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(front) = state.queue.front() {
                let k = front.k;
                let mut group = Vec::new();
                let mut rest = VecDeque::new();
                for pending in state.queue.drain(..) {
                    if pending.k == k {
                        group.push(pending);
                    } else {
                        rest.push_back(pending);
                    }
                }
                state.queue = rest;
                if !state.queue.is_empty() {
                    // More work behind a different k: keep the worker awake.
                    self.ready.notify_one();
                }
                return group;
            }
            if stop.load(Ordering::Relaxed) {
                state.stopped = true;
                return Vec::new();
            }
            state = self.ready.wait(state).unwrap();
        }
    }
}

/// Request counters shared across threads (surfaced through `STATS`).
#[derive(Default)]
struct Counters {
    served_requests: AtomicU64,
    batched_joins: AtomicU64,
    busy_rejections: AtomicU64,
    deadline_expirations: AtomicU64,
    degraded_joins: AtomicU64,
}

/// A running query server. Dropping the handle shuts the server down.
///
/// Spawn with [`Server::spawn`]; see the crate docs for a full example.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    index: Arc<BlockingIndex>,
    counters: Arc<Counters>,
    batcher: Arc<Batcher>,
    accept_thread: Option<JoinHandle<()>>,
    worker_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 to let the OS pick one — tests and benches do) and
    /// starts serving `index` in background threads with the default
    /// [`ServerConfig`]. The index is shared immutably; build it (or
    /// [`BlockingIndex::load_snapshot`] it) first, then serve.
    pub fn spawn(index: Arc<BlockingIndex>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Self::spawn_with_config(index, addr, ServerConfig::default())
    }

    /// [`Server::spawn`] with explicit robustness knobs (admission queue depth,
    /// per-request deadline).
    pub fn spawn_with_config(
        index: Arc<BlockingIndex>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let batcher = Arc::new(Batcher::new(config.admission_queue_depth));

        let worker_thread = {
            let (index, stop, counters, batcher) = (
                Arc::clone(&index),
                Arc::clone(&stop),
                Arc::clone(&counters),
                Arc::clone(&batcher),
            );
            std::thread::spawn(move || join_worker(&index, &stop, &counters, &batcher, config))
        };

        let accept_thread = {
            let (index, stop, counters, batcher) = (
                Arc::clone(&index),
                Arc::clone(&stop),
                Arc::clone(&counters),
                Arc::clone(&batcher),
            );
            std::thread::spawn(move || {
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Reap finished handler threads as connections come and go, so a
                    // long-lived server under short-lived clients (health checks,
                    // one-shot connections) does not accumulate dead handles.
                    handlers.retain(|h| !h.is_finished());
                    let Ok(stream) = conn else { continue };
                    let (index, stop, counters, batcher) = (
                        Arc::clone(&index),
                        Arc::clone(&stop),
                        Arc::clone(&counters),
                        Arc::clone(&batcher),
                    );
                    handlers.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, &index, &stop, &counters, &batcher);
                    }));
                }
                for handler in handlers {
                    let _ = handler.join();
                }
            })
        };

        Ok(Server {
            addr,
            stop,
            index,
            counters,
            batcher,
            accept_thread: Some(accept_thread),
            worker_thread: Some(worker_thread),
        })
    }

    /// The address the server is listening on (the resolved port when bound to 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served index (shared; useful for warming or inspecting counters).
    pub fn index(&self) -> &Arc<BlockingIndex> {
        &self.index
    }

    /// A point-in-time statistics snapshot — the same numbers a `STATS` request
    /// returns over the wire.
    pub fn stats(&self) -> ServerStats {
        build_stats(&self.index, &self.counters)
    }

    /// Stops accepting, wakes every thread, and joins them. Called by `Drop` too;
    /// calling it explicitly just makes the join point visible in the caller.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        // Wake the worker's condvar wait.
        self.batcher.ready.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.worker_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn build_stats(index: &BlockingIndex, counters: &Counters) -> ServerStats {
    let (num_shards, spilled, cache_hits, cache_misses) = match index {
        BlockingIndex::Dense(_) => (1, 0, 0, 0),
        BlockingIndex::Sharded(sharded) => {
            let report = sharded.routing_report();
            (
                sharded.num_shards() as u64,
                sharded.num_spilled_shards() as u64,
                report.cache_hits,
                report.cache_misses,
            )
        }
    };
    ServerStats {
        len: index.len() as u64,
        dim: index.dim() as u64,
        num_shards,
        spilled_shards: spilled,
        served_requests: counters.served_requests.load(Ordering::Relaxed),
        batched_joins: counters.batched_joins.load(Ordering::Relaxed),
        cache_hits,
        cache_misses,
        busy_rejections: counters.busy_rejections.load(Ordering::Relaxed),
        deadline_expirations: counters.deadline_expirations.load(Ordering::Relaxed),
        degraded_joins: counters.degraded_joins.load(Ordering::Relaxed),
    }
}

/// Runs one `knn_join_report` with panic containment: a panicking join (a poisoned
/// lock, an index bug, an injected fault escaping its retry budget) becomes an
/// error message for the requester instead of killing the worker thread — which
/// would strand every queued and future request.
fn run_join(
    index: &BlockingIndex,
    queries: &[Vec<f32>],
    k: usize,
) -> Result<sudowoodo_index::JoinOutcome, String> {
    catch_unwind(AssertUnwindSafe(|| index.knn_join_report(queries, k))).map_err(|payload| {
        let reason = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("internal error: knn_join panicked: {reason}")
    })
}

/// The join worker: coalesce queued requests, run one `knn_join`, split the results.
fn join_worker(
    index: &BlockingIndex,
    stop: &AtomicBool,
    counters: &Counters,
    batcher: &Batcher,
    config: ServerConfig,
) {
    loop {
        let group = batcher.next_group(stop);
        if group.is_empty() {
            return; // stop requested and the queue is drained
        }
        // Expire requests whose deadline passed while they waited: their client has
        // given up (or will momentarily), so running the join for them spends the
        // server's scarcest resource on nobody. They get `BUSY` — the request never
        // ran, so a retry is always safe.
        let group: Vec<Pending> = match config.request_deadline {
            None => group,
            Some(deadline) => group
                .into_iter()
                .filter_map(|pending| {
                    if pending.enqueued_at.elapsed() >= deadline {
                        counters
                            .deadline_expirations
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = pending.reply.send(JoinReply::Expired);
                        None
                    } else {
                        Some(pending)
                    }
                })
                .collect(),
        };
        // Answer cache-hitting requests individually first: merging a hit into a
        // bigger batch would change the cache fingerprint and recompute work the
        // cache already holds. Only the misses are coalesced. A lone request skips
        // the peek — `knn_join` runs its own cache lookup, so peeking here would
        // just fingerprint the batch twice. Cache entries are only ever written by
        // complete joins, so a hit is always non-degraded.
        let mut group: Vec<Pending> = if group.len() == 1 {
            group
        } else {
            group
                .into_iter()
                .filter_map(
                    |pending| match index.cached_knn_join(&pending.queries, pending.k) {
                        Some(hit) => {
                            let _ = pending.reply.send(JoinReply::Done {
                                pairs: hit,
                                degraded: false,
                            });
                            None
                        }
                        None => Some(pending),
                    },
                )
                .collect()
        };
        match group.len() {
            0 => {} // every request hit the cache (or expired)
            1 => {
                let pending = group.pop().expect("length checked");
                match run_join(index, &pending.queries, pending.k) {
                    Ok(outcome) => {
                        if outcome.degraded {
                            counters.degraded_joins.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = pending.reply.send(JoinReply::Done {
                            pairs: outcome.pairs,
                            degraded: outcome.degraded,
                        });
                    }
                    Err(message) => {
                        let _ = pending.reply.send(JoinReply::Failed(message));
                    }
                }
            }
            _ => {
                counters.batched_joins.fetch_add(1, Ordering::Relaxed);
                // Concatenate the batches, remembering each request's query range.
                let mut merged = Vec::new();
                let mut offsets = Vec::with_capacity(group.len() + 1);
                for pending in &group {
                    offsets.push(merged.len());
                    merged.extend(pending.queries.iter().cloned());
                }
                offsets.push(merged.len());
                let k = group[0].k;
                let outcome = match run_join(index, &merged, k) {
                    Ok(outcome) => outcome,
                    Err(message) => {
                        for pending in group {
                            let _ = pending.reply.send(JoinReply::Failed(message.clone()));
                        }
                        continue;
                    }
                };
                if outcome.degraded {
                    counters.degraded_joins.fetch_add(1, Ordering::Relaxed);
                }
                let pairs = outcome.pairs;
                // `knn_join` output is ordered by query index, so one forward walk
                // splits it; subtracting the offset restores request-local indices.
                let mut cursor = 0;
                for (i, pending) in group.into_iter().enumerate() {
                    let (lo, hi) = (offsets[i], offsets[i + 1]);
                    let mut own = Vec::new();
                    while cursor < pairs.len() && pairs[cursor].0 < hi {
                        let (q, id, score) = pairs[cursor];
                        own.push((q - lo, id, score));
                        cursor += 1;
                    }
                    // Cache the split under ITS OWN fingerprint: clients repeat their
                    // individual batches, not whatever combination this merge was, so
                    // the merged-batch entry alone would never serve them. Degraded
                    // splits are never cached — a cache entry must stay exact.
                    if !outcome.degraded {
                        index.cache_join_result(&pending.queries, k, own.clone());
                    }
                    let _ = pending.reply.send(JoinReply::Done {
                        pairs: own,
                        degraded: outcome.degraded,
                    });
                }
            }
        }
    }
}

/// Reads exactly `buf.len()` bytes, retrying across read-timeout polls so a frame is
/// never torn by the stop-flag poll. Returns `false` on a clean EOF **before any byte
/// of this read** (client closed between frames); mid-buffer EOF is an error.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return Err(io::ErrorKind::Interrupted.into());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Writes all of `buf`, retrying across write-timeout polls (mirroring [`read_full`])
/// so a stalled client — one that stops reading until the TCP send buffer fills —
/// cannot block the handler past shutdown. Progress is tracked byte-exactly, so a
/// timeout mid-frame resumes where it left off instead of tearing the stream.
fn write_full(stream: &mut TcpStream, buf: &[u8], stop: &AtomicBool) -> io::Result<()> {
    // Chaos hook: `serve.write.stall` simulates a slow/stuck peer by delaying the
    // write path. The stall (25 ms) is well under the write-timeout poll, so it
    // exercises latency and interleaving without tearing any frame.
    if faults::fires("serve.write.stall") {
        std::thread::sleep(Duration::from_millis(25));
    }
    let mut sent = 0;
    while sent < buf.len() {
        match stream.write(&buf[sent..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => sent += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return Err(io::ErrorKind::Interrupted.into());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes one response frame (length prefix + payload) through [`write_full`].
fn write_response(stream: &mut TcpStream, payload: &[u8], stop: &AtomicBool) -> io::Result<()> {
    write_full(stream, &(payload.len() as u32).to_le_bytes(), stop)?;
    write_full(stream, payload, stop)
}

/// One connection's request loop.
fn handle_connection(
    mut stream: TcpStream,
    index: &BlockingIndex,
    stop: &AtomicBool,
    counters: &Counters,
    batcher: &Batcher,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true).ok(); // latency over throughput for small frames
    let mut writer = stream.try_clone()?;
    loop {
        let mut len_bytes = [0u8; 4];
        if !read_full(&mut stream, &mut len_bytes, stop)? {
            return Ok(()); // clean disconnect
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            // The stream is unrecoverable (we cannot skip what we will not buffer):
            // answer and drop the connection.
            let msg = format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit");
            let _ = write_response(&mut writer, &encode_error_response(&msg), stop);
            return Err(io::ErrorKind::InvalidData.into());
        }
        let mut payload = vec![0u8; len as usize];
        if !read_full(&mut stream, &mut payload, stop)? {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        counters.served_requests.fetch_add(1, Ordering::Relaxed);
        // A panic anywhere in decode/dispatch answers an error frame on the same
        // connection instead of unwinding the handler thread (which would drop the
        // socket with responses owed on it).
        let response = catch_unwind(AssertUnwindSafe(|| {
            dispatch(&payload, index, counters, batcher)
        }))
        .unwrap_or_else(|_| encode_error_response("internal error: request handler panicked"));
        write_response(&mut writer, &response, stop)?;
    }
}

/// Decodes and answers one request payload; all failures become error responses.
fn dispatch(
    payload: &[u8],
    index: &BlockingIndex,
    counters: &Counters,
    batcher: &Batcher,
) -> Vec<u8> {
    match payload.first() {
        Some(&OP_KNN) => match decode_knn_request(&payload[1..]) {
            Ok((queries, k)) => {
                let dim = queries.first().map_or(0, Vec::len);
                if !queries.is_empty() && !index.is_empty() && dim != index.dim() {
                    return encode_error_response(&format!(
                        "query dimension {dim} does not match the index dimension {}",
                        index.dim()
                    ));
                }
                // A protocol-legal request can still imply a response frame over the
                // protocol limit (pairs = queries x min(k, corpus)); bound it here so
                // the response encoder never produces an unsendable frame.
                let response_bytes = queries
                    .len()
                    .saturating_mul(k.min(index.len()))
                    .saturating_mul(16)
                    .saturating_add(5);
                if response_bytes > MAX_FRAME_LEN as usize {
                    return encode_error_response(&format!(
                        "response would be {response_bytes} bytes, over the \
                         {MAX_FRAME_LEN}-byte frame limit; send fewer queries per \
                         batch or a smaller k"
                    ));
                }
                let (tx, rx) = mpsc::channel();
                match batcher.push(Pending {
                    queries,
                    k,
                    enqueued_at: Instant::now(),
                    reply: tx,
                }) {
                    Admission::Queued => {}
                    Admission::Busy => {
                        counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        return encode_busy_response();
                    }
                    Admission::Stopped => {
                        return encode_error_response("server shutting down");
                    }
                }
                match rx.recv() {
                    Ok(JoinReply::Done { pairs, degraded }) => {
                        encode_knn_response(&pairs, degraded)
                    }
                    Ok(JoinReply::Expired) => encode_busy_response(),
                    Ok(JoinReply::Failed(message)) => encode_error_response(&message),
                    Err(_) => encode_error_response("server shutting down"),
                }
            }
            Err(message) => encode_error_response(&message),
        },
        Some(&OP_KNN_SUBSET) => match decode_knn_subset_request(&payload[1..]) {
            Ok((queries, k, shards)) => {
                let dim = queries.first().map_or(0, Vec::len);
                if !queries.is_empty() && !index.is_empty() && dim != index.dim() {
                    return encode_error_response(&format!(
                        "query dimension {dim} does not match the index dimension {}",
                        index.dim()
                    ));
                }
                let num_shards = index.num_shards();
                if let Some(&bad) = shards.iter().find(|&&s| s >= num_shards) {
                    return encode_error_response(&format!(
                        "shard position {bad} is out of range: the served snapshot has \
                         {num_shards} shards (is the coordinator's placement built from \
                         a different snapshot epoch?)"
                    ));
                }
                let response_bytes = queries
                    .len()
                    .saturating_mul(k.min(index.len()))
                    .saturating_mul(16)
                    .saturating_add(shards.len().saturating_mul(4))
                    .saturating_add(9);
                if response_bytes > MAX_FRAME_LEN as usize {
                    return encode_error_response(&format!(
                        "response would be {response_bytes} bytes, over the \
                         {MAX_FRAME_LEN}-byte frame limit; send fewer queries per \
                         batch or a smaller k"
                    ));
                }
                // Chaos hook: `serve.subset.stall` wedges the scatter-gather path
                // long enough (1 s) to trip a coordinator's read timeout, so failover
                // tests can prove a stalled replica is routed around — unlike
                // `serve.write.stall`, whose 25 ms is deliberate sub-timeout jitter.
                if faults::fires("serve.subset.stall") {
                    std::thread::sleep(Duration::from_millis(1000));
                }
                let outcome = index.knn_join_subset_report(&queries, k, &shards);
                if outcome.degraded {
                    counters.degraded_joins.fetch_add(1, Ordering::Relaxed);
                }
                encode_knn_subset_response(&outcome.pairs, &outcome.quarantined_shards)
            }
            Err(message) => encode_error_response(&message),
        },
        Some(&OP_PING) => vec![STATUS_OK],
        Some(&OP_STATS) => encode_stats_response(&build_stats(index, counters)),
        Some(&other) => encode_error_response(&format!("unknown opcode {other:#04x}")),
        None => encode_error_response("empty request payload"),
    }
}
