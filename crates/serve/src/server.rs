//! The concurrent query server: a fixed pool of readiness-polled I/O workers plus
//! one batching join worker.
//!
//! ## Threading model
//!
//! * A fixed pool of **I/O workers** ([`ServerConfig::worker_threads`]; default one
//!   per core, capped at 4) multiplexes every connection over non-blocking sockets
//!   with `poll(2)` (the [`crate::reactor`] wrapper). Worker 0 also owns the
//!   `TcpListener` and deals accepted connections round-robin across the pool. An
//!   idle connection is a parked descriptor: it costs **zero wakeups** and no
//!   thread, so connection count no longer bounds thread count. (The previous model
//!   spent one thread per connection, each waking ten times a second to poll the
//!   stop flag — a core's worth of timer churn well before 10k idle sockets.)
//! * Each worker runs the byte work — framing, decoding, encoding — as a
//!   per-connection state machine and hands every decoded `KNN` request to the
//!   shared **batcher** instead of calling the index directly; the connection
//!   parks (its read side goes quiet) until the reply comes back through the
//!   worker's inbox.
//! * One **join worker** drains the batcher: requests that arrived while the
//!   previous join was running are coalesced — their query batches are
//!   concatenated and answered by a *single* `knn_join` (one GEMM pass over each
//!   visited shard instead of one per request), then split back per request. Under
//!   light load the queue holds a single request and the worker degenerates to a
//!   plain call, which keeps the query-cache fingerprint of a lone repeated batch
//!   stable — exactly the case the cache exists for.
//!
//! `PING` and `STATS` answer inline on the I/O worker; only `KNN` pays the batcher
//! hop. `KNN_SUBSET` — the scatter-gather frame a coordinator sends — also runs on
//! the join worker, but as its own never-coalesced join that bypasses the
//! admission queue and deadlines: coalescing two different shard subsets into one
//! join would change both answers, and the query cache must not see subset joins
//! at all (its fingerprint covers queries and `k` but not the subset, so a cached
//! subset result would alias a whole-index one). Each subset request therefore
//! pays its own join; the coordinator already amortizes by scattering one large
//! batch per replica.
//!
//! ## Model requests (`EMBED` / `MATCH`)
//!
//! A server spawned with [`Server::spawn_with_model`] also owns a trained
//! [`ModelBackend`] and answers `EMBED` and `MATCH` frames. Model requests run on
//! the join worker too (encoder inference is the same scarce compute as a join),
//! subject to the admission queue and per-request deadlines like `KNN`, but they
//! are **never coalesced and never cached**:
//!
//! * No coalescing — served answers must be bit-identical to calling the model
//!   in-process on the same batch, and the model chunks each batch internally
//!   (`embed_all` by 64 texts, `predict_scores` by 32 pairs). Concatenating two
//!   clients' batches would move those chunk boundaries and change low-order bits.
//!   Each request keeps its own batch; clients amortize by batching client-side,
//!   exactly like `KNN`.
//! * No caching — the query cache fingerprints `f32` query batches for the
//!   *index*; model outputs would alias nothing and stale nothing. The model is
//!   immutable for the server's lifetime, so callers can cache client-side freely.
//!
//! A server without a model answers both opcodes with a typed error (the
//! connection stays usable). A `MATCH` batch whose sides differ in length is
//! protocol-legal but semantically broken — it is rejected with a typed error at
//! dispatch, before it can reach the model.
//!
//! ## Live index republish
//!
//! [`Server::publish_index`] atomically replaces the served index — the
//! streaming-dedup path: a writer process `add_batch`es new records onto a loaded
//! base snapshot, saves a delta snapshot, and the serving process cold-loads the
//! delta and publishes it. In-flight requests finish against whichever index they
//! started with (each join loads the current `Arc` once); later requests see the
//! new epoch. The query cache travels *inside* the index value, so a publish can
//! never serve pre-delta cache entries: the new index arrives with its own cache,
//! and the old one is dropped with the old index.
//!
//! ## Writes and slow clients
//!
//! Responses queue on the connection's outbox and drain as `POLLOUT` readiness
//! allows. A slow-but-alive client draining a large frame is fine: the write-stall
//! budget ([`ServerConfig::write_stall_timeout`]) resets on every partial write,
//! so only a **total** stall — bytes pending and no progress for the whole budget
//! — closes the connection. (The previous model reused the 100 ms read-poll as the
//! write timeout, so a client legitimately taking its time over a near-64 MiB
//! frame kept eating timeouts that only total stall should cause.)
//!
//! ## Survival under faults and overload
//!
//! The server is built to keep answering when things go wrong, never to hang or
//! silently drop a connection:
//!
//! * **Bounded admission** ([`ServerConfig::admission_queue_depth`]): when the
//!   batcher's queue is full, new `KNN` requests are answered immediately with a
//!   `BUSY` frame instead of queueing without bound (load shedding). The connection
//!   stays usable; clients retry after backoff.
//! * **Per-request deadlines** ([`ServerConfig::request_deadline`]): a request whose
//!   deadline passes while it waits in the queue is answered `BUSY` without running —
//!   under overload the server spends its joins on requests whose clients are still
//!   listening.
//! * **Degraded joins**: when the index quarantines unreadable shards, the response
//!   carries the degraded status byte so clients know coverage is incomplete — exact
//!   pairs, explicitly flagged, never silently wrong.
//! * **Panic containment**: the join and the request dispatch run under
//!   `catch_unwind`; a handler failure answers an error frame on the same
//!   connection instead of killing a worker (which would drop every connection that
//!   worker multiplexes).
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops the join worker first — already-queued requests are
//! still served and their replies delivered — then stops the I/O workers through
//! their [`crate::reactor::Waker`]s, flushes whatever the sockets will take, and
//! joins every thread. No connect-to-own-address tricks: the old accept thread was
//! woken by dialing the listen address, which can never reach a wildcard bind like
//! `0.0.0.0:port` without routing help, wedging shutdown; wakers work for any bind
//! address.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sudowoodo_faults as faults;
use sudowoodo_index::BlockingIndex;

use crate::model::ModelBackend;
use crate::protocol::{Request, Response, ServerStats, MAX_FRAME_LEN};
use crate::reactor::{poll_fds, PollFd, Waker, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

/// Above this, a drained outbox gives its buffer back to the allocator instead of
/// keeping a response-sized allocation pinned per idle connection.
const OUTBOX_KEEP: usize = 256 * 1024;

/// Server-side robustness knobs — see the module docs ("Survival under faults and
/// overload") for the behavior each one buys.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Most `KNN` requests allowed to wait in the admission queue at once; requests
    /// beyond it are answered `BUSY` immediately (load shedding). `0` sheds every
    /// request — useful only for tests.
    pub admission_queue_depth: usize,
    /// A request older than this when the join worker reaches it is answered `BUSY`
    /// without running. `None` (the default) disables deadlines.
    pub request_deadline: Option<Duration>,
    /// How many I/O worker threads multiplex the connections. `0` (the default)
    /// sizes the pool automatically: one per available core, capped at 4 — the
    /// byte work is cheap, so a few workers saturate well before the join does.
    pub worker_threads: usize,
    /// A connection with response bytes pending that makes **no** write progress
    /// for this long is dropped. Partial writes reset the budget, so a slow reader
    /// draining a large frame is never punished — only a total stall is.
    pub write_stall_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission_queue_depth: 256,
            request_deadline: None,
            worker_threads: 0,
            write_stall_timeout: Duration::from_secs(30),
        }
    }
}

/// The served index behind a swap lock: readers clone the current `Arc` (held for
/// the duration of one join, never across a wait), and [`Server::publish_index`]
/// replaces it. The query cache lives inside the index value, so a swap retires
/// the old cache with the old epoch — stale pre-delta entries are unreachable by
/// construction.
struct ServedIndex(RwLock<Arc<BlockingIndex>>);

impl ServedIndex {
    fn current(&self) -> Arc<BlockingIndex> {
        Arc::clone(&self.0.read().unwrap())
    }

    fn publish(&self, next: Arc<BlockingIndex>) {
        *self.0.write().unwrap() = next;
    }
}

/// What the join worker tells an I/O worker about a `KNN` request.
enum JoinReply {
    /// The join ran; `degraded` is `true` when quarantined shards were skipped.
    Done {
        pairs: Vec<(usize, usize, f32)>,
        degraded: bool,
    },
    /// The deadline expired before the join ran; answer `BUSY` (safe to retry).
    Expired,
    /// The join panicked; answer an error frame with this message.
    Failed(String),
}

/// Where a response goes when the join worker finishes: back to the owning I/O
/// worker's inbox, keyed by connection token, with a waker kick.
struct ReplyHandle {
    worker: Arc<WorkerShared>,
    token: ConnToken,
}

impl ReplyHandle {
    /// Encodes a join reply and delivers it (see [`ReplyHandle::send_raw`]).
    fn send(&self, reply: JoinReply) {
        let response = match reply {
            JoinReply::Done { pairs, degraded } => Response::Knn { pairs, degraded },
            JoinReply::Expired => Response::Busy,
            JoinReply::Failed(message) => Response::Error(message),
        };
        self.send_raw(response.encode());
    }

    /// Queues an already-encoded response on the owning worker's inbox and wakes
    /// it. If the connection died meanwhile, the worker drops the response by
    /// token mismatch — delivery is always safe, never blocking.
    fn send_raw(&self, response: Vec<u8>) {
        self.worker
            .inbox
            .lock()
            .unwrap()
            .completed
            .push((self.token, response));
        self.worker.waker.wake();
    }
}

/// One decoded `KNN` request waiting for the join worker.
struct Pending {
    queries: Vec<Vec<f32>>,
    k: usize,
    enqueued_at: Instant,
    reply: ReplyHandle,
}

/// One decoded `KNN_SUBSET` request waiting for the join worker. Subsets skip the
/// admission queue and deadlines (PR 6 contract: the coordinator applies its own
/// retry/failover policy) and are never coalesced or cached.
struct SubsetPending {
    queries: Vec<Vec<f32>>,
    k: usize,
    shards: Vec<usize>,
    reply: ReplyHandle,
}

/// The model half of a queued `EMBED`/`MATCH` request.
enum ModelTask {
    /// Encode these texts ([`ModelBackend::embed`]).
    Embed(Vec<String>),
    /// Score these aligned pairs ([`ModelBackend::match_scores`]); dispatch
    /// guarantees the sides are the same length.
    Match {
        lefts: Vec<String>,
        rights: Vec<String>,
    },
}

/// One decoded `EMBED`/`MATCH` request waiting for the join worker. Model tasks
/// share the admission queue and deadlines with `KNN` (they compete for the same
/// compute) but are never coalesced or cached — see the module docs.
struct TaskPending {
    task: ModelTask,
    enqueued_at: Instant,
    reply: ReplyHandle,
}

/// The outcome of offering a request to the admission queue.
enum Admission {
    /// Queued; a [`JoinReply`] will arrive through the reply handle.
    Queued,
    /// The queue is full; the caller answers `BUSY` itself.
    Busy,
    /// The worker already exited (shutdown); the caller answers an error itself.
    Stopped,
}

/// What the join worker picked up next.
enum Work {
    /// A same-`k` group of `KNN` requests to coalesce.
    Group(Vec<Pending>),
    /// One scatter-gather subset join (never grouped).
    Subset(SubsetPending),
    /// One model task (never grouped — coalescing would move the model's internal
    /// chunk boundaries and break bit-identity with in-process inference).
    Task(TaskPending),
    /// Stop requested and every queue is drained.
    Shutdown,
}

/// The queue state behind the batcher's mutex. `stopped` lives under the same lock as
/// the queues so a push can never race the worker's exit: the worker marks `stopped`
/// while holding the lock, so every later push observes it and is rejected — a
/// request can never be enqueued with nobody left to answer it (which would leave its
/// connection parked forever waiting for a reply).
#[derive(Default)]
struct BatchQueue {
    queue: VecDeque<Pending>,
    subsets: VecDeque<SubsetPending>,
    tasks: VecDeque<TaskPending>,
    stopped: bool,
}

/// The shared request queue between I/O workers and the join worker.
struct Batcher {
    state: Mutex<BatchQueue>,
    ready: Condvar,
    depth: usize,
}

impl Batcher {
    fn new(depth: usize) -> Batcher {
        Batcher {
            state: Mutex::default(),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Offers a request to the admission queue. [`Admission::Busy`] when the queue is
    /// at depth (load shed); [`Admission::Stopped`] when the worker has already
    /// exited (server shutting down) — either way the caller answers the request
    /// itself instead of waiting for a reply that will never come.
    fn push(&self, pending: Pending) -> Admission {
        let mut state = self.state.lock().unwrap();
        if state.stopped {
            return Admission::Stopped;
        }
        if state.queue.len() >= self.depth {
            return Admission::Busy;
        }
        state.queue.push_back(pending);
        self.ready.notify_one();
        Admission::Queued
    }

    /// Offers a subset join. Not admission-limited (the coordinator owns retry
    /// policy); `false` only when the worker already exited.
    fn push_subset(&self, pending: SubsetPending) -> bool {
        let mut state = self.state.lock().unwrap();
        if state.stopped {
            return false;
        }
        state.subsets.push_back(pending);
        self.ready.notify_one();
        true
    }

    /// Offers a model task to the admission queue. Tasks share the `KNN` depth
    /// budget — they compete for the same join-worker compute, so under overload
    /// both shed the same way.
    fn push_task(&self, pending: TaskPending) -> Admission {
        let mut state = self.state.lock().unwrap();
        if state.stopped {
            return Admission::Stopped;
        }
        if state.queue.len() + state.tasks.len() >= self.depth {
            return Admission::Busy;
        }
        state.tasks.push_back(pending);
        self.ready.notify_one();
        Admission::Queued
    }

    /// Blocks until work is queued (or `stop` is set). Subset joins are served
    /// first — they sit on a coordinator's critical path — then model tasks (one
    /// at a time, never grouped), then every queued `KNN` request sharing the
    /// front request's `k` is drained as one group (requests with another `k`
    /// keep their order for the next round). Already-queued work is always served
    /// before the stop flag is honoured; [`Work::Shutdown`] marks the queue
    /// `stopped` under the lock (see [`BatchQueue`]).
    fn next_work(&self, stop: &AtomicBool) -> Work {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(subset) = state.subsets.pop_front() {
                if !state.subsets.is_empty() || !state.tasks.is_empty() || !state.queue.is_empty() {
                    // More work behind this one: keep the worker awake.
                    self.ready.notify_one();
                }
                return Work::Subset(subset);
            }
            if let Some(task) = state.tasks.pop_front() {
                if !state.tasks.is_empty() || !state.queue.is_empty() {
                    self.ready.notify_one();
                }
                return Work::Task(task);
            }
            if let Some(front) = state.queue.front() {
                let k = front.k;
                let mut group = Vec::new();
                let mut rest = VecDeque::new();
                for pending in state.queue.drain(..) {
                    if pending.k == k {
                        group.push(pending);
                    } else {
                        rest.push_back(pending);
                    }
                }
                state.queue = rest;
                if !state.queue.is_empty() {
                    // More work behind a different k: keep the worker awake.
                    self.ready.notify_one();
                }
                return Work::Group(group);
            }
            if stop.load(Ordering::Relaxed) {
                state.stopped = true;
                return Work::Shutdown;
            }
            state = self.ready.wait(state).unwrap();
        }
    }
}

/// Request counters shared across threads (surfaced through `STATS`).
#[derive(Default)]
struct Counters {
    served_requests: AtomicU64,
    batched_joins: AtomicU64,
    busy_rejections: AtomicU64,
    deadline_expirations: AtomicU64,
    degraded_joins: AtomicU64,
}

/// Identifies a connection slot on one worker across its lifetime: the generation
/// guards against slot reuse, so a reply addressed to a connection that died (and
/// whose slot now holds a newcomer) is dropped instead of delivered to a stranger.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ConnToken {
    slot: usize,
    gen: u64,
}

/// Cross-thread mailbox of one I/O worker: connections dealt to it by the
/// acceptor, and finished responses from the join worker. Both arrive with a
/// waker kick so the worker's `poll` returns.
#[derive(Default)]
struct WorkerInbox {
    adopted: Vec<TcpStream>,
    completed: Vec<(ConnToken, Vec<u8>)>,
}

/// The shared half of one I/O worker (the waker any thread may kick, plus the
/// inbox behind a mutex).
struct WorkerShared {
    waker: Waker,
    inbox: Mutex<WorkerInbox>,
}

/// Everything one I/O worker thread needs. Only worker 0 holds the listener and
/// the peer ring it deals new connections across.
struct WorkerCtx {
    shared: Arc<WorkerShared>,
    peers: Vec<Arc<WorkerShared>>,
    listener: Option<TcpListener>,
    index: Arc<ServedIndex>,
    model: Option<Arc<dyn ModelBackend>>,
    counters: Arc<Counters>,
    batcher: Arc<Batcher>,
    reactor_stop: Arc<AtomicBool>,
    config: ServerConfig,
}

/// Read-side state of one connection's frame parser.
enum ReadState {
    /// Accumulating the 4-byte length prefix.
    Len { buf: [u8; 4], filled: usize },
    /// Accumulating the payload (`buf.len()` is the frame length).
    Payload { buf: Vec<u8>, filled: usize },
}

impl ReadState {
    fn start() -> ReadState {
        ReadState::Len {
            buf: [0u8; 4],
            filled: 0,
        }
    }
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    gen: u64,
    read: ReadState,
    /// Encoded response bytes not yet accepted by the socket (`sent..` is pending).
    outbox: Vec<u8>,
    sent: usize,
    /// A `KNN`/`KNN_SUBSET` request is at the join worker; reads pause until the
    /// reply lands (the wire protocol is strictly request/reply per connection).
    awaiting: bool,
    /// Close once the outbox drains (set after an unrecoverable protocol error).
    closing: bool,
    /// Last instant the socket accepted bytes (or the outbox became non-empty);
    /// drives the progress-based write-stall kill.
    last_progress: Instant,
}

/// What a poll registration entry maps back to.
enum Target {
    Waker,
    Listener,
    Conn(usize),
}

/// What dispatch decided for one request frame.
enum Action {
    /// Answer immediately with this response payload.
    Respond(Vec<u8>),
    /// The request went to the join worker; the reply arrives via the inbox.
    AwaitReply,
}

/// A running query server. Dropping the handle shuts the server down.
///
/// Spawn with [`Server::spawn`]; see the crate docs for a full example.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    reactor_stop: Arc<AtomicBool>,
    index: Arc<ServedIndex>,
    counters: Arc<Counters>,
    batcher: Arc<Batcher>,
    workers: Vec<Arc<WorkerShared>>,
    worker_threads: Vec<JoinHandle<()>>,
    join_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 to let the OS pick one — tests and benches do) and
    /// starts serving `index` in background threads with the default
    /// [`ServerConfig`]. The index is shared immutably; build it (or
    /// [`BlockingIndex::load_snapshot`] it) first, then serve.
    pub fn spawn(index: Arc<BlockingIndex>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Self::spawn_with_config(index, addr, ServerConfig::default())
    }

    /// [`Server::spawn`] with explicit robustness knobs (admission queue depth,
    /// per-request deadline, worker pool size, write-stall budget).
    pub fn spawn_with_config(
        index: Arc<BlockingIndex>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Self::spawn_inner(index, None, addr, config)
    }

    /// [`Server::spawn_with_config`] plus a trained [`ModelBackend`], enabling the
    /// `EMBED` and `MATCH` request paths (a server spawned without one answers
    /// those opcodes with a typed error). Load the model the same way as the
    /// index: train once, snapshot, and have every serving process cold-load the
    /// same artifact so served answers are bit-identical across replicas.
    pub fn spawn_with_model(
        index: Arc<BlockingIndex>,
        model: Arc<dyn ModelBackend>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Self::spawn_inner(index, Some(model), addr, config)
    }

    fn spawn_inner(
        index: Arc<BlockingIndex>,
        model: Option<Arc<dyn ModelBackend>>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let reactor_stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let batcher = Arc::new(Batcher::new(config.admission_queue_depth));
        let index = Arc::new(ServedIndex(RwLock::new(index)));

        let pool = if config.worker_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 4)
        } else {
            config.worker_threads
        };
        let mut workers = Vec::with_capacity(pool);
        for _ in 0..pool {
            workers.push(Arc::new(WorkerShared {
                waker: Waker::new()?,
                inbox: Mutex::default(),
            }));
        }

        let join_thread = {
            let (index, model, stop, counters, batcher) = (
                Arc::clone(&index),
                model.clone(),
                Arc::clone(&stop),
                Arc::clone(&counters),
                Arc::clone(&batcher),
            );
            std::thread::spawn(move || {
                join_worker(&index, model.as_ref(), &stop, &counters, &batcher, config)
            })
        };

        let mut listener = Some(listener);
        let mut worker_threads = Vec::with_capacity(pool);
        for (i, shared) in workers.iter().enumerate() {
            let ctx = WorkerCtx {
                shared: Arc::clone(shared),
                peers: if i == 0 { workers.clone() } else { Vec::new() },
                listener: if i == 0 { listener.take() } else { None },
                index: Arc::clone(&index),
                model: model.clone(),
                counters: Arc::clone(&counters),
                batcher: Arc::clone(&batcher),
                reactor_stop: Arc::clone(&reactor_stop),
                config,
            };
            worker_threads.push(std::thread::spawn(move || worker_loop(ctx)));
        }

        Ok(Server {
            addr,
            stop,
            reactor_stop,
            index,
            counters,
            batcher,
            workers,
            worker_threads,
            join_thread: Some(join_thread),
        })
    }

    /// The address the server is listening on (the resolved port when bound to 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served index (shared; useful for warming or inspecting counters).
    /// Returns the *currently published* index — after a
    /// [`Server::publish_index`] this is the new epoch.
    pub fn index(&self) -> Arc<BlockingIndex> {
        self.index.current()
    }

    /// Atomically replaces the served index — the streaming-dedup publish step:
    /// load the delta snapshot cold in this process, then publish it here. Later
    /// requests (including cache lookups) run against the new epoch; requests
    /// already executing finish against the epoch they started with. The query
    /// cache is part of the index value, so the old epoch's entries can never
    /// leak into the new one.
    ///
    /// The new index must have the same dimensionality, and — when a coordinator
    /// scatters to this server — the same shard geometry as the one it replaces;
    /// the server does not re-handshake connected clients.
    pub fn publish_index(&self, next: Arc<BlockingIndex>) {
        self.index.publish(next);
    }

    /// A point-in-time statistics snapshot — the same numbers a `STATS` request
    /// returns over the wire.
    pub fn stats(&self) -> ServerStats {
        build_stats(&self.index.current(), &self.counters)
    }

    /// Stops accepting, wakes every thread, and joins them. Called by `Drop` too;
    /// calling it explicitly just makes the join point visible in the caller.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // Stage 1: stop the join worker. It serves everything already queued —
        // delivering those replies to the (still running) I/O workers — then marks
        // the queue stopped and exits.
        self.stop.store(true, Ordering::Relaxed);
        self.batcher.ready.notify_all();
        if let Some(t) = self.join_thread.take() {
            let _ = t.join();
        }
        // Stage 2: stop the I/O workers. Every reply is already in an inbox, so
        // the final pass can flush best-effort and close. Wakers reach a worker on
        // any bind address — no connect-to-own-address trick (which a `0.0.0.0`
        // bind would wedge on).
        self.reactor_stop.store(true, Ordering::Relaxed);
        for worker in &self.workers {
            worker.waker.wake();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn build_stats(index: &BlockingIndex, counters: &Counters) -> ServerStats {
    let (num_shards, spilled, cache_hits, cache_misses) = match index {
        BlockingIndex::Dense(_) => (1, 0, 0, 0),
        BlockingIndex::Sharded(sharded) => {
            let report = sharded.routing_report();
            (
                sharded.num_shards() as u64,
                sharded.num_spilled_shards() as u64,
                report.cache_hits,
                report.cache_misses,
            )
        }
    };
    ServerStats {
        len: index.len() as u64,
        dim: index.dim() as u64,
        num_shards,
        spilled_shards: spilled,
        served_requests: counters.served_requests.load(Ordering::Relaxed),
        batched_joins: counters.batched_joins.load(Ordering::Relaxed),
        cache_hits,
        cache_misses,
        busy_rejections: counters.busy_rejections.load(Ordering::Relaxed),
        deadline_expirations: counters.deadline_expirations.load(Ordering::Relaxed),
        degraded_joins: counters.degraded_joins.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// I/O workers
// ---------------------------------------------------------------------------

/// One I/O worker: poll every owned socket, accept (worker 0), read and dispatch
/// frames, flush outboxes, deliver join replies, and enforce write-stall kills.
fn worker_loop(ctx: WorkerCtx) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut next_peer: usize = 0;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut targets: Vec<Target> = Vec::new();

    loop {
        if ctx.reactor_stop.load(Ordering::Relaxed) {
            shutdown_flush(&ctx, &mut conns);
            return;
        }

        fds.clear();
        targets.clear();
        fds.push(PollFd::new(ctx.shared.waker.read_fd(), POLLIN));
        targets.push(Target::Waker);
        if let Some(listener) = &ctx.listener {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
            targets.push(Target::Listener);
        }
        let mut timeout: Option<Duration> = None;
        for (slot, entry) in conns.iter().enumerate() {
            let Some(conn) = entry else { continue };
            let mut events = 0i16;
            if !conn.awaiting && !conn.closing {
                events |= POLLIN;
            }
            if conn.sent < conn.outbox.len() {
                events |= POLLOUT;
                // Wake in time to enforce the stall budget even if the socket
                // never becomes writable.
                let left = ctx
                    .config
                    .write_stall_timeout
                    .saturating_sub(conn.last_progress.elapsed());
                timeout = Some(timeout.map_or(left, |t| t.min(left)));
            }
            // events == 0 still reports POLLERR/POLLHUP/POLLNVAL: a parked
            // connection (awaiting a join reply) costs no read wakeups but a dead
            // peer is still noticed.
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            targets.push(Target::Conn(slot));
        }
        if poll_fds(&mut fds, timeout).is_err() {
            // We own every registered fd, so this is unexpected; back off rather
            // than spin on a persistent error.
            std::thread::sleep(Duration::from_millis(5));
        }

        for (i, target) in targets.iter().enumerate() {
            let revents = fds[i].revents;
            if revents == 0 {
                continue;
            }
            match target {
                Target::Waker => ctx.shared.waker.drain(),
                Target::Listener => {
                    accept_ready(&ctx, &mut conns, &mut free, &mut next_gen, &mut next_peer)
                }
                Target::Conn(slot) => {
                    conn_events(&ctx, &mut conns, &mut free, *slot, revents);
                }
            }
        }

        // Drain the inbox every pass, not only on a waker event: a wake landing
        // between poll and drain is then handled now instead of next pass.
        let (adopted, completed) = {
            let mut inbox = ctx.shared.inbox.lock().unwrap();
            (
                std::mem::take(&mut inbox.adopted),
                std::mem::take(&mut inbox.completed),
            )
        };
        for stream in adopted {
            register_conn(&mut conns, &mut free, &mut next_gen, stream);
        }
        for (token, response) in completed {
            deliver(&mut conns, &mut free, token, response);
        }

        // Progress-based write-stall enforcement: only a connection with bytes
        // pending AND zero progress for the whole budget is dropped.
        for slot in 0..conns.len() {
            let stalled = match &conns[slot] {
                Some(conn) => {
                    conn.sent < conn.outbox.len()
                        && conn.last_progress.elapsed() >= ctx.config.write_stall_timeout
                }
                None => false,
            };
            if stalled {
                close_conn(&mut conns, &mut free, slot);
            }
        }
    }
}

/// Accepts every pending connection (worker 0 only) and deals them round-robin
/// across the pool, including itself.
fn accept_ready(
    ctx: &WorkerCtx,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_gen: &mut u64,
    next_peer: &mut usize,
) {
    let Some(listener) = &ctx.listener else {
        return;
    };
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let target = *next_peer % ctx.peers.len();
                *next_peer = (*next_peer + 1) % ctx.peers.len();
                if Arc::ptr_eq(&ctx.peers[target], &ctx.shared) {
                    register_conn(conns, free, next_gen, stream);
                } else {
                    let peer = &ctx.peers[target];
                    peer.inbox.lock().unwrap().adopted.push(stream);
                    peer.waker.wake();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept failures (fd exhaustion, aborted handshake): leave
            // the backlog for the next readiness report instead of spinning.
            Err(_) => return,
        }
    }
}

/// Adopts a connection into a slot (reusing a freed one when available).
fn register_conn(
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_gen: &mut u64,
    stream: TcpStream,
) {
    if stream.set_nonblocking(true).is_err() {
        return; // the socket is already unusable; drop it
    }
    stream.set_nodelay(true).ok(); // latency over throughput for small frames
    *next_gen += 1;
    let conn = Conn {
        stream,
        gen: *next_gen,
        read: ReadState::start(),
        outbox: Vec::new(),
        sent: 0,
        awaiting: false,
        closing: false,
        last_progress: Instant::now(),
    };
    match free.pop() {
        Some(slot) => conns[slot] = Some(conn),
        None => conns.push(Some(conn)),
    }
}

fn close_conn(conns: &mut [Option<Conn>], free: &mut Vec<usize>, slot: usize) {
    if conns[slot].take().is_some() {
        free.push(slot);
    }
}

/// Routes one connection's poll results: errors close, readable data feeds the
/// frame parser, writable space drains the outbox.
fn conn_events(
    ctx: &WorkerCtx,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    slot: usize,
    revents: i16,
) {
    let mut close = false;
    {
        let Some(conn) = conns[slot].as_mut() else {
            return;
        };
        if revents & (POLLERR | POLLNVAL) != 0 {
            close = true;
        } else if revents & POLLIN != 0 {
            let token = ConnToken {
                slot,
                gen: conn.gen,
            };
            close = !conn_read(ctx, conn, token);
        } else if revents & POLLHUP != 0 {
            // Hangup with nothing left to read (the POLLIN case above drains
            // buffered bytes first and sees EOF itself).
            close = true;
        }
        if !close {
            close = !conn_flush(conn);
            if !close && conn.closing && conn.sent == conn.outbox.len() {
                close = true;
            }
        }
    }
    if close {
        close_conn(conns, free, slot);
    }
}

/// Delivers a finished response from the join worker to its connection. A stale
/// token (connection died, slot possibly reused) drops the response.
fn deliver(conns: &mut [Option<Conn>], free: &mut Vec<usize>, token: ConnToken, response: Vec<u8>) {
    let close = {
        let Some(conn) = conns.get_mut(token.slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.gen != token.gen {
            return;
        }
        conn.awaiting = false;
        enqueue_response(conn, &response);
        !conn_flush(conn)
    };
    if close {
        close_conn(conns, free, token.slot);
    }
}

/// Feeds readable bytes through the frame parser, dispatching every completed
/// frame, until the socket would block (or the connection must pause/close).
/// Returns `false` when the connection should be closed.
fn conn_read(ctx: &WorkerCtx, conn: &mut Conn, token: ConnToken) -> bool {
    loop {
        // A complete frame? (Covers zero-length payloads, which need no read.)
        let complete = match &mut conn.read {
            ReadState::Payload { buf, filled } if *filled == buf.len() => Some(std::mem::take(buf)),
            _ => None,
        };
        if let Some(payload) = complete {
            conn.read = ReadState::start();
            ctx.counters.served_requests.fetch_add(1, Ordering::Relaxed);
            let reply = ReplyHandle {
                worker: Arc::clone(&ctx.shared),
                token,
            };
            // A panic anywhere in decode/dispatch answers an error frame on the
            // same connection instead of unwinding the worker (which would drop
            // every connection it multiplexes).
            let action = catch_unwind(AssertUnwindSafe(|| {
                dispatch(
                    &payload,
                    &ctx.index.current(),
                    ctx.model.as_ref(),
                    &ctx.counters,
                    &ctx.batcher,
                    reply,
                )
            }))
            .unwrap_or_else(|_| {
                Action::Respond(
                    Response::Error("internal error: request handler panicked".into()).encode(),
                )
            });
            match action {
                Action::Respond(response) => enqueue_response(conn, &response),
                Action::AwaitReply => {
                    conn.awaiting = true;
                    return true;
                }
            }
            if conn.closing {
                return true;
            }
            continue;
        }

        let result = match &mut conn.read {
            ReadState::Len { buf, filled } => (&conn.stream)
                .read(&mut buf[*filled..])
                .inspect(|n| *filled += n),
            ReadState::Payload { buf, filled } => (&conn.stream)
                .read(&mut buf[*filled..])
                .inspect(|n| *filled += n),
        };
        match result {
            // EOF: a clean disconnect between frames or a torn frame — close
            // either way (no response is owed mid-frame).
            Ok(0) => return false,
            Ok(_) => {
                let frame_len = match &conn.read {
                    ReadState::Len { buf, filled: 4 } => Some(u32::from_le_bytes(*buf)),
                    _ => None,
                };
                if let Some(len) = frame_len {
                    if len > MAX_FRAME_LEN {
                        // The stream is unrecoverable (we cannot skip what we will
                        // not buffer): answer, flush, and close.
                        let msg =
                            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit");
                        enqueue_response(conn, &Response::Error(msg).encode());
                        conn.closing = true;
                        return true;
                    }
                    conn.read = ReadState::Payload {
                        buf: vec![0u8; len as usize],
                        filled: 0,
                    };
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Appends one response frame (length prefix + payload) to the outbox.
fn enqueue_response(conn: &mut Conn, payload: &[u8]) {
    // Chaos hook: `serve.write.stall` simulates a slow/stuck write path by
    // delaying response delivery 25 ms — enough to exercise latency and
    // interleaving without tearing any frame or tripping the stall budget.
    if faults::fires("serve.write.stall") {
        std::thread::sleep(Duration::from_millis(25));
    }
    if conn.sent == conn.outbox.len() {
        conn.outbox.clear();
        conn.sent = 0;
        // The outbox just became non-empty: the stall budget starts now.
        conn.last_progress = Instant::now();
    }
    conn.outbox
        .extend_from_slice(&(payload.len() as u32).to_le_bytes());
    conn.outbox.extend_from_slice(payload);
}

/// Writes as much pending outbox as the socket will take. Every accepted byte
/// resets the stall budget (progress-based, not per-attempt). Returns `false`
/// when the connection should be closed.
fn conn_flush(conn: &mut Conn) -> bool {
    while conn.sent < conn.outbox.len() {
        match (&conn.stream).write(&conn.outbox[conn.sent..]) {
            Ok(0) => return false,
            Ok(n) => {
                conn.sent += n;
                conn.last_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if conn.outbox.capacity() > OUTBOX_KEEP {
        conn.outbox = Vec::new();
    } else {
        conn.outbox.clear();
    }
    conn.sent = 0;
    true
}

/// The final pass after `reactor_stop`: pick up replies that raced shutdown,
/// flush what the sockets will take within a short blocking budget, and drop
/// everything. Sockets with nothing pending (idle connections) cost nothing, so
/// shutdown stays prompt however many are attached.
fn shutdown_flush(ctx: &WorkerCtx, conns: &mut [Option<Conn>]) {
    ctx.shared.waker.drain();
    let (adopted, completed) = {
        let mut inbox = ctx.shared.inbox.lock().unwrap();
        (
            std::mem::take(&mut inbox.adopted),
            std::mem::take(&mut inbox.completed),
        )
    };
    drop(adopted); // accepted but never served: closing them is the shutdown
    for (token, response) in completed {
        if let Some(conn) = conns.get_mut(token.slot).and_then(Option::as_mut) {
            if conn.gen == token.gen {
                conn.awaiting = false;
                enqueue_response(conn, &response);
            }
        }
    }
    for conn in conns.iter_mut().flatten() {
        if conn.sent >= conn.outbox.len() {
            continue;
        }
        // Best-effort blocking flush with a short timeout: deliver replies that
        // raced shutdown without letting a stuck peer hold the join hostage.
        if conn.stream.set_nonblocking(false).is_err()
            || conn
                .stream
                .set_write_timeout(Some(Duration::from_secs(1)))
                .is_err()
        {
            continue;
        }
        let mut sent = conn.sent;
        while sent < conn.outbox.len() {
            match (&conn.stream).write(&conn.outbox[sent..]) {
                Ok(0) => break,
                Ok(n) => sent += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }
}

/// Decodes one request payload and decides how it is answered; all failures
/// become error responses. `KNN`, `KNN_SUBSET`, and the model tasks hand off to
/// the join worker (unless rejected up front); everything else answers inline.
///
/// `index` is the epoch current at dispatch time (loaded once per frame); the
/// join worker loads its own epoch when the work actually runs, so preflight
/// checks here are advisory under a concurrent republish — the authoritative
/// geometry checks live in the index itself.
fn dispatch(
    payload: &[u8],
    index: &BlockingIndex,
    model: Option<&Arc<dyn ModelBackend>>,
    counters: &Counters,
    batcher: &Batcher,
    reply: ReplyHandle,
) -> Action {
    let error = |message: String| Action::Respond(Response::Error(message).encode());
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(e) => return error(e.to_string()),
    };
    match request {
        Request::Knn { queries, k } => {
            let dim = queries.first().map_or(0, Vec::len);
            if !queries.is_empty() && !index.is_empty() && dim != index.dim() {
                return error(format!(
                    "query dimension {dim} does not match the index dimension {}",
                    index.dim()
                ));
            }
            // A protocol-legal request can still imply a response frame over the
            // protocol limit (pairs = queries x min(k, corpus)); bound it here so
            // the response encoder never produces an unsendable frame.
            let response_bytes = queries
                .len()
                .saturating_mul(k.min(index.len()))
                .saturating_mul(16)
                .saturating_add(5);
            if response_bytes > MAX_FRAME_LEN as usize {
                return error(format!(
                    "response would be {response_bytes} bytes, over the \
                     {MAX_FRAME_LEN}-byte frame limit; send fewer queries per \
                     batch or a smaller k"
                ));
            }
            match batcher.push(Pending {
                queries,
                k,
                enqueued_at: Instant::now(),
                reply,
            }) {
                Admission::Queued => Action::AwaitReply,
                Admission::Busy => {
                    counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    Action::Respond(Response::Busy.encode())
                }
                Admission::Stopped => error("server shutting down".into()),
            }
        }
        Request::KnnSubset { queries, k, shards } => {
            let dim = queries.first().map_or(0, Vec::len);
            if !queries.is_empty() && !index.is_empty() && dim != index.dim() {
                return error(format!(
                    "query dimension {dim} does not match the index dimension {}",
                    index.dim()
                ));
            }
            let num_shards = index.num_shards();
            if let Some(&bad) = shards.iter().find(|&&s| s >= num_shards) {
                return error(format!(
                    "shard position {bad} is out of range: the served snapshot has \
                     {num_shards} shards (is the coordinator's placement built from \
                     a different snapshot epoch?)"
                ));
            }
            let response_bytes = queries
                .len()
                .saturating_mul(k.min(index.len()))
                .saturating_mul(16)
                .saturating_add(shards.len().saturating_mul(4))
                .saturating_add(9);
            if response_bytes > MAX_FRAME_LEN as usize {
                return error(format!(
                    "response would be {response_bytes} bytes, over the \
                     {MAX_FRAME_LEN}-byte frame limit; send fewer queries per \
                     batch or a smaller k"
                ));
            }
            if batcher.push_subset(SubsetPending {
                queries,
                k,
                shards,
                reply,
            }) {
                Action::AwaitReply
            } else {
                error("server shutting down".into())
            }
        }
        Request::Ping => Action::Respond(Response::Pong.encode()),
        Request::Stats => Action::Respond(Response::Stats(build_stats(index, counters)).encode()),
        Request::Embed { texts } => {
            let Some(model) = model else {
                return error(
                    "this server has no model loaded: EMBED requires a server \
                     spawned with a model snapshot (Server::spawn_with_model)"
                        .into(),
                );
            };
            // num · dim header (8 bytes) + status byte + num×dim f32 rows: reject
            // batches whose reply could not be framed, before they queue.
            let response_bytes = texts
                .len()
                .saturating_mul(model.dim())
                .saturating_mul(4)
                .saturating_add(9);
            if response_bytes > MAX_FRAME_LEN as usize {
                return error(format!(
                    "response would be {response_bytes} bytes, over the \
                     {MAX_FRAME_LEN}-byte frame limit; send fewer texts per batch"
                ));
            }
            enqueue_task(batcher, counters, ModelTask::Embed(texts), reply)
        }
        Request::MatchPairs { lefts, rights } => {
            if model.is_none() {
                return error(
                    "this server has no model loaded: MATCH requires a server \
                     spawned with a model snapshot (Server::spawn_with_model)"
                        .into(),
                );
            }
            // Wire-legal but semantically broken: the pairs cannot be aligned.
            if lefts.len() != rights.len() {
                return error(format!(
                    "MATCH batch is misaligned: {} left texts vs {} right texts",
                    lefts.len(),
                    rights.len()
                ));
            }
            enqueue_task(batcher, counters, ModelTask::Match { lefts, rights }, reply)
        }
    }
}

/// Offers a model task to the admission queue, translating the outcome exactly
/// like a `KNN` push (`BUSY` on shed, error on shutdown).
fn enqueue_task(
    batcher: &Batcher,
    counters: &Counters,
    task: ModelTask,
    reply: ReplyHandle,
) -> Action {
    match batcher.push_task(TaskPending {
        task,
        enqueued_at: Instant::now(),
        reply,
    }) {
        Admission::Queued => Action::AwaitReply,
        Admission::Busy => {
            counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            Action::Respond(Response::Busy.encode())
        }
        Admission::Stopped => {
            Action::Respond(Response::Error("server shutting down".into()).encode())
        }
    }
}

// ---------------------------------------------------------------------------
// Join worker
// ---------------------------------------------------------------------------

/// Runs one `knn_join_report` with panic containment: a panicking join (a poisoned
/// lock, an index bug, an injected fault escaping its retry budget) becomes an
/// error message for the requester instead of killing the worker thread — which
/// would strand every queued and future request.
fn run_join(
    index: &BlockingIndex,
    queries: &[Vec<f32>],
    k: usize,
) -> Result<sudowoodo_index::JoinOutcome, String> {
    catch_unwind(AssertUnwindSafe(|| index.knn_join_report(queries, k))).map_err(|payload| {
        let reason = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("internal error: knn_join panicked: {reason}")
    })
}

/// Serves one scatter-gather subset join (never coalesced, never cached, not
/// admission-limited — the coordinator owns retry and failover policy).
fn serve_subset(index: &BlockingIndex, counters: &Counters, sub: SubsetPending) {
    // Chaos hook: `serve.subset.stall` wedges the scatter-gather path long enough
    // (1 s) to trip a coordinator's read timeout, so failover tests can prove a
    // stalled replica is routed around — unlike `serve.write.stall`, whose 25 ms
    // is deliberate sub-timeout jitter.
    if faults::fires("serve.subset.stall") {
        std::thread::sleep(Duration::from_millis(1000));
    }
    let response = match catch_unwind(AssertUnwindSafe(|| {
        index.knn_join_subset_report(&sub.queries, sub.k, &sub.shards)
    })) {
        Ok(outcome) => {
            if outcome.degraded {
                counters.degraded_joins.fetch_add(1, Ordering::Relaxed);
            }
            Response::KnnSubset {
                pairs: outcome.pairs,
                missing_shards: outcome.quarantined_shards,
            }
            .encode()
        }
        Err(_) => Response::Error("internal error: request handler panicked".into()).encode(),
    };
    sub.reply.send_raw(response);
}

/// Serves one model task (never coalesced, never cached — see the module docs).
/// Tasks honour the same deadline as `KNN`: a request whose client has given up
/// is answered `BUSY` without spending encoder compute on it. `model` is `None`
/// only if dispatch raced a misconfiguration — it rejects model opcodes up front
/// on model-less servers — so the error arm here is pure defense.
fn serve_task(
    model: Option<&Arc<dyn ModelBackend>>,
    counters: &Counters,
    config: &ServerConfig,
    task: TaskPending,
) {
    if let Some(deadline) = config.request_deadline {
        if task.enqueued_at.elapsed() >= deadline {
            counters
                .deadline_expirations
                .fetch_add(1, Ordering::Relaxed);
            task.reply.send_raw(Response::Busy.encode());
            return;
        }
    }
    let Some(model) = model else {
        task.reply
            .send_raw(Response::Error("this server has no model loaded".into()).encode());
        return;
    };
    let response = match catch_unwind(AssertUnwindSafe(|| match &task.task {
        ModelTask::Embed(texts) => Response::Embeddings(model.embed(texts)),
        ModelTask::Match { lefts, rights } => {
            Response::MatchScores(model.match_scores(lefts, rights))
        }
    })) {
        Ok(response) => response,
        Err(_) => Response::Error("internal error: request handler panicked".into()),
    };
    task.reply.send_raw(response.encode());
}

/// The join worker: coalesce queued requests, run one `knn_join`, split the results.
///
/// Each unit of work loads the currently published index once and runs wholly
/// against it — a concurrent [`Server::publish_index`] affects the next unit, so
/// a coalesced group is never answered half-old-epoch, half-new.
fn join_worker(
    served: &ServedIndex,
    model: Option<&Arc<dyn ModelBackend>>,
    stop: &AtomicBool,
    counters: &Counters,
    batcher: &Batcher,
    config: ServerConfig,
) {
    loop {
        let group = match batcher.next_work(stop) {
            Work::Shutdown => return, // stop requested and the queues are drained
            Work::Subset(sub) => {
                serve_subset(&served.current(), counters, sub);
                continue;
            }
            Work::Task(task) => {
                serve_task(model, counters, &config, task);
                continue;
            }
            Work::Group(group) => group,
        };
        let index = served.current();
        let index = index.as_ref();
        // Expire requests whose deadline passed while they waited: their client has
        // given up (or will momentarily), so running the join for them spends the
        // server's scarcest resource on nobody. They get `BUSY` — the request never
        // ran, so a retry is always safe.
        let group: Vec<Pending> = match config.request_deadline {
            None => group,
            Some(deadline) => group
                .into_iter()
                .filter_map(|pending| {
                    if pending.enqueued_at.elapsed() >= deadline {
                        counters
                            .deadline_expirations
                            .fetch_add(1, Ordering::Relaxed);
                        pending.reply.send(JoinReply::Expired);
                        None
                    } else {
                        Some(pending)
                    }
                })
                .collect(),
        };
        // Answer cache-hitting requests individually first: merging a hit into a
        // bigger batch would change the cache fingerprint and recompute work the
        // cache already holds. Only the misses are coalesced. A lone request skips
        // the peek — `knn_join` runs its own cache lookup, so peeking here would
        // just fingerprint the batch twice. Cache entries are only ever written by
        // complete joins, so a hit is always non-degraded.
        let mut group: Vec<Pending> = if group.len() == 1 {
            group
        } else {
            group
                .into_iter()
                .filter_map(
                    |pending| match index.cached_knn_join(&pending.queries, pending.k) {
                        Some(hit) => {
                            pending.reply.send(JoinReply::Done {
                                pairs: hit,
                                degraded: false,
                            });
                            None
                        }
                        None => Some(pending),
                    },
                )
                .collect()
        };
        match group.len() {
            0 => {} // every request hit the cache (or expired)
            1 => {
                let pending = group.pop().expect("length checked");
                match run_join(index, &pending.queries, pending.k) {
                    Ok(outcome) => {
                        if outcome.degraded {
                            counters.degraded_joins.fetch_add(1, Ordering::Relaxed);
                        }
                        pending.reply.send(JoinReply::Done {
                            pairs: outcome.pairs,
                            degraded: outcome.degraded,
                        });
                    }
                    Err(message) => {
                        pending.reply.send(JoinReply::Failed(message));
                    }
                }
            }
            _ => {
                counters.batched_joins.fetch_add(1, Ordering::Relaxed);
                // Concatenate the batches, remembering each request's query range.
                let mut merged = Vec::new();
                let mut offsets = Vec::with_capacity(group.len() + 1);
                for pending in &group {
                    offsets.push(merged.len());
                    merged.extend(pending.queries.iter().cloned());
                }
                offsets.push(merged.len());
                let k = group[0].k;
                let outcome = match run_join(index, &merged, k) {
                    Ok(outcome) => outcome,
                    Err(message) => {
                        for pending in group {
                            pending.reply.send(JoinReply::Failed(message.clone()));
                        }
                        continue;
                    }
                };
                if outcome.degraded {
                    counters.degraded_joins.fetch_add(1, Ordering::Relaxed);
                }
                let pairs = outcome.pairs;
                // `knn_join` output is ordered by query index, so one forward walk
                // splits it; subtracting the offset restores request-local indices.
                let mut cursor = 0;
                for (i, pending) in group.into_iter().enumerate() {
                    let (lo, hi) = (offsets[i], offsets[i + 1]);
                    let mut own = Vec::new();
                    while cursor < pairs.len() && pairs[cursor].0 < hi {
                        let (q, id, score) = pairs[cursor];
                        own.push((q - lo, id, score));
                        cursor += 1;
                    }
                    // Cache the split under ITS OWN fingerprint: clients repeat their
                    // individual batches, not whatever combination this merge was, so
                    // the merged-batch entry alone would never serve them. Degraded
                    // splits are never cached — a cache entry must stay exact.
                    if !outcome.degraded {
                        index.cache_join_result(&pending.queries, k, own.clone());
                    }
                    pending.reply.send(JoinReply::Done {
                        pairs: own,
                        degraded: outcome.degraded,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::STATUS_OK;

    fn encode_knn_request(queries: &[Vec<f32>], k: usize) -> Vec<u8> {
        Request::Knn {
            queries: queries.to_vec(),
            k,
        }
        .encode()
    }

    fn vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                    })
                    .collect()
            })
            .collect()
    }

    fn small_server(config: ServerConfig) -> Server {
        let index = BlockingIndex::build(vectors(200, 4, 7), Some(16));
        Server::spawn_with_config(Arc::new(index), "127.0.0.1:0", config).expect("spawn")
    }

    /// Raw framed request over a plain `TcpStream`, so the test controls the read
    /// side byte-by-byte (the real client would drain eagerly).
    fn send_request(stream: &mut TcpStream, payload: &[u8]) {
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .expect("len");
        stream.write_all(payload).expect("payload");
    }

    /// Satellite regression: a slow-but-alive reader draining a multi-megabyte
    /// response in small sips takes far longer than the stall budget overall, yet
    /// must never be dropped — every sip makes progress, and progress resets the
    /// budget. (The old write path reused a fixed 100 ms poll as its write
    /// timeout, which this scenario starved.)
    #[test]
    fn a_throttled_reader_making_progress_is_never_dropped() {
        let server = small_server(ServerConfig {
            write_stall_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        });
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        // 8000 queries x k=100 x 16 bytes/pair ≈ 12.8 MiB response — far beyond
        // any socket buffer, so the server must keep writing as we sip.
        let queries = vectors(8000, 4, 11);
        send_request(&mut stream, &encode_knn_request(&queries, 100));

        let mut len_bytes = [0u8; 4];
        stream.read_exact(&mut len_bytes).expect("response length");
        let total = u32::from_le_bytes(len_bytes) as usize;
        assert!(
            total > 8 * 1024 * 1024,
            "response should dwarf socket buffers, got {total} bytes"
        );
        let started = Instant::now();
        let mut body = vec![0u8; total];
        let mut filled = 0;
        while filled < total {
            // Sip at most 256 KiB every 25 ms: the whole drain takes ~10x the
            // 300 ms stall budget, with progress on every sip.
            let chunk = (total - filled).min(256 * 1024);
            stream
                .read_exact(&mut body[filled..filled + chunk])
                .expect("throttled read survived");
            filled += chunk;
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(
            started.elapsed() > Duration::from_millis(600),
            "the drain must outlast the stall budget for this test to mean anything"
        );
        assert_eq!(body[0], STATUS_OK);
        server.shutdown();
    }

    /// The flip side: a reader that stops reading entirely IS dropped once the
    /// stall budget passes with zero progress — a wedged peer cannot pin a
    /// response buffer forever.
    #[test]
    fn a_fully_stalled_reader_is_dropped_after_the_budget() {
        let server = small_server(ServerConfig {
            write_stall_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        });
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let queries = vectors(8000, 4, 13);
        send_request(&mut stream, &encode_knn_request(&queries, 100));
        // Wait for the response to actually be in flight before stalling —
        // otherwise a slow join on a loaded machine finishes only after the
        // sleep below, the drain loop then makes continuous progress, and the
        // stall budget never fires (the reader was measuring compute, not its
        // own stall). The 4-byte length prefix is the handshake.
        let mut len_bytes = [0u8; 4];
        stream.read_exact(&mut len_bytes).expect("response length");
        // Read nothing more. The server fills the socket buffers, then sees
        // zero progress for the whole budget and closes the connection.
        std::thread::sleep(Duration::from_millis(1500));
        // Drain until the peer's close shows through (EOF or reset). A healthy
        // server would happily feed us all ~12.8 MiB; a dropped connection ends
        // orders of magnitude earlier. A read timeout means the server neither
        // fed nor closed us — treat it as "kept serving" and fail.
        let mut drained = 0usize;
        let mut buf = vec![0u8; 64 * 1024];
        let ended = loop {
            match stream.read(&mut buf) {
                Ok(0) => break true,
                Ok(n) => {
                    drained += n;
                    if drained > 13 * 1024 * 1024 {
                        break false;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    break false
                }
                Err(_) => break true,
            }
        };
        assert!(
            ended,
            "the server kept serving a reader stalled past the budget ({drained} bytes)"
        );
        server.shutdown();
    }
}
