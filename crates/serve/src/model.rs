//! The served model: what a server needs from an encoder + pair matcher.
//!
//! The serve crate sits *below* the model crates in the dependency order (it only
//! knows about the index and the fault layer), so the `EMBED` and `MATCH` request
//! paths are expressed against this trait and the model crate implements it — the
//! same inversion that lets the index be served without the server knowing how it
//! was built.
//!
//! ## Determinism contract
//!
//! Served answers must be **bit-identical** to calling the in-process model on the
//! same inputs (the repo-wide oracle discipline). Implementations must therefore be
//! deterministic functions of the input batch alone: same texts in, same `f32` bits
//! out, independent of thread count or of what other requests the server is
//! handling. This is also why the server never coalesces `EMBED`/`MATCH` batches
//! from different connections — implementations may (and do) chunk internally, and
//! concatenating two clients' batches would move those chunk boundaries.

/// A trained model the server can answer `EMBED` and `MATCH` requests from.
///
/// Implementations must be deterministic per batch (see the module docs) and
/// panic-safe: the server wraps calls in `catch_unwind` and answers an error frame,
/// but a poisoned implementation would fail every later request.
pub trait ModelBackend: Send + Sync {
    /// Embedding dimensionality of [`ModelBackend::embed`] outputs.
    fn dim(&self) -> usize;

    /// Encodes a batch of serialized records into one vector each, in input order.
    fn embed(&self, texts: &[String]) -> Vec<Vec<f32>>;

    /// Scores the aligned pairs `(lefts[i], rights[i])` with one match probability
    /// each, in input order. Callers guarantee `lefts.len() == rights.len()` (the
    /// server rejects mismatched batches before they reach the model).
    fn match_scores(&self, lefts: &[String], rights: &[String]) -> Vec<f32>;
}
