//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! The protocol is deliberately small — a handful of opcodes, fixed-width
//! little-endian integers, IEEE-754 `f32` scores — so a client in any language is an
//! afternoon's work and the server never parses anything variable-length except query
//! payloads whose size it has already bounds-checked.
//!
//! Every legal message is a variant of the typed [`Request`] / [`Response`] enum pair.
//! [`Request::decode`] is an exhaustive `match` over the opcode byte — an opcode this
//! version does not know is a typed [`ProtocolError::UnknownOpcode`], not a panic and
//! not a silent skip — and [`Request::encode`] / [`Response::encode`] are the only
//! writers, so there is exactly one place the byte layout lives.
//!
//! ## Framing
//!
//! Every message (either direction) is one **frame**:
//!
//! ```text
//! length  u32 LE     byte length of the payload that follows (<= MAX_FRAME_LEN)
//! payload length bytes
//! ```
//!
//! A request payload starts with an opcode byte; a response payload starts with a
//! status byte ([`STATUS_OK`] / [`STATUS_ERR`] / [`STATUS_BUSY`] /
//! [`STATUS_OK_DEGRADED`]). Connections are persistent: a client sends any number of
//! frames and reads one response per request, in order (the protocol is pipelinable —
//! responses never reorder).
//!
//! ## Requests
//!
//! ```text
//! KNN  (0x01): k u32 · num_queries u32 · dim u32 · queries f32×(num·dim), row-major
//! PING (0x02): empty
//! STATS(0x03): empty
//! KNN_SUBSET (0x04): k u32 · num_shards u32 · shard u32×num_shards
//!                    · num_queries u32 · dim u32 · queries f32×(num·dim), row-major
//! EMBED (0x05): num_texts u32 · (len u32 · UTF-8 bytes)×num_texts
//! MATCH (0x06): num_left u32 · (len u32 · UTF-8 bytes)×num_left
//!             · num_right u32 · (len u32 · UTF-8 bytes)×num_right
//! ```
//!
//! A `KNN` request carries a whole **query batch** — batching is the unit of both
//! network amortization and the server-side query cache key, so clients should send
//! their natural batch, not one query per frame.
//!
//! A `KNN_SUBSET` request is the scatter half of distributed scatter-gather: it asks
//! for the join restricted to the named **shard positions** of the served snapshot.
//! A coordinator that partitions the shard space across serve processes and merges
//! the per-subset responses through the index's bounded-heap selector reconstructs
//! the whole-corpus join bit-identically (see `sudowoodo-coord`).
//!
//! An `EMBED` request asks the served *model* (not the index) for the raw encoder
//! vectors of a batch of serialized records; a `MATCH` request asks the served pair
//! matcher to score `(left[i], right[i])` pairs. Mismatched `num_left`/`num_right`
//! counts are representable on the wire on purpose — the server answers them with a
//! typed error rather than the framing layer rejecting the bytes.
//!
//! ## Responses
//!
//! ```text
//! ok KNN:   0x00 · num_pairs u32 · (query u32 · id u64 · score f32)×num_pairs
//! ok PING:  0x00
//! ok STATS: 0x00 · len u64 · dim u64 · num_shards u64 · spilled u64
//!                · served_requests u64 · batched_joins u64
//!                · cache_hits u64 · cache_misses u64
//!                · busy_rejections u64 · deadline_expirations u64
//!                · degraded_joins u64
//! ok KNN_SUBSET: 0x00 · num_missing u32 · shard u32×num_missing
//!                     · num_pairs u32 · (query u32 · id u64 · score f32)×num_pairs
//! ok EMBED: 0x00 · num u32 · dim u32 · vectors f32×(num·dim), row-major
//! ok MATCH: 0x00 · num u32 · score f32×num
//! degraded: 0x03 · same body as the ok of the same opcode (KNN/KNN_SUBSET only)
//! busy:     0x02 · empty
//! error:    0x01 · message_len u32 · UTF-8 message
//! ```
//!
//! A `KNN_SUBSET` body leads with the **missing shards**: subset positions that were
//! quarantined on the server and therefore contributed no rows (always empty when the
//! status is plain ok). The coordinator needs the positions — not just a flag — to
//! attribute the loss and to try the shard set's surviving replica.
//!
//! An error response answers exactly the request that caused it (a dimension
//! mismatch, an oversized frame, an unknown opcode); the connection stays usable.
//! The three non-`0x00` statuses are the failure model on the wire:
//!
//! * **busy** — the admission queue is full (load shed) or the request's deadline
//!   expired before the join ran. The request was *not* executed; it is always safe
//!   to retry after a backoff.
//! * **degraded** — the join ran, but one or more index shards were quarantined
//!   (unreadable storage), so rows from those shards are missing. The pairs that are
//!   present are exact; the set is explicitly incomplete, never silently wrong.
//!   `EMBED` and `MATCH` run the model, not the index — they are never degraded.
//! * **error** — the request or the handler failed; the message says why. Errors are
//!   not retried blindly (the same request would fail the same way).

use std::fmt;
use std::io::{self, Read, Write};

/// Largest accepted frame payload (64 MiB) — bounds server memory against garbage or
/// hostile length prefixes while allowing ~500k 32-dimensional queries per batch.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

// Request opcodes. Private on purpose: the typed [`Request`] enum is the API; raw
// opcode bytes only exist inside `encode`/`decode` (and [`Request::peek_kind`] for
// code that must sniff a frame without decoding it).
const OP_KNN: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_KNN_SUBSET: u8 = 0x04;
const OP_EMBED: u8 = 0x05;
const OP_MATCH: u8 = 0x06;

/// Response status: success; the opcode-specific body follows.
pub const STATUS_OK: u8 = 0x00;
/// Response status: failure; a UTF-8 message follows.
pub const STATUS_ERR: u8 = 0x01;
/// Response status: load shed — the admission queue was full (or the request's
/// deadline expired before it ran). The request was not executed; retry after backoff.
pub const STATUS_BUSY: u8 = 0x02;
/// Response status: success with degraded coverage — quarantined shards were skipped,
/// so the (otherwise exact) `KNN` body is explicitly incomplete.
pub const STATUS_OK_DEGRADED: u8 = 0x03;

/// Server and index statistics returned by a `STATS` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Live vectors in the served index.
    pub len: u64,
    /// Vector dimensionality of the served index.
    pub dim: u64,
    /// Shards of the served index (1 for the dense layout).
    pub num_shards: u64,
    /// Shards currently on disk (snapshot-cold or budget-spilled; 0 for dense).
    pub spilled_shards: u64,
    /// Total requests answered since the server started (all opcodes).
    pub served_requests: u64,
    /// `knn_join` executions that served more than one client request at once —
    /// the request batcher's coalescing at work.
    pub batched_joins: u64,
    /// Query-cache hits observed by the served index (sharded layout; 0 otherwise).
    pub cache_hits: u64,
    /// Query-cache misses observed by the served index (sharded layout; 0 otherwise).
    pub cache_misses: u64,
    /// `KNN` requests answered with [`STATUS_BUSY`] because the admission queue was
    /// full — the server shed load instead of queueing without bound.
    pub busy_rejections: u64,
    /// `KNN` requests whose per-request deadline expired while they waited in the
    /// admission queue (also answered with [`STATUS_BUSY`]; the join never ran).
    pub deadline_expirations: u64,
    /// `knn_join` executions that returned degraded (quarantined shards skipped).
    pub degraded_joins: u64,
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed an idle connection); errors on a torn frame or an oversized
/// length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte protocol limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Why a request payload could not be decoded.
///
/// The server turns these into [`Response::Error`] frames (the connection stays
/// usable); a client that hand-rolls frames sees the same taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload was zero bytes — there is no opcode to dispatch on.
    EmptyRequest,
    /// The opcode byte is not one this protocol version defines.
    UnknownOpcode(u8),
    /// The opcode was recognized but the body disagrees with its advertised layout
    /// (truncated header, counts that overflow or disagree with the byte length,
    /// invalid UTF-8 in a text field, ...).
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::EmptyRequest => write!(f, "empty request payload"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::Malformed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The request family an opcode belongs to, without the payload.
///
/// Used to pick the right [`Response::decode`] arm for the request a client sent,
/// and by [`Request::peek_kind`] to classify a raw frame without decoding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// `KNN` — batched k-nearest-neighbor join.
    Knn,
    /// `PING` — liveness check.
    Ping,
    /// `STATS` — server/index statistics.
    Stats,
    /// `KNN_SUBSET` — join restricted to named shard positions.
    KnnSubset,
    /// `EMBED` — raw encoder vectors for a text batch.
    Embed,
    /// `MATCH` — pair-matcher scores for aligned text pairs.
    MatchPairs,
}

/// A decoded request — every frame a client can legally send.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Batched k-nearest-neighbor join: the top-`k` neighbors of every query.
    Knn {
        /// Query vectors (row-major on the wire; must share one dimensionality).
        queries: Vec<Vec<f32>>,
        /// Neighbors requested per query.
        k: usize,
    },
    /// Liveness check; the reply is an empty ok.
    Ping,
    /// Server/index statistics.
    Stats,
    /// K-nearest-neighbor join restricted to a subset of shard positions (the
    /// scatter half of distributed scatter-gather).
    KnnSubset {
        /// Query vectors (row-major on the wire; must share one dimensionality).
        queries: Vec<Vec<f32>>,
        /// Neighbors requested per query.
        k: usize,
        /// Shard positions of the served snapshot to restrict the join to.
        shards: Vec<usize>,
    },
    /// Raw encoder vectors for a batch of serialized records.
    Embed {
        /// The serialized records to embed.
        texts: Vec<String>,
    },
    /// Pair-matcher scores for the aligned pairs `(lefts[i], rights[i])`.
    ///
    /// Unequal `lefts`/`rights` lengths encode and decode fine — the *server*
    /// rejects them with a typed error, so the failure is observable end to end.
    MatchPairs {
        /// Left-hand serialized records.
        lefts: Vec<String>,
        /// Right-hand serialized records, aligned with `lefts`.
        rights: Vec<String>,
    },
}

fn push_f32s(out: &mut Vec<u8>, rows: &[Vec<f32>]) {
    for row in rows {
        for &x in row {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

fn push_texts(out: &mut Vec<u8>, texts: &[String]) {
    out.extend_from_slice(&(texts.len() as u32).to_le_bytes());
    for t in texts {
        out.extend_from_slice(&(t.len() as u32).to_le_bytes());
        out.extend_from_slice(t.as_bytes());
    }
}

/// A cursor over a request/response body with checked, typed reads.
struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(body: &'a [u8]) -> Self {
        Reader { body, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.body.len() - self.at
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtocolError> {
        let bytes = self
            .body
            .get(self.at..self.at + 4)
            .ok_or_else(|| ProtocolError::Malformed(format!("truncated {what}")))?;
        self.at += 4;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn f32_rows(
        &mut self,
        num: usize,
        dim: usize,
        what: &str,
    ) -> Result<Vec<Vec<f32>>, ProtocolError> {
        let expected = num
            .checked_mul(dim)
            .and_then(|f| f.checked_mul(4))
            .ok_or_else(|| ProtocolError::Malformed(format!("{what} counts overflow")))?;
        if self.remaining() != expected {
            return Err(ProtocolError::Malformed(format!(
                "{what} payload is {} bytes, expected {num} x {dim} rows ({} bytes)",
                self.body.len(),
                self.at + expected,
            )));
        }
        let mut rows = Vec::with_capacity(num);
        for _ in 0..num {
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push(f32::from_le_bytes(
                    self.body[self.at..self.at + 4].try_into().unwrap(),
                ));
                self.at += 4;
            }
            rows.push(row);
        }
        Ok(rows)
    }

    fn texts(&mut self, what: &str) -> Result<Vec<String>, ProtocolError> {
        let num = self.u32(what)? as usize;
        let mut texts = Vec::with_capacity(num.min(self.remaining() / 4 + 1));
        for _ in 0..num {
            let len = self.u32(what)? as usize;
            let bytes = self.body.get(self.at..self.at + len).ok_or_else(|| {
                ProtocolError::Malformed(format!(
                    "{what}: a text length of {len} bytes overruns the payload"
                ))
            })?;
            self.at += len;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| ProtocolError::Malformed(format!("{what}: text is not valid UTF-8")))?
                .to_string();
            texts.push(text);
        }
        Ok(texts)
    }

    fn finish(&self, what: &str) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::Malformed(format!(
                "{what} payload has {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

impl Request {
    /// The request family this variant belongs to.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Knn { .. } => RequestKind::Knn,
            Request::Ping => RequestKind::Ping,
            Request::Stats => RequestKind::Stats,
            Request::KnnSubset { .. } => RequestKind::KnnSubset,
            Request::Embed { .. } => RequestKind::Embed,
            Request::MatchPairs { .. } => RequestKind::MatchPairs,
        }
    }

    /// Classifies a raw request payload by its opcode byte without decoding the
    /// body. `None` for an empty payload or an opcode this version does not define.
    pub fn peek_kind(payload: &[u8]) -> Option<RequestKind> {
        match *payload.first()? {
            OP_KNN => Some(RequestKind::Knn),
            OP_PING => Some(RequestKind::Ping),
            OP_STATS => Some(RequestKind::Stats),
            OP_KNN_SUBSET => Some(RequestKind::KnnSubset),
            OP_EMBED => Some(RequestKind::Embed),
            OP_MATCH => Some(RequestKind::MatchPairs),
            _ => None,
        }
    }

    /// Serializes this request into a frame payload (opcode byte + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Knn { queries, k } => {
                let dim = queries.first().map_or(0, Vec::len);
                let mut out = Vec::with_capacity(13 + queries.len() * dim * 4);
                out.push(OP_KNN);
                out.extend_from_slice(&(*k as u32).to_le_bytes());
                out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
                out.extend_from_slice(&(dim as u32).to_le_bytes());
                push_f32s(&mut out, queries);
                out
            }
            Request::Ping => vec![OP_PING],
            Request::Stats => vec![OP_STATS],
            Request::KnnSubset { queries, k, shards } => {
                let dim = queries.first().map_or(0, Vec::len);
                let mut out = Vec::with_capacity(17 + shards.len() * 4 + queries.len() * dim * 4);
                out.push(OP_KNN_SUBSET);
                out.extend_from_slice(&(*k as u32).to_le_bytes());
                out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
                for &s in shards {
                    out.extend_from_slice(&(s as u32).to_le_bytes());
                }
                out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
                out.extend_from_slice(&(dim as u32).to_le_bytes());
                push_f32s(&mut out, queries);
                out
            }
            Request::Embed { texts } => {
                let mut out =
                    Vec::with_capacity(5 + texts.iter().map(|t| 4 + t.len()).sum::<usize>());
                out.push(OP_EMBED);
                push_texts(&mut out, texts);
                out
            }
            Request::MatchPairs { lefts, rights } => {
                let text_bytes = |ts: &[String]| ts.iter().map(|t| 4 + t.len()).sum::<usize>();
                let mut out = Vec::with_capacity(9 + text_bytes(lefts) + text_bytes(rights));
                out.push(OP_MATCH);
                push_texts(&mut out, lefts);
                push_texts(&mut out, rights);
                out
            }
        }
    }

    /// Deserializes a frame payload (opcode byte + body) into a typed request.
    ///
    /// This is the single exhaustive dispatch point over the opcode space: every
    /// defined opcode has an arm, and an undefined one is a typed
    /// [`ProtocolError::UnknownOpcode`]. Counts are validated against the actual
    /// byte length with overflow-checked arithmetic.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let (&opcode, body) = match payload.split_first() {
            Some(split) => split,
            None => return Err(ProtocolError::EmptyRequest),
        };
        match opcode {
            OP_KNN => {
                let mut r = Reader::new(body);
                let k = r.u32("KNN header")? as usize;
                let num = r.u32("KNN header")? as usize;
                let dim = r.u32("KNN header")? as usize;
                let queries = r.f32_rows(num, dim, "KNN")?;
                Ok(Request::Knn { queries, k })
            }
            OP_PING => {
                Reader::new(body).finish("PING")?;
                Ok(Request::Ping)
            }
            OP_STATS => {
                Reader::new(body).finish("STATS")?;
                Ok(Request::Stats)
            }
            OP_KNN_SUBSET => {
                let mut r = Reader::new(body);
                let k = r.u32("KNN_SUBSET header")? as usize;
                let num_shards = r.u32("KNN_SUBSET header")? as usize;
                if num_shards.checked_mul(4).is_none_or(|b| b > r.remaining()) {
                    return Err(ProtocolError::Malformed(format!(
                        "KNN_SUBSET payload is {} bytes, too short for {num_shards} shards",
                        payload.len() - 1
                    )));
                }
                let mut shards = Vec::with_capacity(num_shards);
                for _ in 0..num_shards {
                    shards.push(r.u32("KNN_SUBSET shards")? as usize);
                }
                let num = r.u32("KNN_SUBSET header")? as usize;
                let dim = r.u32("KNN_SUBSET header")? as usize;
                let queries = r.f32_rows(num, dim, "KNN_SUBSET")?;
                Ok(Request::KnnSubset { queries, k, shards })
            }
            OP_EMBED => {
                let mut r = Reader::new(body);
                let texts = r.texts("EMBED")?;
                r.finish("EMBED")?;
                Ok(Request::Embed { texts })
            }
            OP_MATCH => {
                let mut r = Reader::new(body);
                let lefts = r.texts("MATCH lefts")?;
                let rights = r.texts("MATCH rights")?;
                r.finish("MATCH")?;
                Ok(Request::MatchPairs { lefts, rights })
            }
            other => Err(ProtocolError::UnknownOpcode(other)),
        }
    }
}

/// A decoded `KNN_SUBSET` answer: `(pairs, missing shard positions)` — the pairs are
/// exact over the subset minus the missing shards.
pub type SubsetAnswer = (Vec<(usize, usize, f32)>, Vec<usize>);

/// A decoded response — every frame a server can legally send back.
///
/// The ok-body layout depends on the request's opcode, so [`Response::decode`] takes
/// the [`RequestKind`] of the request being answered; [`Response::Busy`] and
/// [`Response::Error`] are opcode-independent.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Knn`]: `(query, id, score)` pairs. `degraded` means
    /// quarantined shards were skipped — the pairs present are exact, the set is
    /// explicitly incomplete.
    Knn {
        /// `(query position, corpus id, cosine score)` rows.
        pairs: Vec<(usize, usize, f32)>,
        /// Whether quarantined shards were skipped ([`STATUS_OK_DEGRADED`]).
        degraded: bool,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Answer to [`Request::KnnSubset`]: the pairs plus the subset positions that
    /// were quarantined and contributed nothing (non-empty selects
    /// [`STATUS_OK_DEGRADED`] on the wire).
    KnnSubset {
        /// `(query position, corpus id, cosine score)` rows over the subset.
        pairs: Vec<(usize, usize, f32)>,
        /// Subset positions that were quarantined on the server.
        missing_shards: Vec<usize>,
    },
    /// Answer to [`Request::Embed`]: one encoder vector per input text, in order.
    Embeddings(Vec<Vec<f32>>),
    /// Answer to [`Request::MatchPairs`]: one match probability per pair, in order.
    MatchScores(Vec<f32>),
    /// The request was shed without running (admission queue full or deadline
    /// expired); retry after backoff.
    Busy,
    /// The server rejected or failed the request with this message.
    Error(String),
}

fn push_pairs(out: &mut Vec<u8>, pairs: &[(usize, usize, f32)]) {
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(query, id, score) in pairs {
        out.extend_from_slice(&(query as u32).to_le_bytes());
        out.extend_from_slice(&(id as u64).to_le_bytes());
        out.extend_from_slice(&score.to_le_bytes());
    }
}

fn read_pairs(r: &mut Reader<'_>, what: &str) -> Result<Vec<(usize, usize, f32)>, ProtocolError> {
    let count = r.u32(what)? as usize;
    if r.remaining() != count * 16 {
        return Err(ProtocolError::Malformed(format!(
            "{what} is {} bytes, expected {count} pairs",
            r.body.len()
        )));
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let query = r.u32(what)? as usize;
        let id_bytes: [u8; 8] = r.body[r.at..r.at + 8].try_into().unwrap();
        r.at += 8;
        let id = u64::from_le_bytes(id_bytes) as usize;
        let score = f32::from_le_bytes(r.body[r.at..r.at + 4].try_into().unwrap());
        r.at += 4;
        pairs.push((query, id, score));
    }
    Ok(pairs)
}

impl Response {
    /// Serializes this response into a frame payload (status byte + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Knn { pairs, degraded } => {
                let mut out = Vec::with_capacity(5 + pairs.len() * 16);
                out.push(if *degraded {
                    STATUS_OK_DEGRADED
                } else {
                    STATUS_OK
                });
                push_pairs(&mut out, pairs);
                out
            }
            Response::Pong => vec![STATUS_OK],
            Response::Stats(stats) => {
                let mut out = Vec::with_capacity(1 + 11 * 8);
                out.push(STATUS_OK);
                for v in [
                    stats.len,
                    stats.dim,
                    stats.num_shards,
                    stats.spilled_shards,
                    stats.served_requests,
                    stats.batched_joins,
                    stats.cache_hits,
                    stats.cache_misses,
                    stats.busy_rejections,
                    stats.deadline_expirations,
                    stats.degraded_joins,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            Response::KnnSubset {
                pairs,
                missing_shards,
            } => {
                let mut out = Vec::with_capacity(9 + missing_shards.len() * 4 + pairs.len() * 16);
                out.push(if missing_shards.is_empty() {
                    STATUS_OK
                } else {
                    STATUS_OK_DEGRADED
                });
                out.extend_from_slice(&(missing_shards.len() as u32).to_le_bytes());
                for &s in missing_shards {
                    out.extend_from_slice(&(s as u32).to_le_bytes());
                }
                push_pairs(&mut out, pairs);
                out
            }
            Response::Embeddings(vectors) => {
                let dim = vectors.first().map_or(0, Vec::len);
                let mut out = Vec::with_capacity(9 + vectors.len() * dim * 4);
                out.push(STATUS_OK);
                out.extend_from_slice(&(vectors.len() as u32).to_le_bytes());
                out.extend_from_slice(&(dim as u32).to_le_bytes());
                push_f32s(&mut out, vectors);
                out
            }
            Response::MatchScores(scores) => {
                let mut out = Vec::with_capacity(5 + scores.len() * 4);
                out.push(STATUS_OK);
                out.extend_from_slice(&(scores.len() as u32).to_le_bytes());
                for &s in scores {
                    out.extend_from_slice(&s.to_le_bytes());
                }
                out
            }
            Response::Busy => vec![STATUS_BUSY],
            Response::Error(message) => {
                let bytes = message.as_bytes();
                let mut out = Vec::with_capacity(5 + bytes.len());
                out.push(STATUS_ERR);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
                out
            }
        }
    }

    /// Deserializes a frame payload (status byte + body) into a typed response.
    ///
    /// `kind` is the request being answered — the protocol carries no opcode in
    /// responses (they arrive in request order on a persistent connection), so the
    /// caller supplies it. Degraded statuses are only legal for `KNN`/`KNN_SUBSET`.
    pub fn decode(payload: &[u8], kind: RequestKind) -> Result<Response, ProtocolError> {
        let (&status, body) = match payload.split_first() {
            Some(split) => split,
            None => return Err(ProtocolError::Malformed("empty response payload".into())),
        };
        match status {
            STATUS_BUSY => return Ok(Response::Busy),
            STATUS_ERR => {
                let mut r = Reader::new(body);
                let len = r.u32("error response")? as usize;
                let bytes = r.body.get(r.at..r.at + len).ok_or_else(|| {
                    ProtocolError::Malformed(
                        "error response length disagrees with its payload".into(),
                    )
                })?;
                return Ok(Response::Error(String::from_utf8_lossy(bytes).into_owned()));
            }
            STATUS_OK => {}
            STATUS_OK_DEGRADED => {
                if !matches!(kind, RequestKind::Knn | RequestKind::KnnSubset) {
                    return Err(ProtocolError::Malformed(format!(
                        "degraded status is not legal for a {kind:?} response"
                    )));
                }
            }
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown response status {other}"
                )))
            }
        }
        let degraded = status == STATUS_OK_DEGRADED;
        let mut r = Reader::new(body);
        let response = match kind {
            RequestKind::Knn => Response::Knn {
                pairs: read_pairs(&mut r, "KNN response")?,
                degraded,
            },
            RequestKind::Ping => Response::Pong,
            RequestKind::Stats => {
                if body.len() != 11 * 8 {
                    return Err(ProtocolError::Malformed(format!(
                        "STATS response is {} bytes, expected 88",
                        body.len()
                    )));
                }
                let field =
                    |i: usize| u64::from_le_bytes(body[i * 8..(i + 1) * 8].try_into().unwrap());
                r.at = body.len();
                Response::Stats(ServerStats {
                    len: field(0),
                    dim: field(1),
                    num_shards: field(2),
                    spilled_shards: field(3),
                    served_requests: field(4),
                    batched_joins: field(5),
                    cache_hits: field(6),
                    cache_misses: field(7),
                    busy_rejections: field(8),
                    deadline_expirations: field(9),
                    degraded_joins: field(10),
                })
            }
            RequestKind::KnnSubset => {
                let num_missing = r.u32("KNN_SUBSET response")? as usize;
                if num_missing.checked_mul(4).is_none_or(|b| b > r.remaining()) {
                    return Err(ProtocolError::Malformed(format!(
                        "KNN_SUBSET response is {} bytes, too short for {num_missing} missing shards",
                        body.len()
                    )));
                }
                let mut missing = Vec::with_capacity(num_missing);
                for _ in 0..num_missing {
                    missing.push(r.u32("KNN_SUBSET response")? as usize);
                }
                Response::KnnSubset {
                    pairs: read_pairs(&mut r, "KNN_SUBSET response")?,
                    missing_shards: missing,
                }
            }
            RequestKind::Embed => {
                let num = r.u32("EMBED response")? as usize;
                let dim = r.u32("EMBED response")? as usize;
                Response::Embeddings(r.f32_rows(num, dim, "EMBED response")?)
            }
            RequestKind::MatchPairs => {
                let num = r.u32("MATCH response")? as usize;
                if r.remaining() != num * 4 {
                    return Err(ProtocolError::Malformed(format!(
                        "MATCH response is {} bytes, expected {num} scores",
                        body.len()
                    )));
                }
                let mut scores = Vec::with_capacity(num);
                for _ in 0..num {
                    scores.push(f32::from_le_bytes(
                        r.body[r.at..r.at + 4].try_into().unwrap(),
                    ));
                    r.at += 4;
                }
                Response::MatchScores(scores)
            }
        };
        r.finish("response")?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_request_round_trips() {
        let req = Request::Knn {
            queries: vec![vec![1.0f32, -2.5], vec![0.0, 3.25]],
            k: 7,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn knn_response_round_trips() {
        let resp = Response::Knn {
            pairs: vec![(0usize, 42usize, 0.75f32), (1, 7, -0.25)],
            degraded: false,
        };
        assert_eq!(
            Response::decode(&resp.encode(), RequestKind::Knn).unwrap(),
            resp
        );
    }

    #[test]
    fn degraded_knn_response_keeps_the_body_but_flags_the_status() {
        let resp = Response::Knn {
            pairs: vec![(0usize, 3usize, 0.5f32)],
            degraded: true,
        };
        let payload = resp.encode();
        assert_eq!(payload[0], STATUS_OK_DEGRADED);
        assert_eq!(Response::decode(&payload, RequestKind::Knn).unwrap(), resp);
    }

    #[test]
    fn knn_subset_request_round_trips() {
        let req = Request::KnnSubset {
            queries: vec![vec![1.0f32, -2.5], vec![0.0, 3.25]],
            k: 5,
            shards: vec![0usize, 7, 3],
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn knn_subset_response_round_trips_and_degrades_on_missing_shards() {
        let pairs = vec![(0usize, 42usize, 0.75f32), (1, 7, -0.25)];
        let clean = Response::KnnSubset {
            pairs: pairs.clone(),
            missing_shards: vec![],
        };
        assert_eq!(clean.encode()[0], STATUS_OK);
        assert_eq!(
            Response::decode(&clean.encode(), RequestKind::KnnSubset).unwrap(),
            clean
        );

        let degraded = Response::KnnSubset {
            pairs,
            missing_shards: vec![3, 9],
        };
        assert_eq!(degraded.encode()[0], STATUS_OK_DEGRADED);
        assert_eq!(
            Response::decode(&degraded.encode(), RequestKind::KnnSubset).unwrap(),
            degraded
        );
    }

    #[test]
    fn embed_and_match_round_trip() {
        let embed = Request::Embed {
            texts: vec!["COL a VAL b".into(), "".into(), "héllo".into()],
        };
        assert_eq!(Request::decode(&embed.encode()).unwrap(), embed);

        let mismatched = Request::MatchPairs {
            lefts: vec!["a".into(), "b".into()],
            rights: vec!["c".into()],
        };
        // Mismatched pair counts are protocol-legal: the server answers with a
        // typed error, not the codec.
        assert_eq!(Request::decode(&mismatched.encode()).unwrap(), mismatched);

        let vectors = Response::Embeddings(vec![vec![1.0f32, 2.0], vec![-0.5, 0.25]]);
        assert_eq!(
            Response::decode(&vectors.encode(), RequestKind::Embed).unwrap(),
            vectors
        );
        let scores = Response::MatchScores(vec![0.125f32, 0.875]);
        assert_eq!(
            Response::decode(&scores.encode(), RequestKind::MatchPairs).unwrap(),
            scores
        );
    }

    #[test]
    fn embed_rejects_bad_utf8_and_overrun_lengths() {
        let mut payload = Request::Embed {
            texts: vec!["abcd".into()],
        }
        .encode();
        payload[9] = 0xFF; // first byte of "abcd" → invalid UTF-8 lead byte
        assert!(matches!(
            Request::decode(&payload),
            Err(ProtocolError::Malformed(msg)) if msg.contains("UTF-8")
        ));

        let mut overrun = Request::Embed {
            texts: vec!["abcd".into()],
        }
        .encode();
        overrun[5] = 0xFF; // inflate the text length past the payload
        assert!(matches!(
            Request::decode(&overrun),
            Err(ProtocolError::Malformed(msg)) if msg.contains("overruns")
        ));
    }

    #[test]
    fn degraded_status_is_rejected_for_model_responses() {
        let mut payload = Response::MatchScores(vec![0.5]).encode();
        payload[0] = STATUS_OK_DEGRADED;
        assert!(Response::decode(&payload, RequestKind::MatchPairs).is_err());
    }

    #[test]
    fn unknown_opcode_is_a_typed_error() {
        assert_eq!(
            Request::decode(&[0x7F]),
            Err(ProtocolError::UnknownOpcode(0x7F))
        );
        assert_eq!(Request::decode(&[]), Err(ProtocolError::EmptyRequest));
        assert_eq!(
            ProtocolError::UnknownOpcode(0x7F).to_string(),
            "unknown opcode 0x7f"
        );
    }

    #[test]
    fn peek_kind_classifies_without_decoding() {
        let req = Request::KnnSubset {
            queries: vec![vec![1.0, 2.0]],
            k: 1,
            shards: vec![0],
        };
        assert_eq!(
            Request::peek_kind(&req.encode()),
            Some(RequestKind::KnnSubset)
        );
        assert_eq!(Request::peek_kind(&[0x7F]), None);
        assert_eq!(Request::peek_kind(&[]), None);
    }

    #[test]
    fn corrupt_knn_subset_payloads_are_rejected_not_panicked() {
        assert!(Request::decode(&[OP_KNN_SUBSET, 1, 2, 3]).is_err());
        let mut bad = Request::KnnSubset {
            queries: vec![vec![1.0, 2.0]],
            k: 1,
            shards: vec![0],
        }
        .encode();
        bad[5] = 0xFF; // inflate the shard count past the byte length
        assert!(Request::decode(&bad).is_err());
        assert!(Response::decode(&[STATUS_OK, 0, 0, 0], RequestKind::KnnSubset).is_err());
        let mut torn = Response::KnnSubset {
            pairs: vec![(0, 1, 0.5)],
            missing_shards: vec![2],
        }
        .encode();
        torn.truncate(torn.len() - 3);
        assert!(Response::decode(&torn, RequestKind::KnnSubset).is_err());
    }

    #[test]
    fn busy_response_round_trips() {
        let payload = Response::Busy.encode();
        assert_eq!(
            Response::decode(&payload, RequestKind::Knn).unwrap(),
            Response::Busy
        );
    }

    #[test]
    fn stats_round_trips() {
        let stats = ServerStats {
            len: 1,
            dim: 2,
            num_shards: 3,
            spilled_shards: 4,
            served_requests: 5,
            batched_joins: 6,
            cache_hits: 7,
            cache_misses: 8,
            busy_rejections: 9,
            deadline_expirations: 10,
            degraded_joins: 11,
        };
        let payload = Response::Stats(stats).encode();
        assert_eq!(
            Response::decode(&payload, RequestKind::Stats).unwrap(),
            Response::Stats(stats)
        );
    }

    #[test]
    fn errors_carry_their_message() {
        let payload = Response::Error("dimension mismatch".into()).encode();
        assert_eq!(
            Response::decode(&payload, RequestKind::Knn).unwrap(),
            Response::Error("dimension mismatch".into())
        );
    }

    #[test]
    fn corrupt_knn_payload_is_rejected_not_panicked() {
        assert!(Request::decode(&[OP_KNN, 1, 2, 3]).is_err());
        // Counts that disagree with the byte length (including overflow-bait).
        let mut bad = Request::Knn {
            queries: vec![vec![1.0, 2.0]],
            k: 1,
        }
        .encode();
        bad[5] = 0xFF; // inflate num_queries
        assert!(Request::decode(&bad).is_err());
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(oversized)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "got: {err}");
    }

    /// The golden-frame interop pin: the byte layout of every pre-existing frame
    /// (KNN / PING / STATS / KNN_SUBSET requests and their responses), written out
    /// by hand, must survive the typed-enum redesign byte for byte — an old client
    /// speaking the original free-function codec must interoperate unchanged.
    #[test]
    fn golden_frames_pin_the_pre_enum_wire_bytes() {
        // KNN request: opcode 0x01 · k=7 · 2 queries · dim 2 · [1.0, -2.5, 0.0, 3.25].
        let knn = Request::Knn {
            queries: vec![vec![1.0f32, -2.5], vec![0.0, 3.25]],
            k: 7,
        };
        #[rustfmt::skip]
        let knn_golden: Vec<u8> = vec![
            0x01,
            7, 0, 0, 0,
            2, 0, 0, 0,
            2, 0, 0, 0,
            0x00, 0x00, 0x80, 0x3F, // 1.0f32
            0x00, 0x00, 0x20, 0xC0, // -2.5f32
            0x00, 0x00, 0x00, 0x00, // 0.0f32
            0x00, 0x00, 0x50, 0x40, // 3.25f32
        ];
        assert_eq!(knn.encode(), knn_golden);

        // PING and STATS requests: a bare opcode byte.
        assert_eq!(Request::Ping.encode(), vec![0x02]);
        assert_eq!(Request::Stats.encode(), vec![0x03]);

        // KNN_SUBSET request: opcode 0x04 · k=5 · shards [0, 7] · 1 query · dim 2.
        let subset = Request::KnnSubset {
            queries: vec![vec![1.0f32, -2.5]],
            k: 5,
            shards: vec![0, 7],
        };
        #[rustfmt::skip]
        let subset_golden: Vec<u8> = vec![
            0x04,
            5, 0, 0, 0,
            2, 0, 0, 0,
            0, 0, 0, 0,
            7, 0, 0, 0,
            1, 0, 0, 0,
            2, 0, 0, 0,
            0x00, 0x00, 0x80, 0x3F,
            0x00, 0x00, 0x20, 0xC0,
        ];
        assert_eq!(subset.encode(), subset_golden);

        // KNN ok response: status 0x00 · 1 pair (query=1, id=42, score=0.75).
        let knn_ok = Response::Knn {
            pairs: vec![(1usize, 42usize, 0.75f32)],
            degraded: false,
        };
        #[rustfmt::skip]
        let knn_ok_golden: Vec<u8> = vec![
            0x00,
            1, 0, 0, 0,
            1, 0, 0, 0,
            42, 0, 0, 0, 0, 0, 0, 0,
            0x00, 0x00, 0x40, 0x3F, // 0.75f32
        ];
        assert_eq!(knn_ok.encode(), knn_ok_golden);

        // Degraded flips only the status byte.
        let knn_degraded = Response::Knn {
            pairs: vec![(1usize, 42usize, 0.75f32)],
            degraded: true,
        };
        let mut knn_degraded_golden = knn_ok_golden;
        knn_degraded_golden[0] = 0x03;
        assert_eq!(knn_degraded.encode(), knn_degraded_golden);

        // PING ok response: a bare status byte.
        assert_eq!(Response::Pong.encode(), vec![0x00]);

        // STATS ok response: status 0x00 · 11 u64 fields in declaration order.
        let stats = Response::Stats(ServerStats {
            len: 1,
            dim: 2,
            num_shards: 3,
            spilled_shards: 4,
            served_requests: 5,
            batched_joins: 6,
            cache_hits: 7,
            cache_misses: 8,
            busy_rejections: 9,
            deadline_expirations: 10,
            degraded_joins: 11,
        });
        let mut stats_golden = vec![0x00];
        for v in 1u64..=11 {
            stats_golden.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(stats.encode(), stats_golden);

        // KNN_SUBSET degraded response: status 0x03 · missing [3] · 1 pair.
        let subset_resp = Response::KnnSubset {
            pairs: vec![(0usize, 9usize, -0.25f32)],
            missing_shards: vec![3],
        };
        #[rustfmt::skip]
        let subset_resp_golden: Vec<u8> = vec![
            0x03,
            1, 0, 0, 0,
            3, 0, 0, 0,
            1, 0, 0, 0,
            0, 0, 0, 0,
            9, 0, 0, 0, 0, 0, 0, 0,
            0x00, 0x00, 0x80, 0xBE, // -0.25f32
        ];
        assert_eq!(subset_resp.encode(), subset_resp_golden);

        // BUSY: a bare status byte. ERROR: status 0x01 · length · UTF-8 message.
        assert_eq!(Response::Busy.encode(), vec![0x02]);
        let error = Response::Error("no".into());
        assert_eq!(error.encode(), vec![0x01, 2, 0, 0, 0, b'n', b'o']);
    }
}
