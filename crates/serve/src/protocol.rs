//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! The protocol is deliberately small — a handful of opcodes, fixed-width
//! little-endian integers, IEEE-754 `f32` scores — so a client in any language is an
//! afternoon's work and the server never parses anything variable-length except query
//! payloads whose size it has already bounds-checked.
//!
//! ## Framing
//!
//! Every message (either direction) is one **frame**:
//!
//! ```text
//! length  u32 LE     byte length of the payload that follows (<= MAX_FRAME_LEN)
//! payload length bytes
//! ```
//!
//! A request payload starts with an opcode byte; a response payload starts with a
//! status byte ([`STATUS_OK`] / [`STATUS_ERR`] / [`STATUS_BUSY`] /
//! [`STATUS_OK_DEGRADED`]). Connections are persistent: a client sends any number of
//! frames and reads one response per request, in order (the protocol is pipelinable —
//! responses never reorder).
//!
//! ## Requests
//!
//! ```text
//! KNN  (0x01): k u32 · num_queries u32 · dim u32 · queries f32×(num·dim), row-major
//! PING (0x02): empty
//! STATS(0x03): empty
//! KNN_SUBSET (0x04): k u32 · num_shards u32 · shard u32×num_shards
//!                    · num_queries u32 · dim u32 · queries f32×(num·dim), row-major
//! ```
//!
//! A `KNN` request carries a whole **query batch** — batching is the unit of both
//! network amortization and the server-side query cache key, so clients should send
//! their natural batch, not one query per frame.
//!
//! A `KNN_SUBSET` request is the scatter half of distributed scatter-gather: it asks
//! for the join restricted to the named **shard positions** of the served snapshot.
//! A coordinator that partitions the shard space across serve processes and merges
//! the per-subset responses through the index's bounded-heap selector reconstructs
//! the whole-corpus join bit-identically (see `sudowoodo-coord`).
//!
//! ## Responses
//!
//! ```text
//! ok KNN:   0x00 · num_pairs u32 · (query u32 · id u64 · score f32)×num_pairs
//! ok PING:  0x00
//! ok STATS: 0x00 · len u64 · dim u64 · num_shards u64 · spilled u64
//!                · served_requests u64 · batched_joins u64
//!                · cache_hits u64 · cache_misses u64
//!                · busy_rejections u64 · deadline_expirations u64
//!                · degraded_joins u64
//! ok KNN_SUBSET: 0x00 · num_missing u32 · shard u32×num_missing
//!                     · num_pairs u32 · (query u32 · id u64 · score f32)×num_pairs
//! degraded: 0x03 · same body as the ok of the same opcode
//! busy:     0x02 · empty
//! error:    0x01 · message_len u32 · UTF-8 message
//! ```
//!
//! A `KNN_SUBSET` body leads with the **missing shards**: subset positions that were
//! quarantined on the server and therefore contributed no rows (always empty when the
//! status is plain ok). The coordinator needs the positions — not just a flag — to
//! attribute the loss and to try the shard set's surviving replica.
//!
//! An error response answers exactly the request that caused it (a dimension
//! mismatch, an oversized frame, an unknown opcode); the connection stays usable.
//! The three non-`0x00` statuses are the failure model on the wire:
//!
//! * **busy** — the admission queue is full (load shed) or the request's deadline
//!   expired before the join ran. The request was *not* executed; it is always safe
//!   to retry after a backoff.
//! * **degraded** — the join ran, but one or more index shards were quarantined
//!   (unreadable storage), so rows from those shards are missing. The pairs that are
//!   present are exact; the set is explicitly incomplete, never silently wrong.
//! * **error** — the request or the handler failed; the message says why. Errors are
//!   not retried blindly (the same request would fail the same way).

use std::io::{self, Read, Write};

/// Largest accepted frame payload (64 MiB) — bounds server memory against garbage or
/// hostile length prefixes while allowing ~500k 32-dimensional queries per batch.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Request opcode: k-nearest-neighbor join over a query batch.
pub const OP_KNN: u8 = 0x01;
/// Request opcode: liveness check.
pub const OP_PING: u8 = 0x02;
/// Request opcode: server/index statistics.
pub const OP_STATS: u8 = 0x03;
/// Request opcode: k-nearest-neighbor join restricted to a subset of shard positions
/// (the scatter half of distributed scatter-gather).
pub const OP_KNN_SUBSET: u8 = 0x04;

/// Response status: success; the opcode-specific body follows.
pub const STATUS_OK: u8 = 0x00;
/// Response status: failure; a UTF-8 message follows.
pub const STATUS_ERR: u8 = 0x01;
/// Response status: load shed — the admission queue was full (or the request's
/// deadline expired before it ran). The request was not executed; retry after backoff.
pub const STATUS_BUSY: u8 = 0x02;
/// Response status: success with degraded coverage — quarantined shards were skipped,
/// so the (otherwise exact) `KNN` body is explicitly incomplete.
pub const STATUS_OK_DEGRADED: u8 = 0x03;

/// Server and index statistics returned by a `STATS` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Live vectors in the served index.
    pub len: u64,
    /// Vector dimensionality of the served index.
    pub dim: u64,
    /// Shards of the served index (1 for the dense layout).
    pub num_shards: u64,
    /// Shards currently on disk (snapshot-cold or budget-spilled; 0 for dense).
    pub spilled_shards: u64,
    /// Total requests answered since the server started (all opcodes).
    pub served_requests: u64,
    /// `knn_join` executions that served more than one client request at once —
    /// the request batcher's coalescing at work.
    pub batched_joins: u64,
    /// Query-cache hits observed by the served index (sharded layout; 0 otherwise).
    pub cache_hits: u64,
    /// Query-cache misses observed by the served index (sharded layout; 0 otherwise).
    pub cache_misses: u64,
    /// `KNN` requests answered with [`STATUS_BUSY`] because the admission queue was
    /// full — the server shed load instead of queueing without bound.
    pub busy_rejections: u64,
    /// `KNN` requests whose per-request deadline expired while they waited in the
    /// admission queue (also answered with [`STATUS_BUSY`]; the join never ran).
    pub deadline_expirations: u64,
    /// `knn_join` executions that returned degraded (quarantined shards skipped).
    pub degraded_joins: u64,
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed an idle connection); errors on a torn frame or an oversized
/// length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte protocol limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serializes a `KNN` request payload.
pub fn encode_knn_request(queries: &[Vec<f32>], k: usize, dim: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 12 + queries.len() * dim * 4);
    out.push(OP_KNN);
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    for q in queries {
        for &x in q {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

/// Deserializes a `KNN` request payload (after the opcode byte) into
/// `(queries, k)`. Validates the advertised counts against the actual byte length.
pub fn decode_knn_request(body: &[u8]) -> Result<(Vec<Vec<f32>>, usize), String> {
    if body.len() < 12 {
        return Err("truncated KNN header".into());
    }
    let k = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
    let num = u32::from_le_bytes(body[4..8].try_into().unwrap()) as usize;
    let dim = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let expected = num
        .checked_mul(dim)
        .and_then(|f| f.checked_mul(4))
        .and_then(|b| b.checked_add(12));
    if expected != Some(body.len()) {
        return Err(format!(
            "KNN payload is {} bytes, expected {num} x {dim} queries ({:?} bytes)",
            body.len(),
            expected
        ));
    }
    let mut queries = Vec::with_capacity(num);
    let mut offset = 12;
    for _ in 0..num {
        let mut q = Vec::with_capacity(dim);
        for _ in 0..dim {
            q.push(f32::from_le_bytes(
                body[offset..offset + 4].try_into().unwrap(),
            ));
            offset += 4;
        }
        queries.push(q);
    }
    Ok((queries, k))
}

/// Serializes a successful `KNN` response payload. `degraded` selects the
/// [`STATUS_OK_DEGRADED`] status byte (same body layout) so the client learns the
/// result is incomplete without a second channel.
pub fn encode_knn_response(pairs: &[(usize, usize, f32)], degraded: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 4 + pairs.len() * 16);
    out.push(if degraded {
        STATUS_OK_DEGRADED
    } else {
        STATUS_OK
    });
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(query, id, score) in pairs {
        out.extend_from_slice(&(query as u32).to_le_bytes());
        out.extend_from_slice(&(id as u64).to_le_bytes());
        out.extend_from_slice(&score.to_le_bytes());
    }
    out
}

/// Deserializes a `KNN` response body (after the status byte).
pub fn decode_knn_response(body: &[u8]) -> Result<Vec<(usize, usize, f32)>, String> {
    if body.len() < 4 {
        return Err("truncated KNN response".into());
    }
    let count = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
    if body.len() != 4 + count * 16 {
        return Err(format!(
            "KNN response is {} bytes, expected {count} pairs",
            body.len()
        ));
    }
    let mut pairs = Vec::with_capacity(count);
    let mut offset = 4;
    for _ in 0..count {
        let query = u32::from_le_bytes(body[offset..offset + 4].try_into().unwrap()) as usize;
        let id = u64::from_le_bytes(body[offset + 4..offset + 12].try_into().unwrap()) as usize;
        let score = f32::from_le_bytes(body[offset + 12..offset + 16].try_into().unwrap());
        pairs.push((query, id, score));
        offset += 16;
    }
    Ok(pairs)
}

/// Serializes a `KNN_SUBSET` request payload.
pub fn encode_knn_subset_request(
    queries: &[Vec<f32>],
    k: usize,
    dim: usize,
    shards: &[usize],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 16 + shards.len() * 4 + queries.len() * dim * 4);
    out.push(OP_KNN_SUBSET);
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    for &s in shards {
        out.extend_from_slice(&(s as u32).to_le_bytes());
    }
    out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    for q in queries {
        for &x in q {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

/// A decoded `KNN_SUBSET` request: `(queries, k, shard positions)`.
pub type SubsetRequest = (Vec<Vec<f32>>, usize, Vec<usize>);

/// A decoded `KNN_SUBSET` answer: `(pairs, missing shard positions)` — the pairs are
/// exact over the subset minus the missing shards.
pub type SubsetAnswer = (Vec<(usize, usize, f32)>, Vec<usize>);

/// Deserializes a `KNN_SUBSET` request payload (after the opcode byte) into
/// `(queries, k, shards)`. Validates the advertised counts against the byte length.
pub fn decode_knn_subset_request(body: &[u8]) -> Result<SubsetRequest, String> {
    if body.len() < 8 {
        return Err("truncated KNN_SUBSET header".into());
    }
    let k = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
    let num_shards = u32::from_le_bytes(body[4..8].try_into().unwrap()) as usize;
    let after_shards = num_shards
        .checked_mul(4)
        .and_then(|b| b.checked_add(8))
        .ok_or("KNN_SUBSET shard count overflows")?;
    if body.len() < after_shards + 8 {
        return Err(format!(
            "KNN_SUBSET payload is {} bytes, too short for {num_shards} shards",
            body.len()
        ));
    }
    let mut shards = Vec::with_capacity(num_shards);
    for i in 0..num_shards {
        let at = 8 + i * 4;
        shards.push(u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) as usize);
    }
    let num = u32::from_le_bytes(body[after_shards..after_shards + 4].try_into().unwrap()) as usize;
    let dim =
        u32::from_le_bytes(body[after_shards + 4..after_shards + 8].try_into().unwrap()) as usize;
    let expected = num
        .checked_mul(dim)
        .and_then(|f| f.checked_mul(4))
        .and_then(|b| b.checked_add(after_shards + 8));
    if expected != Some(body.len()) {
        return Err(format!(
            "KNN_SUBSET payload is {} bytes, expected {num} x {dim} queries ({expected:?} bytes)",
            body.len()
        ));
    }
    let mut queries = Vec::with_capacity(num);
    let mut offset = after_shards + 8;
    for _ in 0..num {
        let mut q = Vec::with_capacity(dim);
        for _ in 0..dim {
            q.push(f32::from_le_bytes(
                body[offset..offset + 4].try_into().unwrap(),
            ));
            offset += 4;
        }
        queries.push(q);
    }
    Ok((queries, k, shards))
}

/// Serializes a successful `KNN_SUBSET` response payload: the subset positions that
/// were quarantined (missing from the answer) followed by the pairs. A non-empty
/// `missing_shards` selects [`STATUS_OK_DEGRADED`].
pub fn encode_knn_subset_response(
    pairs: &[(usize, usize, f32)],
    missing_shards: &[usize],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + missing_shards.len() * 4 + pairs.len() * 16);
    out.push(if missing_shards.is_empty() {
        STATUS_OK
    } else {
        STATUS_OK_DEGRADED
    });
    out.extend_from_slice(&(missing_shards.len() as u32).to_le_bytes());
    for &s in missing_shards {
        out.extend_from_slice(&(s as u32).to_le_bytes());
    }
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(query, id, score) in pairs {
        out.extend_from_slice(&(query as u32).to_le_bytes());
        out.extend_from_slice(&(id as u64).to_le_bytes());
        out.extend_from_slice(&score.to_le_bytes());
    }
    out
}

/// Deserializes a `KNN_SUBSET` response body (after the status byte) into
/// `(pairs, missing_shards)`.
pub fn decode_knn_subset_response(body: &[u8]) -> Result<SubsetAnswer, String> {
    if body.len() < 4 {
        return Err("truncated KNN_SUBSET response".into());
    }
    let num_missing = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
    let after_missing = num_missing
        .checked_mul(4)
        .and_then(|b| b.checked_add(4))
        .ok_or("KNN_SUBSET missing-shard count overflows")?;
    if body.len() < after_missing + 4 {
        return Err(format!(
            "KNN_SUBSET response is {} bytes, too short for {num_missing} missing shards",
            body.len()
        ));
    }
    let mut missing = Vec::with_capacity(num_missing);
    for i in 0..num_missing {
        let at = 4 + i * 4;
        missing.push(u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) as usize);
    }
    let count =
        u32::from_le_bytes(body[after_missing..after_missing + 4].try_into().unwrap()) as usize;
    if body.len() != after_missing + 4 + count * 16 {
        return Err(format!(
            "KNN_SUBSET response is {} bytes, expected {count} pairs",
            body.len()
        ));
    }
    let mut pairs = Vec::with_capacity(count);
    let mut offset = after_missing + 4;
    for _ in 0..count {
        let query = u32::from_le_bytes(body[offset..offset + 4].try_into().unwrap()) as usize;
        let id = u64::from_le_bytes(body[offset + 4..offset + 12].try_into().unwrap()) as usize;
        let score = f32::from_le_bytes(body[offset + 12..offset + 16].try_into().unwrap());
        pairs.push((query, id, score));
        offset += 16;
    }
    Ok((pairs, missing))
}

/// Serializes a successful `STATS` response payload.
pub fn encode_stats_response(stats: &ServerStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 11 * 8);
    out.push(STATUS_OK);
    for v in [
        stats.len,
        stats.dim,
        stats.num_shards,
        stats.spilled_shards,
        stats.served_requests,
        stats.batched_joins,
        stats.cache_hits,
        stats.cache_misses,
        stats.busy_rejections,
        stats.deadline_expirations,
        stats.degraded_joins,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes a `STATS` response body (after the status byte).
pub fn decode_stats_response(body: &[u8]) -> Result<ServerStats, String> {
    if body.len() != 11 * 8 {
        return Err(format!(
            "STATS response is {} bytes, expected 88",
            body.len()
        ));
    }
    let field = |i: usize| u64::from_le_bytes(body[i * 8..(i + 1) * 8].try_into().unwrap());
    Ok(ServerStats {
        len: field(0),
        dim: field(1),
        num_shards: field(2),
        spilled_shards: field(3),
        served_requests: field(4),
        batched_joins: field(5),
        cache_hits: field(6),
        cache_misses: field(7),
        busy_rejections: field(8),
        deadline_expirations: field(9),
        degraded_joins: field(10),
    })
}

/// Serializes a [`STATUS_BUSY`] response payload (load shed / deadline expired).
pub fn encode_busy_response() -> Vec<u8> {
    vec![STATUS_BUSY]
}

/// Serializes an error response payload.
pub fn encode_error_response(message: &str) -> Vec<u8> {
    let bytes = message.as_bytes();
    let mut out = Vec::with_capacity(1 + 4 + bytes.len());
    out.push(STATUS_ERR);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// A classified response payload — every status byte a server can legally send.
#[derive(Debug, PartialEq, Eq)]
pub enum Response<'a> {
    /// [`STATUS_OK`]: the opcode-specific body.
    Ok(&'a [u8]),
    /// [`STATUS_OK_DEGRADED`]: same body as `Ok`, but quarantined shards were
    /// skipped — the result is explicitly incomplete.
    OkDegraded(&'a [u8]),
    /// [`STATUS_BUSY`]: the request was shed without running; retry after backoff.
    Busy,
    /// [`STATUS_ERR`]: the server rejected or failed the request with this message.
    Err(String),
}

/// Splits a response payload into its [`Response`] classification.
pub fn split_response(payload: &[u8]) -> io::Result<Response<'_>> {
    let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    match payload.first() {
        Some(&STATUS_OK) => Ok(Response::Ok(&payload[1..])),
        Some(&STATUS_OK_DEGRADED) => Ok(Response::OkDegraded(&payload[1..])),
        Some(&STATUS_BUSY) => Ok(Response::Busy),
        Some(&STATUS_ERR) => {
            if payload.len() < 5 {
                return Err(invalid("truncated error response"));
            }
            let len = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
            let bytes = payload
                .get(5..5 + len)
                .ok_or_else(|| invalid("error response length disagrees with its payload"))?;
            Ok(Response::Err(String::from_utf8_lossy(bytes).into_owned()))
        }
        Some(&other) => Err(invalid(&format!("unknown response status {other}"))),
        None => Err(invalid("empty response payload")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_request_round_trips() {
        let queries = vec![vec![1.0f32, -2.5], vec![0.0, 3.25]];
        let payload = encode_knn_request(&queries, 7, 2);
        assert_eq!(payload[0], OP_KNN);
        let (decoded, k) = decode_knn_request(&payload[1..]).unwrap();
        assert_eq!((decoded, k), (queries, 7));
    }

    #[test]
    fn knn_response_round_trips() {
        let pairs = vec![(0usize, 42usize, 0.75f32), (1, 7, -0.25)];
        let payload = encode_knn_response(&pairs, false);
        let Response::Ok(body) = split_response(&payload).unwrap() else {
            panic!("expected Ok");
        };
        assert_eq!(decode_knn_response(body).unwrap(), pairs);
    }

    #[test]
    fn degraded_knn_response_keeps_the_body_but_flags_the_status() {
        let pairs = vec![(0usize, 3usize, 0.5f32)];
        let payload = encode_knn_response(&pairs, true);
        assert_eq!(payload[0], STATUS_OK_DEGRADED);
        let Response::OkDegraded(body) = split_response(&payload).unwrap() else {
            panic!("expected OkDegraded");
        };
        assert_eq!(decode_knn_response(body).unwrap(), pairs);
    }

    #[test]
    fn knn_subset_request_round_trips() {
        let queries = vec![vec![1.0f32, -2.5], vec![0.0, 3.25]];
        let shards = vec![0usize, 7, 3];
        let payload = encode_knn_subset_request(&queries, 5, 2, &shards);
        assert_eq!(payload[0], OP_KNN_SUBSET);
        let (decoded, k, decoded_shards) = decode_knn_subset_request(&payload[1..]).unwrap();
        assert_eq!((decoded, k, decoded_shards), (queries, 5, shards));
    }

    #[test]
    fn knn_subset_response_round_trips_and_degrades_on_missing_shards() {
        let pairs = vec![(0usize, 42usize, 0.75f32), (1, 7, -0.25)];
        let clean = encode_knn_subset_response(&pairs, &[]);
        let Response::Ok(body) = split_response(&clean).unwrap() else {
            panic!("expected Ok");
        };
        assert_eq!(
            decode_knn_subset_response(body).unwrap(),
            (pairs.clone(), vec![])
        );

        let degraded = encode_knn_subset_response(&pairs, &[3, 9]);
        assert_eq!(degraded[0], STATUS_OK_DEGRADED);
        let Response::OkDegraded(body) = split_response(&degraded).unwrap() else {
            panic!("expected OkDegraded");
        };
        assert_eq!(
            decode_knn_subset_response(body).unwrap(),
            (pairs, vec![3, 9])
        );
    }

    #[test]
    fn corrupt_knn_subset_payloads_are_rejected_not_panicked() {
        assert!(decode_knn_subset_request(&[1, 2, 3]).is_err());
        let mut bad = encode_knn_subset_request(&[vec![1.0, 2.0]], 1, 2, &[0]);
        bad[5] = 0xFF; // inflate the shard count past the byte length
        assert!(decode_knn_subset_request(&bad[1..]).is_err());
        assert!(decode_knn_subset_response(&[0, 0, 0]).is_err());
        let mut torn = encode_knn_subset_response(&[(0, 1, 0.5)], &[2]);
        torn.truncate(torn.len() - 3);
        assert!(decode_knn_subset_response(&torn[1..]).is_err());
    }

    #[test]
    fn busy_response_round_trips() {
        let payload = encode_busy_response();
        assert_eq!(split_response(&payload).unwrap(), Response::Busy);
    }

    #[test]
    fn stats_round_trips() {
        let stats = ServerStats {
            len: 1,
            dim: 2,
            num_shards: 3,
            spilled_shards: 4,
            served_requests: 5,
            batched_joins: 6,
            cache_hits: 7,
            cache_misses: 8,
            busy_rejections: 9,
            deadline_expirations: 10,
            degraded_joins: 11,
        };
        let payload = encode_stats_response(&stats);
        let Response::Ok(body) = split_response(&payload).unwrap() else {
            panic!("expected Ok");
        };
        assert_eq!(decode_stats_response(body).unwrap(), stats);
    }

    #[test]
    fn errors_carry_their_message() {
        let payload = encode_error_response("dimension mismatch");
        assert_eq!(
            split_response(&payload).unwrap(),
            Response::Err("dimension mismatch".into())
        );
    }

    #[test]
    fn corrupt_knn_payload_is_rejected_not_panicked() {
        assert!(decode_knn_request(&[1, 2, 3]).is_err());
        // Counts that disagree with the byte length (including overflow-bait).
        let mut bad = encode_knn_request(&[vec![1.0, 2.0]], 1, 2);
        bad[5] = 0xFF; // inflate num_queries
        assert!(decode_knn_request(&bad[1..]).is_err());
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(oversized)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "got: {err}");
    }
}
