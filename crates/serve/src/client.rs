//! The client half of the wire protocol: a thin, synchronous connection handle.
//!
//! One [`ServeClient`] wraps one TCP connection. Calls are blocking request/response;
//! for concurrency, open one client per thread (the server handles each connection on
//! its own thread and coalesces concurrent joins server-side, so N clients cost one
//! GEMM pass when their requests land together).
//!
//! ## One retry loop
//!
//! Every typed method — [`ServeClient::knn_join`], [`ServeClient::knn_join_subset`],
//! [`ServeClient::embed`], [`ServeClient::match_pairs`] — is a thin wrapper over one
//! core, [`ServeClient::request`]: encode a [`Request`], round-trip the frame, decode
//! the [`Response`], and apply the retry policy. Retry/backoff/reconnect therefore
//! lives in exactly one place; a wrapper only chooses the request variant and unpacks
//! the matching response variant.
//!
//! ## Failure handling
//!
//! The client carries a [`ClientConfig`]:
//!
//! * **Read timeout** — a server that accepts the connection and then never answers
//!   (wedged worker, partitioned network) surfaces as a timeout error instead of
//!   blocking the caller forever. It mirrors the server's own write-timeout
//!   discipline: neither side of the protocol will wait unboundedly on the other.
//! * **Retry policy** ([`RetryPolicy`]) — every request in the protocol is
//!   idempotent (the server mutates nothing on behalf of a client), so transport
//!   failures and `BUSY` load-shed responses are retried with exponential backoff
//!   plus deterministic jitter, reconnecting first when the transport broke. Server
//!   *error* responses are never retried — the same request would fail the same way.
//!   `PING` and `STATS` are deliberately not retried: callers probing liveness want
//!   the first answer, not a flattering one.
//!
//! A degraded response (quarantined shards skipped server-side) is success with a
//! flag: [`ServeClient::knn_join`] returns the pairs, and
//! [`ServeClient::knn_join_detailed`] additionally reports `degraded = true` so
//! callers that must not act on partial coverage can tell.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Request, Response, ServerStats, SubsetAnswer};

/// The typed payload inside every `io::Error` this client produces for a `BUSY`
/// (load-shed) response. The error's *kind* stays
/// [`std::io::ErrorKind::WouldBlock`] for backward compatibility, but kind alone
/// is ambiguous — an OS-level read timeout (`SO_RCVTIMEO`) also surfaces as
/// `WouldBlock` on Linux. Check [`is_busy`] to distinguish "the server answered
/// BUSY, re-probe it later" from "the transport went quiet, treat the endpoint as
/// dead": a coordinator must not blacklist a healthy replica over a shed request.
#[derive(Debug)]
pub struct ServerBusy {
    message: String,
}

impl ServerBusy {
    fn to_error(message: String) -> io::Error {
        io::Error::new(io::ErrorKind::WouldBlock, ServerBusy { message })
    }
}

impl fmt::Display for ServerBusy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServerBusy {}

/// `true` when `err` is a server `BUSY` (load-shed) answer — see [`ServerBusy`].
pub fn is_busy(err: &io::Error) -> bool {
    err.get_ref()
        .is_some_and(|inner| inner.downcast_ref::<ServerBusy>().is_some())
}

/// What [`ServeClient::knn_join_detailed`] returns: the `(query_index, stable_id,
/// score)` pairs plus the degraded flag (`true` when quarantined shards were
/// skipped, making the otherwise exact pair set explicitly incomplete).
pub type DetailedJoin = (Vec<(usize, usize, f32)>, bool);

/// Retry policy for idempotent requests: exponential backoff with deterministic
/// jitter, reconnecting when the transport broke.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling after doubling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream (so tests and reproductions see the
    /// same sleep pattern). Jitter adds 0–50% of the computed backoff.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based): `base << retry`, capped at
    /// `max_backoff`, plus 0–50% deterministic jitter.
    fn backoff(&self, retry: u32, rng: &mut u64) -> Duration {
        let base = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        // A multiplicative LCG (Knuth's constants) is plenty for decorrelating
        // retry storms; cryptographic quality buys nothing here.
        *rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter_percent = (*rng >> 33) % 51; // 0..=50
        base + base.mul_f64(jitter_percent as f64 / 100.0)
    }
}

/// Client-side robustness knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// How long a response read may block before failing with a timeout error.
    /// `None` waits forever (not recommended outside debugging).
    pub read_timeout: Option<Duration>,
    /// Retry policy for idempotent requests (everything except `PING`/`STATS`).
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
        }
    }
}

/// A synchronous client connection to a [`crate::Server`].
///
/// See the crate docs for an end-to-end example (snapshot → serve → query).
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    peer: SocketAddr,
    config: ClientConfig,
    jitter_rng: u64,
}

impl ServeClient {
    /// Connects to a server (e.g. the address returned by [`crate::Server::addr`])
    /// with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        Self::connect_with_config(addr, ClientConfig::default())
    }

    /// [`ServeClient::connect`] with explicit robustness knobs.
    pub fn connect_with_config(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        Self::prepare(&stream, &config)?;
        Ok(ServeClient {
            stream,
            peer,
            config,
            jitter_rng: config.retry.jitter_seed | 1,
        })
    }

    fn prepare(stream: &TcpStream, config: &ClientConfig) -> io::Result<()> {
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_nodelay(true).ok();
        Ok(())
    }

    /// Drops the current connection and dials the same peer again. Used by the
    /// retry loop after a transport failure; callers can also invoke it to recover
    /// a client whose server restarted.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.peer)?;
        Self::prepare(&stream, &self.config)?;
        self.stream = stream;
        Ok(())
    }

    /// Sends one request frame and reads one response frame.
    fn round_trip(&mut self, request: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection before responding",
            )
        })
    }

    /// Turns a server-reported error message into an `io::Error`.
    fn server_error(message: String) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidInput, format!("server: {message}"))
    }

    /// A response variant the request kind rules out — only reachable if the
    /// protocol decoder and the kind table disagree, i.e. a bug, not a peer fault.
    fn unexpected(response: &Response) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("response variant does not answer the request: {response:?}"),
        )
    }

    /// Rejects ragged query batches client-side before anything is sent.
    fn check_rectangular(queries: &[Vec<f32>]) -> io::Result<()> {
        let dim = queries.first().map_or(0, Vec::len);
        if let Some(bad) = queries.iter().position(|q| q.len() != dim) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "query {bad} has dimension {}, expected {dim} (the batch must be \
                     rectangular)",
                    queries[bad].len()
                ),
            ));
        }
        Ok(())
    }

    /// Sends one typed [`Request`] and returns its typed [`Response`] — the single
    /// retry core every typed wrapper goes through.
    ///
    /// Transport failures tear the stream (a response may be half-read), so every
    /// retry of one starts from a fresh connection; `BUSY` leaves the stream clean
    /// and the retry reuses it after the backoff. A server [`Response::Error`] is
    /// surfaced as [`std::io::ErrorKind::InvalidInput`] and never retried — the
    /// same request would fail the same way. [`Response::Busy`] surviving retry
    /// exhaustion becomes a [`ServerBusy`]-carrying error (check [`is_busy`]).
    ///
    /// All other variants — including degraded `KNN` answers — return `Ok`; the
    /// wrappers unpack them.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.request_with_retries(request, self.config.retry.max_retries)
    }

    fn request_with_retries(
        &mut self,
        request: &Request,
        max_retries: u32,
    ) -> io::Result<Response> {
        let payload = request.encode();
        let kind = request.kind();
        let mut retry = 0u32;
        loop {
            let transport_error: Option<io::Error> = match self.round_trip(&payload) {
                Ok(frame) => {
                    let response = Response::decode(&frame, kind)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    match response {
                        Response::Busy => None,
                        Response::Error(message) => return Err(Self::server_error(message)),
                        response => return Ok(response),
                    }
                }
                Err(e) => Some(e),
            };
            if retry >= max_retries {
                return Err(transport_error.unwrap_or_else(|| {
                    ServerBusy::to_error(format!(
                        "server busy (load shed) after {} attempts",
                        max_retries + 1
                    ))
                }));
            }
            let mut rng = self.jitter_rng;
            std::thread::sleep(self.config.retry.backoff(retry, &mut rng));
            self.jitter_rng = rng;
            retry += 1;
            if transport_error.is_some() {
                self.reconnect()?;
            }
        }
    }

    /// Retrieves, for every query, its `k` nearest indexed vectors as
    /// `(query_index, stable_id, score)` pairs — the remote form of
    /// [`sudowoodo_index::BlockingIndex::knn_join`], with identical results and
    /// ordering (query index, then descending score, ascending id on ties).
    ///
    /// Send the natural batch in one call: the batch is the unit of network
    /// amortization *and* of the server's query cache, so a repeated batch answers
    /// without the server touching a single shard.
    ///
    /// Transport failures and `BUSY` load-shed responses are retried per the
    /// configured [`RetryPolicy`] (the request is idempotent). A *degraded* response
    /// still returns its pairs — call [`ServeClient::knn_join_detailed`] to see the
    /// flag.
    ///
    /// # Errors
    /// Exhausted retries over transport failures or `BUSY`, or a server-side
    /// rejection (e.g. a query dimension that does not match the served index)
    /// surfaced as [`std::io::ErrorKind::InvalidInput`] — never retried. Ragged
    /// query batches are rejected client-side before anything is sent.
    pub fn knn_join(
        &mut self,
        queries: &[Vec<f32>],
        k: usize,
    ) -> io::Result<Vec<(usize, usize, f32)>> {
        self.knn_join_detailed(queries, k).map(|(pairs, _)| pairs)
    }

    /// [`ServeClient::knn_join`] plus the degraded flag: `true` when the server
    /// skipped quarantined shards, so the (otherwise exact) pair set is explicitly
    /// incomplete.
    pub fn knn_join_detailed(
        &mut self,
        queries: &[Vec<f32>],
        k: usize,
    ) -> io::Result<DetailedJoin> {
        Self::check_rectangular(queries)?;
        let request = Request::Knn {
            queries: queries.to_vec(),
            k,
        };
        match self.request(&request)? {
            Response::Knn { pairs, degraded } => Ok((pairs, degraded)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// The scatter-gather half of [`ServeClient::knn_join`]: joins `queries` against
    /// only the shards at `shard_positions` (positions in the served snapshot's shard
    /// order), returning the pairs plus the subset shards the server could **not**
    /// cover (quarantined storage). A coordinator merges per-subset answers through
    /// the same top-k selector the index uses, which reconstructs the whole-index
    /// join bit-identically when the subsets partition the snapshot.
    ///
    /// Subset joins bypass the server's batcher and query cache (the cache key has
    /// no subset component), so every call pays a real join — scatter large batches.
    /// Transport failures and `BUSY` responses are retried like
    /// [`ServeClient::knn_join`]; a coordinator doing replica failover typically
    /// sets `max_retries: 0` and fails over to another replica itself instead.
    ///
    /// # Errors
    /// Exhausted retries, or a server-side rejection (dimension mismatch, shard
    /// position out of range for the served snapshot) as
    /// [`std::io::ErrorKind::InvalidInput`] — never retried.
    pub fn knn_join_subset(
        &mut self,
        queries: &[Vec<f32>],
        k: usize,
        shard_positions: &[usize],
    ) -> io::Result<SubsetAnswer> {
        Self::check_rectangular(queries)?;
        let request = Request::KnnSubset {
            queries: queries.to_vec(),
            k,
            shards: shard_positions.to_vec(),
        };
        match self.request(&request)? {
            Response::KnnSubset {
                pairs,
                missing_shards,
            } => Ok((pairs, missing_shards)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the served *model* for the raw encoder vector of every text, in input
    /// order — the remote form of the in-process encoder's `embed_all`, with
    /// bit-identical `f32` output for the same batch (the server never coalesces
    /// model batches, precisely so chunk boundaries — and therefore bits — match).
    ///
    /// Retried like [`ServeClient::knn_join`] (the model mutates nothing).
    ///
    /// # Errors
    /// A server without a loaded model answers a typed error
    /// ([`std::io::ErrorKind::InvalidInput`], never retried); so does a batch whose
    /// reply would exceed the frame limit — send fewer texts per call.
    pub fn embed(&mut self, texts: &[String]) -> io::Result<Vec<Vec<f32>>> {
        let request = Request::Embed {
            texts: texts.to_vec(),
        };
        match self.request(&request)? {
            Response::Embeddings(vectors) => Ok(vectors),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the served pair matcher to score `pairs`, one match probability per
    /// `(left, right)` pair in input order — the remote form of the in-process
    /// matcher's `predict_scores`, bit-identical for the same batch.
    ///
    /// Retried like [`ServeClient::knn_join`] (the model mutates nothing).
    ///
    /// # Errors
    /// A server without a loaded model answers a typed error
    /// ([`std::io::ErrorKind::InvalidInput`], never retried).
    pub fn match_pairs(&mut self, pairs: &[(String, String)]) -> io::Result<Vec<f32>> {
        let (lefts, rights): (Vec<String>, Vec<String>) = pairs.iter().cloned().unzip();
        let request = Request::MatchPairs { lefts, rights };
        match self.request(&request)? {
            Response::MatchScores(scores) => Ok(scores),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Liveness check: one round trip, no payload. Not retried — callers probing
    /// liveness want the first answer, not a flattering one.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request_with_retries(&Request::Ping, 0) {
            Ok(Response::Pong) => Ok(()),
            Ok(other) => Err(Self::unexpected(&other)),
            Err(e) if is_busy(&e) => Err(ServerBusy::to_error("server busy (load shed)".into())),
            Err(e) => Err(e),
        }
    }

    /// Fetches server/index statistics (corpus size, shard residency, cache,
    /// batching, and robustness counters). Not retried.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.request_with_retries(&Request::Stats, 0) {
            Ok(Response::Stats(stats)) => Ok(stats),
            Ok(other) => Err(Self::unexpected(&other)),
            Err(e) if is_busy(&e) => Err(ServerBusy::to_error("server busy (load shed)".into())),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn a_silent_server_times_out_instead_of_hanging_forever() {
        // A listener that accepts and then says nothing — the pathological peer the
        // read timeout exists for.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let keep_open = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

        let config = ClientConfig {
            read_timeout: Some(Duration::from_millis(100)),
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
        };
        let mut client = ServeClient::connect_with_config(addr, config).unwrap();
        let _socket = keep_open.join().unwrap().unwrap(); // hold the accepted side open

        let started = Instant::now();
        let err = client.ping().unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "got: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the timeout must fire promptly, not hang: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            jitter_seed: 7,
        };
        let mut a = policy.jitter_seed | 1;
        let mut b = policy.jitter_seed | 1;
        for retry in 0..5 {
            let base = Duration::from_millis(10 * (1 << retry)).min(Duration::from_millis(40));
            let sleep = policy.backoff(retry, &mut a);
            assert!(sleep >= base, "retry {retry}: {sleep:?} < base {base:?}");
            assert!(
                sleep <= base + base.mul_f64(0.5),
                "retry {retry}: {sleep:?} exceeds base + 50% jitter"
            );
            assert_eq!(
                sleep,
                policy.backoff(retry, &mut b),
                "same seed must give the same jitter stream"
            );
        }
    }
}
