//! The client half of the wire protocol: a thin, synchronous connection handle.
//!
//! One [`ServeClient`] wraps one TCP connection. Calls are blocking request/response;
//! for concurrency, open one client per thread (the server handles each connection on
//! its own thread and coalesces concurrent joins server-side, so N clients cost one
//! GEMM pass when their requests land together).

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_knn_response, decode_stats_response, encode_knn_request, read_frame, split_response,
    write_frame, ServerStats, OP_PING, OP_STATS,
};

/// A synchronous client connection to a [`crate::Server`].
///
/// See the crate docs for an end-to-end example (snapshot → serve → query).
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a server (e.g. the address returned by [`crate::Server::addr`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient { stream })
    }

    /// Sends one request frame and reads one response frame.
    fn round_trip(&mut self, request: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection before responding",
            )
        })
    }

    /// Turns a server-reported error message into an `io::Error`.
    fn server_error(message: String) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidInput, format!("server: {message}"))
    }

    /// Retrieves, for every query, its `k` nearest indexed vectors as
    /// `(query_index, stable_id, score)` pairs — the remote form of
    /// [`sudowoodo_index::BlockingIndex::knn_join`], with identical results and
    /// ordering (query index, then descending score, ascending id on ties).
    ///
    /// Send the natural batch in one call: the batch is the unit of network
    /// amortization *and* of the server's query cache, so a repeated batch answers
    /// without the server touching a single shard.
    ///
    /// # Errors
    /// Transport failures, or a server-side rejection (e.g. a query dimension that
    /// does not match the served index) surfaced as
    /// [`std::io::ErrorKind::InvalidInput`]. Ragged query batches are rejected
    /// client-side before anything is sent.
    pub fn knn_join(
        &mut self,
        queries: &[Vec<f32>],
        k: usize,
    ) -> io::Result<Vec<(usize, usize, f32)>> {
        let dim = queries.first().map_or(0, Vec::len);
        if let Some(bad) = queries.iter().position(|q| q.len() != dim) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "query {bad} has dimension {}, expected {dim} (the batch must be \
                     rectangular)",
                    queries[bad].len()
                ),
            ));
        }
        let response = self.round_trip(&encode_knn_request(queries, k, dim))?;
        match split_response(&response)? {
            Ok(body) => {
                decode_knn_response(body).map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
            }
            Err(message) => Err(Self::server_error(message)),
        }
    }

    /// Liveness check: one round trip, no payload.
    pub fn ping(&mut self) -> io::Result<()> {
        let response = self.round_trip(&[OP_PING])?;
        match split_response(&response)? {
            Ok(_) => Ok(()),
            Err(message) => Err(Self::server_error(message)),
        }
    }

    /// Fetches server/index statistics (corpus size, shard residency, cache and
    /// batching counters).
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        let response = self.round_trip(&[OP_STATS])?;
        match split_response(&response)? {
            Ok(body) => decode_stats_response(body)
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m)),
            Err(message) => Err(Self::server_error(message)),
        }
    }
}
