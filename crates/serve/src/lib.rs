//! # sudowoodo-serve
//!
//! Concurrent network serving of the Sudowoodo blocking index: build (or train) once,
//! [`sudowoodo_index::BlockingIndex::save_snapshot`] the index, and any number of
//! server processes [`sudowoodo_index::BlockingIndex::load_snapshot`] it **cold** and
//! answer `knn_join` traffic over TCP — the ROADMAP's "multi-process shard server"
//! step, built on the PR 4 spill layer and the snapshot/cache layers of
//! `sudowoodo-index`.
//!
//! Everything is `std` — `TcpListener`/`TcpStream`, threads, a condvar, and a thin
//! `poll(2)` wrapper ([`reactor`]) — no new dependencies (the workspace builds
//! offline). Four pieces:
//!
//! * [`protocol`] — a small length-prefixed binary protocol (a typed
//!   [`protocol::Request`]/[`protocol::Response`] enum pair over opcode frames,
//!   fixed little-endian layouts, a 64 MiB frame bound). Documented field-by-field
//!   in the module; a client in another language is an afternoon's work.
//! * [`reactor`] — the std-only readiness layer: `poll(2)` over non-blocking
//!   sockets plus a loopback-pair [`reactor::Waker`].
//! * [`Server`] — a fixed pool of readiness-polled I/O workers (idle connections
//!   cost zero wakeups; thousands of sockets per thread) plus a join worker that
//!   **coalesces concurrent requests into one `knn_join`** (server-side request
//!   batching: N clients landing together cost one GEMM pass per visited shard,
//!   not N). `PING` and `STATS` answer inline on the I/O workers.
//! * [`ServeClient`] — a synchronous client handle; results are identical (ids,
//!   scores, and ordering) to calling `knn_join` in-process.
//!
//! Serving is **multi-purpose**: alongside the index the server can own a trained
//! [`ModelBackend`] (an encoder + pair matcher loaded from a model snapshot) and
//! answer `EMBED` (raw encoder vectors for a record batch) and `MATCH` (pair-match
//! scores) requests — [`Server::spawn_with_model`], [`ServeClient::embed`],
//! [`ServeClient::match_pairs`]. Model answers are bit-identical to the in-process
//! model on the same batch. The served index can also be **republished** live
//! ([`Server::publish_index`]) after a delta snapshot lands, for streaming-dedup
//! deployments where records keep arriving after the initial snapshot.
//!
//! For distributed serving the protocol also carries a **per-shard-subset** join
//! frame (`KNN_SUBSET`, [`ServeClient::knn_join_subset`]): a coordinator (the
//! `sudowoodo-coord` crate) scatters one query batch to the replicas owning each
//! shard subset and merges the per-subset top-k — bit-identical to a single-process
//! `knn_join` because top-k selection is order-independent. Subset joins are never
//! coalesced or cached and bypass the admission queue (see the [`server`] docs for
//! why).
//!
//! The serving layer is built to survive faults and overload (see the [`server`]
//! module docs): bounded admission with `BUSY` load shedding, per-request deadlines,
//! panic containment (handler failures answer error frames instead of dropping
//! connections), degraded-result flagging when the index quarantines unreadable
//! shards, and a client-side retry policy (exponential backoff + deterministic
//! jitter, idempotent `KNN` requests only). Configure the server with
//! [`ServerConfig`] / [`Server::spawn_with_config`] and the client with
//! [`ClientConfig`] / [`ServeClient::connect_with_config`].
//!
//! Repeated query batches are the expected production shape, and the served index's
//! query-batch cache (see `sudowoodo_index::cache`) answers them without touching a
//! single shard — enable it with
//! [`sudowoodo_index::BlockingIndex::set_query_cache_capacity`] before spawning the
//! server.
//!
//! ## Example: snapshot → serve → query
//!
//! ```
//! use std::sync::Arc;
//! use sudowoodo_index::BlockingIndex;
//! use sudowoodo_serve::{ServeClient, Server};
//!
//! // Process A: build once, snapshot to disk.
//! let dir = std::env::temp_dir().join(format!("swserve-doc-{}", std::process::id()));
//! let corpus = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.8]];
//! BlockingIndex::build(corpus, Some(2)).save_snapshot(&dir).unwrap();
//!
//! // Process B: load cold (O(manifest)), enable the query cache, serve.
//! let mut index = BlockingIndex::load_snapshot(&dir).unwrap();
//! index.set_query_cache_capacity(64);
//! let server = Server::spawn(Arc::new(index), "127.0.0.1:0").unwrap();
//!
//! // Any process: connect and join.
//! let mut client = ServeClient::connect(server.addr()).unwrap();
//! let pairs = client.knn_join(&[vec![1.0, 0.1]], 2).unwrap();
//! assert_eq!(pairs[0].1, 0); // nearest neighbor id, same as in-process knn_join
//! client.ping().unwrap();
//!
//! server.shutdown();
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod model;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use client::{is_busy, ClientConfig, RetryPolicy, ServeClient, ServerBusy};
pub use model::ModelBackend;
pub use protocol::{Request, Response, ServerStats};
pub use server::{Server, ServerConfig};
