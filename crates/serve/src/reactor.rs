//! A thin, std-only readiness layer over `poll(2)` for the serve worker pool.
//!
//! The server multiplexes every connection onto a fixed set of worker threads, so it
//! needs one primitive the standard library does not expose: "block until any of
//! these sockets is readable/writable (or a deadline passes)". This module declares
//! the two symbols that primitive needs — `poll(2)` itself — directly against libc,
//! which `std` already links: no new dependency, per the workspace's offline/shims
//! build constraint. Everything else (sockets, wakers) is plain `std::net`.
//!
//! Two pieces:
//!
//! * [`poll_fds`] — a safe wrapper over `poll(2)`: takes a borrowed [`PollFd`] set
//!   and an optional timeout, handles `EINTR` by re-polling with the *remaining*
//!   time, and returns how many entries have events.
//! * [`Waker`] — a loopback socket pair a worker parks on: any thread calls
//!   [`Waker::wake`] to make the worker's `poll` return (new connection handed over,
//!   join reply ready, shutdown). Writes coalesce — a wake while one is already
//!   pending is a no-op — so wakers never accumulate unread bytes beyond a socket
//!   buffer.
//!
//! The wrapper is Unix-only by construction (the server targets the same platforms
//! the spill layer's `mmap` path does); the constants below are the POSIX values,
//! which Linux and the BSDs share.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// Readable data (or a pending accept) is available.
pub const POLLIN: i16 = 0x001;
/// Writing now would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One `poll(2)` registration: the layout is `struct pollfd` itself, so a
/// `&mut [PollFd]` passes straight through the FFI with no translation.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT` ORed together; 0 parks the entry —
    /// `POLLERR`/`POLLHUP` are still reported, which is how a worker notices a dead
    /// peer without paying read-readiness wakeups for it).
    pub events: i16,
    /// Returned events, filled by [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// A registration for `fd` with the given requested events.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one registered descriptor has events, the timeout passes
/// (`Ok(0)`), or an unexpected OS error occurs. `None` waits indefinitely. `EINTR`
/// re-polls with the remaining time, so signals can only shorten a wait by delivering
/// events, never extend it.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let deadline = timeout.map(|t| Instant::now() + t);
    loop {
        let millis: c_int = match deadline {
            None => -1,
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                // Round up so a sub-millisecond remainder sleeps instead of spinning.
                let ms = remaining
                    .as_millis()
                    .saturating_add(u128::from(remaining.subsec_nanos() % 1_000_000 != 0));
                ms.min(c_int::MAX as u128) as c_int
            }
        };
        // SAFETY: `fds` is a valid, exclusively borrowed `pollfd` array of exactly
        // `fds.len()` entries for the duration of the call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, millis) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Ok(0);
            }
        }
    }
}

/// A cross-thread wakeup for a worker parked in [`poll_fds`]: a connected loopback
/// socket pair. The worker registers [`Waker::read_fd`] with `POLLIN`; any thread
/// calls [`Waker::wake`] to make the poll return, and the worker [`Waker::drain`]s
/// the pending bytes before going back to sleep.
#[derive(Debug)]
pub struct Waker {
    /// The write half (any thread).
    tx: TcpStream,
    /// The read half (the owning worker).
    rx: TcpStream,
}

impl Waker {
    /// Builds the pair: bind an ephemeral loopback listener, connect to it, accept,
    /// and drop the listener. The accept is verified against the connecting socket's
    /// address so a stray connection racing to the ephemeral port cannot pair up.
    pub fn new() -> io::Result<Waker> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let ours = tx.local_addr()?;
        let rx = loop {
            let (stream, peer) = listener.accept()?;
            if peer == ours {
                break stream;
            }
            // A foreign connect raced us to the port: drop it and keep waiting for
            // our own (already in the backlog).
        };
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true).ok();
        Ok(Waker { tx, rx })
    }

    /// Makes the owning worker's poll return. Callable from any thread through a
    /// shared reference; a full socket buffer (`WouldBlock`) means a wake is already
    /// pending, which is exactly as good as another byte.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Consumes every pending wake byte (the worker, after its poll returned).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut buf) {
            if n == 0 {
                return; // tx half closed; nothing more will arrive
            }
        }
    }

    /// The descriptor the owning worker registers with `POLLIN`.
    pub fn read_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_times_out_and_reports_readiness() {
        let waker = Waker::new().expect("waker");
        let mut fds = [PollFd::new(waker.read_fd(), POLLIN)];

        // Nothing pending: a short timeout elapses with zero events.
        let start = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20))).expect("poll");
        assert_eq!(n, 0, "no events were due");
        assert!(start.elapsed() >= Duration::from_millis(15));

        // A wake from another thread is observed as POLLIN within the timeout.
        waker.wake();
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).expect("poll");
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0, "revents: {:#x}", fds[0].revents);
        waker.drain();
    }

    #[test]
    fn wakes_coalesce_and_drain_resets() {
        let waker = Waker::new().expect("waker");
        // Many wakes while nobody drains must neither block nor error.
        for _ in 0..100_000 {
            waker.wake();
        }
        waker.drain();
        let mut fds = [PollFd::new(waker.read_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(n, 0, "drained waker must be quiet");
    }
}
