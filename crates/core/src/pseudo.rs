//! Pseudo labeling (§III-C).
//!
//! After pre-training, the embedding model provides a reliable similarity space. For every
//! unlabeled candidate pair, Sudowoodo assigns a positive pseudo label when the cosine
//! similarity of the two embeddings exceeds a threshold `theta_plus`, and a negative pseudo
//! label when it falls below `theta_minus`. The thresholds are not tuned directly: the user
//! fixes the positive ratio `rho`, the target number of pseudo labels (the `multiplier`
//! hyper-parameter times the manually labeled set size), and the thresholds follow from the
//! score distribution. A small hill-climbing refinement over `theta_plus` is also provided,
//! mirroring the paper's use of a fixed number of fine-tuning trials.

/// A scored candidate pair: `(left index, right index, cosine similarity)`.
pub type ScoredPair = (usize, usize, f32);

/// A pseudo-labeled pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PseudoLabel {
    /// Left item index.
    pub a: usize,
    /// Right item index.
    pub b: usize,
    /// The assigned label.
    pub label: bool,
    /// The cosine score that produced the label.
    pub score: f32,
}

/// Result of pseudo labeling.
#[derive(Clone, Debug)]
pub struct PseudoLabelSet {
    /// The generated labels.
    pub labels: Vec<PseudoLabel>,
    /// Positive threshold `theta_plus` actually used.
    pub theta_plus: f32,
    /// Negative threshold `theta_minus` actually used.
    pub theta_minus: f32,
}

impl PseudoLabelSet {
    /// Number of positive pseudo labels.
    pub fn num_positive(&self) -> usize {
        self.labels.iter().filter(|l| l.label).count()
    }

    /// Number of negative pseudo labels.
    pub fn num_negative(&self) -> usize {
        self.labels.len() - self.num_positive()
    }

    /// Quality of the pseudo labels against a gold predicate: returns
    /// `(true positive rate, true negative rate)` as reported in Table XI.
    pub fn quality(&self, is_gold_match: impl Fn(usize, usize) -> bool) -> (f32, f32) {
        let mut tp = 0usize;
        let mut pos = 0usize;
        let mut tn = 0usize;
        let mut neg = 0usize;
        for l in &self.labels {
            if l.label {
                pos += 1;
                if is_gold_match(l.a, l.b) {
                    tp += 1;
                }
            } else {
                neg += 1;
                if !is_gold_match(l.a, l.b) {
                    tn += 1;
                }
            }
        }
        (
            if pos == 0 {
                0.0
            } else {
                tp as f32 / pos as f32
            },
            if neg == 0 {
                0.0
            } else {
                tn as f32 / neg as f32
            },
        )
    }
}

/// Generates pseudo labels from scored candidate pairs.
///
/// The `target_count` highest-confidence decisions are kept: the top `rho * target_count`
/// scores become positives and the bottom `(1 - rho) * target_count` scores become
/// negatives, which fixes the positive ratio at `rho` as described in §III-C.
pub fn generate_pseudo_labels(
    scored: &[ScoredPair],
    rho: f32,
    target_count: usize,
) -> PseudoLabelSet {
    assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
    if scored.is_empty() || target_count == 0 {
        return PseudoLabelSet {
            labels: Vec::new(),
            theta_plus: 1.0,
            theta_minus: -1.0,
        };
    }
    let mut sorted: Vec<ScoredPair> = scored.to_vec();
    sorted.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let target = target_count.min(sorted.len());
    let num_pos = ((target as f32) * rho).round() as usize;
    let num_neg = target - num_pos;

    let mut labels = Vec::with_capacity(target);
    for &(a, b, score) in sorted.iter().take(num_pos) {
        labels.push(PseudoLabel {
            a,
            b,
            label: true,
            score,
        });
    }
    for &(a, b, score) in sorted.iter().rev().take(num_neg) {
        labels.push(PseudoLabel {
            a,
            b,
            label: false,
            score,
        });
    }
    let theta_plus = if num_pos > 0 {
        sorted[num_pos - 1].2
    } else {
        1.0
    };
    let theta_minus = if num_neg > 0 {
        sorted[sorted.len() - num_neg].2
    } else {
        -1.0
    };
    PseudoLabelSet {
        labels,
        theta_plus,
        theta_minus,
    }
}

/// Hill-climbing refinement of the positive threshold (§III-C).
///
/// Starting from the quantile-derived `theta_plus` of [`generate_pseudo_labels`], the
/// threshold is nudged up and down by `step`; each candidate threshold is scored with the
/// user-provided `evaluate` closure (e.g. validation F1 after a quick fine-tuning trial) and
/// the search keeps the best-scoring threshold. At most `trials` evaluations are spent.
pub fn hill_climb_threshold(
    initial_theta: f32,
    step: f32,
    trials: usize,
    mut evaluate: impl FnMut(f32) -> f32,
) -> (f32, f32) {
    let mut best_theta = initial_theta;
    let mut best_score = evaluate(initial_theta);
    let mut used = 1usize;
    let mut current_step = step;
    while used < trials {
        let mut improved = false;
        for candidate in [best_theta + current_step, best_theta - current_step] {
            if used >= trials {
                break;
            }
            let candidate = candidate.clamp(-1.0, 1.0);
            let score = evaluate(candidate);
            used += 1;
            if score > best_score {
                best_score = score;
                best_theta = candidate;
                improved = true;
            }
        }
        if !improved {
            current_step /= 2.0;
            if current_step < 1e-3 {
                break;
            }
        }
    }
    (best_theta, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic candidate scores: the first `n_pos` pairs are "true matches" with high
    /// scores, the rest are non-matches with low scores (plus a noisy overlap region).
    fn synthetic_scores(n_pos: usize, n_neg: usize) -> Vec<ScoredPair> {
        let mut scored = Vec::new();
        for i in 0..n_pos {
            scored.push((i, i, 0.9 - 0.001 * i as f32));
        }
        for i in 0..n_neg {
            scored.push((i, i + 1000, 0.2 - 0.0005 * i as f32));
        }
        scored
    }

    #[test]
    fn labels_respect_rho_and_target_count() {
        let scored = synthetic_scores(50, 450);
        let set = generate_pseudo_labels(&scored, 0.1, 200);
        assert_eq!(set.labels.len(), 200);
        assert_eq!(set.num_positive(), 20);
        assert_eq!(set.num_negative(), 180);
        assert!(set.theta_plus > set.theta_minus);
    }

    #[test]
    fn high_scores_become_positives_and_low_scores_negatives() {
        let scored = synthetic_scores(50, 450);
        let set = generate_pseudo_labels(&scored, 0.1, 300);
        for l in &set.labels {
            if l.label {
                assert!(l.score >= set.theta_plus);
            } else {
                assert!(l.score <= set.theta_minus);
            }
        }
    }

    #[test]
    fn quality_is_perfect_when_scores_separate_classes() {
        let scored = synthetic_scores(50, 450);
        let set = generate_pseudo_labels(&scored, 0.1, 300);
        // Gold: a pair is a match iff left == right (how synthetic_scores built positives).
        let (tpr, tnr) = set.quality(|a, b| a == b);
        assert_eq!(tpr, 1.0);
        assert_eq!(tnr, 1.0);
    }

    #[test]
    fn quality_degrades_with_noisy_scores() {
        // Flip the scores of a few true matches to the bottom so they get negative labels.
        let mut scored = synthetic_scores(50, 450);
        for item in scored.iter_mut().take(5) {
            item.2 = 0.01;
        }
        let set = generate_pseudo_labels(&scored, 0.1, 300);
        let (_, tnr) = set.quality(|a, b| a == b);
        assert!(tnr < 1.0);
    }

    #[test]
    fn empty_input_and_zero_target_are_safe() {
        let set = generate_pseudo_labels(&[], 0.1, 100);
        assert!(set.labels.is_empty());
        let set = generate_pseudo_labels(&synthetic_scores(5, 5), 0.1, 0);
        assert!(set.labels.is_empty());
    }

    #[test]
    fn target_larger_than_candidates_is_clamped() {
        let scored = synthetic_scores(5, 5);
        let set = generate_pseudo_labels(&scored, 0.5, 1000);
        assert_eq!(set.labels.len(), 10);
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn invalid_rho_panics() {
        let _ = generate_pseudo_labels(&synthetic_scores(2, 2), 1.5, 4);
    }

    #[test]
    fn hill_climbing_finds_better_threshold() {
        // The objective peaks at theta = 0.62; start at 0.5.
        let objective = |theta: f32| 1.0 - (theta - 0.62).abs();
        let (best_theta, best_score) = hill_climb_threshold(0.5, 0.05, 20, objective);
        assert!((best_theta - 0.62).abs() < 0.05, "found {best_theta}");
        assert!(best_score > 0.95);
    }

    #[test]
    fn hill_climbing_respects_trial_budget() {
        let mut calls = 0usize;
        let _ = hill_climb_threshold(0.5, 0.1, 7, |_| {
            calls += 1;
            0.0
        });
        assert!(calls <= 7);
    }
}
