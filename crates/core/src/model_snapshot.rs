//! Model snapshots: a trained encoder + pair matcher as a build-once artifact.
//!
//! The same idiom the blocking index uses for its shards (`sudowoodo_index::snapshot`)
//! applied to model weights: train once, [`save_matcher`] the matcher next to the index
//! snapshot, and any number of serving processes [`load_matcher`] it **cold** — no
//! corpus, no pre-training, no fine-tuning — and answer `EMBED`/`MATCH` traffic with
//! answers **bit-identical** to the process that trained it (the parameters are stored
//! as raw IEEE-754 `f32` bits and rebound by name, and inference is a deterministic
//! function of weights + batch).
//!
//! ## The `SWMODEL1` format
//!
//! One file, little-endian throughout:
//!
//! ```text
//! magic    "SWMODEL1" (8 bytes)
//! encoder  kind u8 (0 = MeanPool, 1 = Transformer) · dim u32 · layers u32 ·
//!          heads u32 · ff_hidden u32 · max_len u32
//! matcher  use_diff_head u8
//! vocab    num_tokens u32 · (len u32 · UTF-8 bytes)×num_tokens · hash_buckets u32
//!          (the full id-ordered token list, specials first — ids are positions)
//! params   num_params u32 · (name_len u32 · UTF-8 name · rows u32 · cols u32 ·
//!          f32×(rows·cols))×num_params
//! crc      CRC-32 over every preceding byte (u32)
//! ```
//!
//! Writes are atomic (tmp file + rename), so a crash mid-write leaves either the old
//! model or none — never a torn file; the CRC turns silent corruption into a typed
//! load error instead of silently-wrong scores. The file is a *sibling* of the index
//! snapshot (conventionally `model.swmodel` inside the snapshot directory): the index
//! snapshot's stale-payload sweep only touches its own payload names, so the model
//! survives index republishes.

use std::io::{self, Read, Write};
use std::path::Path;

use sudowoodo_nn::matrix::Matrix;
use sudowoodo_text::Vocab;

use crate::config::{EncoderConfig, EncoderKind};
use crate::encoder::Encoder;
use crate::matcher::PairMatcher;

/// Leading magic of a model snapshot file.
const MAGIC: &[u8; 8] = b"SWMODEL1";

/// Conventional file name of the model snapshot inside an index snapshot directory.
pub const MODEL_SNAPSHOT_FILE: &str = "model.swmodel";

// CRC-32 (IEEE, the same polynomial the index snapshot uses). Reimplemented here
// because the index crate keeps its checksum internal — 12 lines beat a new
// public-API surface between crates.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    crc ^ 0xFFFF_FFFF
}

fn corrupt(path: &Path, what: impl Into<String>) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("model snapshot {}: {}", path.display(), what.into()),
    )
}

fn push_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes a trained matcher (encoder + head) and writes it atomically.
///
/// # Errors
/// Only I/O failures — every matcher state is representable.
pub fn save_matcher(matcher: &PairMatcher, path: &Path) -> io::Result<()> {
    let mut body = Vec::new();
    body.extend_from_slice(MAGIC);

    let config = &matcher.encoder.config;
    body.push(match config.kind {
        EncoderKind::MeanPool => 0u8,
        EncoderKind::Transformer => 1u8,
    });
    push_u32(&mut body, config.dim);
    push_u32(&mut body, config.layers);
    push_u32(&mut body, config.heads);
    push_u32(&mut body, config.ff_hidden);
    push_u32(&mut body, config.max_len);
    body.push(u8::from(matcher.uses_diff_head()));

    let (tokens, hash_buckets) = matcher.encoder.vocab().parts();
    push_u32(&mut body, tokens.len());
    for token in tokens {
        push_str(&mut body, token);
    }
    push_u32(&mut body, hash_buckets);

    let params = matcher.params();
    push_u32(&mut body, params.len());
    for param in &params {
        push_str(&mut body, &param.name());
        param.with_value(|value| {
            push_u32(&mut body, value.rows());
            push_u32(&mut body, value.cols());
            for &x in value.data() {
                body.extend_from_slice(&x.to_le_bytes());
            }
        });
    }

    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());

    // Atomic publish: write a sibling tmp file, then rename over the destination —
    // a crash leaves the old model (or nothing), never a torn file.
    let tmp = path.with_extension("swmodel.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&body)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// A checked little-endian cursor over the snapshot body.
struct Reader<'a> {
    path: &'a Path,
    body: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        let bytes = self
            .body
            .get(self.at..self.at.saturating_add(n))
            .ok_or_else(|| corrupt(self.path, format!("truncated {what}")))?;
        self.at += n;
        Ok(bytes)
    }

    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> io::Result<usize> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()) as usize)
    }

    fn string(&mut self, what: &str) -> io::Result<String> {
        let len = self.u32(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(self.path, format!("{what} is not valid UTF-8")))
    }
}

/// Loads a matcher saved by [`save_matcher`]: rebuilds the encoder skeleton from the
/// stored configuration + vocabulary, then overwrites every parameter with the stored
/// bits, matched **by name**. The result scores any batch bit-identically to the
/// matcher that was saved.
///
/// # Errors
/// I/O failures, and [`std::io::ErrorKind::InvalidData`] for a torn, truncated, or
/// corrupted file (bad magic, CRC mismatch, unknown fields, parameter sets that do
/// not line up with the stored configuration).
pub fn load_matcher(path: &Path) -> io::Result<PairMatcher> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 4 {
        return Err(corrupt(path, "file too short for magic and checksum"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(corrupt(
            path,
            format!("checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"),
        ));
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err(corrupt(path, "bad magic (not an SWMODEL1 file)"));
    }
    let mut r = Reader {
        path,
        body,
        at: MAGIC.len(),
    };

    let kind = match r.u8("encoder kind")? {
        0 => EncoderKind::MeanPool,
        1 => EncoderKind::Transformer,
        other => return Err(corrupt(path, format!("unknown encoder kind {other}"))),
    };
    let config = EncoderConfig {
        kind,
        dim: r.u32("encoder dim")?,
        layers: r.u32("encoder layers")?,
        heads: r.u32("encoder heads")?,
        ff_hidden: r.u32("encoder ff_hidden")?,
        max_len: r.u32("encoder max_len")?,
    };
    let use_diff_head = match r.u8("use_diff_head")? {
        0 => false,
        1 => true,
        other => return Err(corrupt(path, format!("bad use_diff_head byte {other}"))),
    };

    let num_tokens = r.u32("vocab size")?;
    let mut tokens = Vec::with_capacity(num_tokens.min(body.len() / 4 + 1));
    for _ in 0..num_tokens {
        tokens.push(r.string("vocab token")?);
    }
    let hash_buckets = r.u32("vocab hash_buckets")?;
    let vocab = Vocab::from_parts(tokens, hash_buckets);

    // The seed only shapes the random init, and every parameter is overwritten
    // below — any value rebuilds the same skeleton.
    let encoder = Encoder::with_vocab(config, vocab, 0);
    let matcher = PairMatcher::new(encoder, use_diff_head, 0);

    let num_params = r.u32("parameter count")?;
    let skeleton = matcher.params();
    if num_params != skeleton.len() {
        return Err(corrupt(
            path,
            format!(
                "stores {num_params} parameters but the configuration rebuilds {}",
                skeleton.len()
            ),
        ));
    }
    let mut restored = 0usize;
    for _ in 0..num_params {
        let name = r.string("parameter name")?;
        let rows = r.u32("parameter rows")?;
        let cols = r.u32("parameter cols")?;
        let elements = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt(path, format!("parameter {name}: shape overflows")))?;
        let raw = r.take(elements * 4, "parameter data")?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let target = skeleton
            .iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| corrupt(path, format!("parameter {name} has no home in the model")))?;
        if target.shape() != (rows, cols) {
            return Err(corrupt(
                path,
                format!(
                    "parameter {name} is {rows}x{cols} on disk but {:?} in the model",
                    target.shape()
                ),
            ));
        }
        target.set_value(Matrix::from_vec(rows, cols, data));
        restored += 1;
    }
    if r.at != body.len() {
        return Err(corrupt(
            path,
            format!(
                "{} trailing bytes after the last parameter",
                body.len() - r.at
            ),
        ));
    }
    debug_assert_eq!(restored, skeleton.len());
    Ok(matcher)
}

/// A loaded matcher as a [`sudowoodo_serve::ModelBackend`]: what
/// [`sudowoodo_serve::Server::spawn_with_model`] serves `EMBED`/`MATCH` from.
///
/// `embed` is the encoder's `embed_all` and `match_scores` the matcher's
/// `predict_scores`, verbatim — the served answers are therefore bit-identical to
/// calling the in-process model on the same batch, which is exactly the contract
/// the trait documents (and why the server never coalesces model batches).
pub struct MatcherBackend(pub PairMatcher);

impl sudowoodo_serve::ModelBackend for MatcherBackend {
    fn dim(&self) -> usize {
        self.0.encoder.dim()
    }

    fn embed(&self, texts: &[String]) -> Vec<Vec<f32>> {
        self.0.encoder.embed_all(texts)
    }

    fn match_scores(&self, lefts: &[String], rights: &[String]) -> Vec<f32> {
        let pairs: Vec<(String, String)> =
            lefts.iter().cloned().zip(rights.iter().cloned()).collect();
        self.0.predict_scores(&pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{FineTuneConfig, TrainPair};
    use sudowoodo_serve::ModelBackend;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "sudowoodo-model-{tag}-{}-{n}.swmodel",
            std::process::id()
        ))
    }

    fn trained_matcher() -> PairMatcher {
        let corpus: Vec<String> = (0..8)
            .map(|i| format!("[COL] title [VAL] canon printer model m{i}"))
            .collect();
        let encoder = Encoder::from_corpus(EncoderConfig::tiny(), &corpus, 5);
        let mut matcher = PairMatcher::new(encoder, true, 5);
        let pairs: Vec<TrainPair> = (0..4)
            .map(|i| {
                TrainPair::new(
                    corpus[i].clone(),
                    corpus[(i + 1) % corpus.len()].clone(),
                    i % 2 == 0,
                )
            })
            .collect();
        matcher.fine_tune(
            &pairs,
            &FineTuneConfig {
                epochs: 1,
                batch_size: 4,
                learning_rate: 1e-3,
                seed: 9,
            },
        );
        matcher
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let matcher = trained_matcher();
        let path = tmp_path("roundtrip");
        save_matcher(&matcher, &path).expect("save");
        let loaded = load_matcher(&path).expect("load");
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.uses_diff_head(), matcher.uses_diff_head());
        assert_eq!(loaded.encoder.config, matcher.encoder.config);

        let texts: Vec<String> = (0..5)
            .map(|i| format!("[COL] title [VAL] canon printer model m{i}"))
            .collect();
        for (a, b) in matcher
            .encoder
            .embed_all(&texts)
            .iter()
            .zip(loaded.encoder.embed_all(&texts).iter())
        {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "embedding bits diverged");
            }
        }
        let pairs: Vec<(String, String)> = texts
            .iter()
            .cloned()
            .zip(texts.iter().rev().cloned())
            .collect();
        for (x, y) in matcher
            .predict_scores(&pairs)
            .iter()
            .zip(loaded.predict_scores(&pairs).iter())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "match score bits diverged");
        }
    }

    #[test]
    fn corrupted_or_truncated_files_are_typed_errors() {
        let matcher = trained_matcher();
        let path = tmp_path("corrupt");
        save_matcher(&matcher, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read back");

        // Flip one weight byte: the CRC must catch it.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        std::fs::write(&path, &flipped).expect("write corrupt");
        let err = load_matcher(&path).expect_err("corruption must fail the load");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");

        // Truncate: also a typed error, never a panic.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("write truncated");
        let err = load_matcher(&path).expect_err("truncation must fail the load");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        // Re-seal the CRC so only the magic is wrong.
        let crc = crc32(&wrong[..wrong.len() - 4]);
        let at = wrong.len() - 4;
        wrong[at..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &wrong).expect("write bad magic");
        let err = load_matcher(&path).expect_err("bad magic must fail the load");
        assert!(err.to_string().contains("magic"), "got: {err}");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matcher_backend_answers_from_the_wrapped_model() {
        let matcher = trained_matcher();
        let texts: Vec<String> = (0..3)
            .map(|i| format!("[COL] title [VAL] canon printer model m{i}"))
            .collect();
        let expected = matcher.encoder.embed_all(&texts);
        let expected_scores = matcher.predict_scores(&[(texts[0].clone(), texts[1].clone())]);

        let backend = MatcherBackend(matcher);
        assert_eq!(backend.dim(), 16);
        assert_eq!(backend.embed(&texts), expected);
        assert_eq!(
            backend.match_scores(&texts[..1], &texts[1..2]),
            expected_scores
        );
    }
}
