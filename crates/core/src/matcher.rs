//! The pairwise matching model `M_pm` and its fine-tuning (§III-B, Figure 4).
//!
//! Given a pair of serialized data items `(x, y)`, the matcher encodes `x`, `y`, and the
//! concatenation `xy` with the (pre-trained) embedding model and predicts match / non-match
//! from `Linear(Z_xy ⊕ |Z_x − Z_y|)` followed by a softmax. The `use_diff_head = false`
//! variant drops the similarity-aware part and uses only `Z_xy`, which is the default
//! sequence-pair fine-tuning of pre-trained LMs (used by the Ditto-like baseline).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sudowoodo_augment::CutoffPlan;
use sudowoodo_nn::layers::{Layer, Linear};
use sudowoodo_nn::optim::AdamW;
use sudowoodo_nn::tape::{Tape, VarId};
use sudowoodo_text::serialize::serialize_pair;

use crate::encoder::Encoder;

/// A labeled training pair of serialized data items.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainPair {
    /// Serialization of the left item.
    pub left: String,
    /// Serialization of the right item.
    pub right: String,
    /// Match (true) or non-match (false).
    pub label: bool,
}

impl TrainPair {
    /// Convenience constructor.
    pub fn new(left: impl Into<String>, right: impl Into<String>, label: bool) -> Self {
        TrainPair {
            left: left.into(),
            right: right.into(),
            label,
        }
    }
}

/// Fine-tuning hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct FineTuneConfig {
    /// Number of passes over the training pairs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// AdamW learning rate.
    pub learning_rate: f32,
    /// Random seed for shuffling.
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 5e-4,
            seed: 7,
        }
    }
}

/// The pairwise matching model.
#[derive(Clone, Debug)]
pub struct PairMatcher {
    /// The (shared) embedding model; fine-tuning updates it together with the head.
    pub encoder: Encoder,
    head: Linear,
    use_diff_head: bool,
}

impl PairMatcher {
    /// Wraps a (typically pre-trained) encoder into a matcher.
    pub fn new(encoder: Encoder, use_diff_head: bool, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(101));
        let input_dim = if use_diff_head {
            2 * encoder.dim()
        } else {
            encoder.dim()
        };
        let head = Linear::new("matcher.head", input_dim, 2, &mut rng);
        PairMatcher {
            encoder,
            head,
            use_diff_head,
        }
    }

    /// Whether the similarity-aware head is active.
    pub fn uses_diff_head(&self) -> bool {
        self.use_diff_head
    }

    /// Builds the feature row (`1 x input_dim`) of one pair on the tape.
    fn pair_features(&self, tape: &mut Tape, left: &str, right: &str) -> VarId {
        let noop = CutoffPlan::noop();
        let pair_text = serialize_pair(left, right);
        let z_xy = self.encoder.encode_text(tape, &pair_text, &noop);
        if !self.use_diff_head {
            return z_xy;
        }
        let z_x = self.encoder.encode_text(tape, left, &noop);
        let z_y = self.encoder.encode_text(tape, right, &noop);
        let diff = tape.sub(z_x, z_y);
        let abs_diff = tape.abs(diff);
        tape.concat_cols(z_xy, abs_diff)
    }

    /// Builds the logits (`n x 2`) of a batch of pairs on the tape.
    fn batch_logits(&self, tape: &mut Tape, pairs: &[(&str, &str)]) -> VarId {
        let rows: Vec<VarId> = pairs
            .iter()
            .map(|(l, r)| self.pair_features(tape, l, r))
            .collect();
        let features = tape.stack_rows(&rows);
        self.head.forward(tape, features)
    }

    /// Fine-tunes the matcher (encoder + head) on labeled pairs; returns the mean loss per
    /// epoch.
    pub fn fine_tune(&mut self, pairs: &[TrainPair], config: &FineTuneConfig) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut optimizer = AdamW::new(config.learning_rate);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let mut epoch_losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(config.batch_size.max(1)) {
                let batch: Vec<(&str, &str)> = chunk
                    .iter()
                    .map(|&i| (pairs[i].left.as_str(), pairs[i].right.as_str()))
                    .collect();
                let targets: Vec<usize> =
                    chunk.iter().map(|&i| usize::from(pairs[i].label)).collect();
                let mut tape = Tape::new();
                let logits = self.batch_logits(&mut tape, &batch);
                let loss = tape.softmax_cross_entropy(logits, &targets);
                let grads = tape.backward(loss);
                optimizer.step(&tape, &grads);
                epoch_loss += tape.scalar(loss);
                batches += 1;
            }
            epoch_losses.push(epoch_loss / batches.max(1) as f32);
        }
        epoch_losses
    }

    /// Probability that a pair matches.
    pub fn predict_proba(&self, left: &str, right: &str) -> f32 {
        self.predict_scores(&[(left.to_string(), right.to_string())])[0]
    }

    /// Match probabilities for many pairs (processed in chunks).
    pub fn predict_scores(&self, pairs: &[(String, String)]) -> Vec<f32> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(32) {
            let refs: Vec<(&str, &str)> = chunk
                .iter()
                .map(|(l, r)| (l.as_str(), r.as_str()))
                .collect();
            let mut tape = Tape::new();
            let logits = self.batch_logits(&mut tape, &refs);
            let values = tape.value(logits);
            for r in 0..values.rows() {
                let l0 = values.get(r, 0);
                let l1 = values.get(r, 1);
                let max = l0.max(l1);
                let e0 = (l0 - max).exp();
                let e1 = (l1 - max).exp();
                out.push(e1 / (e0 + e1));
            }
        }
        out
    }

    /// Hard predictions at a given probability threshold.
    pub fn predict_labels(&self, pairs: &[(String, String)], threshold: f32) -> Vec<bool> {
        self.predict_scores(pairs)
            .into_iter()
            .map(|p| p >= threshold)
            .collect()
    }

    /// All trainable parameters (encoder + head), the persistable state of the
    /// matcher — what [`crate::model_snapshot`] writes into a model snapshot and
    /// rebinds by name on load.
    pub fn params(&self) -> Vec<sudowoodo_nn::param::Param> {
        let mut ps = self.encoder.params();
        ps.extend(self.head.params());
        ps
    }

    /// Number of trainable parameters (encoder + head).
    pub fn num_parameters(&self) -> usize {
        self.encoder.num_parameters()
            + self
                .head
                .params()
                .iter()
                .map(|p| p.num_elements())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;

    /// A tiny matching task: items are "<brand> <model>" strings; a pair matches iff the
    /// model number token is identical.
    fn toy_pairs(n: usize) -> (Vec<String>, Vec<TrainPair>) {
        let brands = ["canon", "epson", "sony", "dell"];
        let mut corpus = Vec::new();
        let mut pairs = Vec::new();
        for i in 0..n {
            let brand = brands[i % brands.len()];
            let left = format!("[COL] title [VAL] {brand} printer model m{i}");
            let right_match = format!("[COL] title [VAL] {brand} printer m{i} refurbished");
            let right_nonmatch =
                format!("[COL] title [VAL] {brand} printer model m{}", (i + 1) % n);
            corpus.push(left.clone());
            corpus.push(right_match.clone());
            corpus.push(right_nonmatch.clone());
            pairs.push(TrainPair::new(left.clone(), right_match, true));
            pairs.push(TrainPair::new(left, right_nonmatch, false));
        }
        (corpus, pairs)
    }

    fn tiny_matcher(corpus: &[String], use_diff_head: bool) -> PairMatcher {
        let encoder = Encoder::from_corpus(EncoderConfig::tiny(), corpus, 3);
        PairMatcher::new(encoder, use_diff_head, 3)
    }

    #[test]
    fn fine_tuning_reduces_loss_and_learns_the_task() {
        let (corpus, pairs) = toy_pairs(12);
        let mut matcher = tiny_matcher(&corpus, true);
        let losses = matcher.fine_tune(
            &pairs,
            &FineTuneConfig {
                epochs: 8,
                batch_size: 8,
                learning_rate: 2e-3,
                seed: 1,
            },
        );
        assert_eq!(losses.len(), 8);
        assert!(
            losses.last().unwrap() < &losses[0],
            "loss should decrease: {:?}",
            losses
        );
        // Training accuracy should beat chance comfortably.
        let eval_pairs: Vec<(String, String)> = pairs
            .iter()
            .map(|p| (p.left.clone(), p.right.clone()))
            .collect();
        let predictions = matcher.predict_labels(&eval_pairs, 0.5);
        let correct = predictions
            .iter()
            .zip(pairs.iter())
            .filter(|(pred, gold)| **pred == gold.label)
            .count();
        assert!(
            correct as f32 / pairs.len() as f32 > 0.7,
            "training accuracy too low: {correct}/{}",
            pairs.len()
        );
    }

    #[test]
    fn diff_head_and_concat_head_have_different_feature_widths() {
        let (corpus, _) = toy_pairs(4);
        let with_diff = tiny_matcher(&corpus, true);
        let concat_only = tiny_matcher(&corpus, false);
        assert!(with_diff.uses_diff_head());
        assert!(!concat_only.uses_diff_head());
        assert!(with_diff.num_parameters() > concat_only.num_parameters());
        // Both must produce valid probabilities.
        let p1 = with_diff.predict_proba(&corpus[0], &corpus[1]);
        let p2 = concat_only.predict_proba(&corpus[0], &corpus[1]);
        assert!((0.0..=1.0).contains(&p1));
        assert!((0.0..=1.0).contains(&p2));
    }

    #[test]
    fn predict_scores_is_consistent_with_predict_proba() {
        let (corpus, _) = toy_pairs(4);
        let matcher = tiny_matcher(&corpus, true);
        let single = matcher.predict_proba(&corpus[0], &corpus[1]);
        let batch = matcher.predict_scores(&[(corpus[0].clone(), corpus[1].clone())]);
        assert!((single - batch[0]).abs() < 1e-6);
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let (corpus, _) = toy_pairs(4);
        let mut matcher = tiny_matcher(&corpus, true);
        let losses = matcher.fine_tune(&[], &FineTuneConfig::default());
        assert!(losses.is_empty());
    }
}
