//! Self-supervised losses: the SimCLR contrastive loss (Equations 1–2), the Barlow Twins
//! redundancy-regularization loss (Equations 4–5), and their combination (Equation 6).

use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::tape::{Tape, VarId};

/// NT-Xent contrastive loss over two views of a batch.
///
/// `z_ori` and `z_aug` are `n x d` projector outputs for the original and augmented views
/// (row `i` of each corresponds to the same underlying item). Rows are L2-normalized
/// internally so the similarity is cosine. Every row is contrasted against all `2n - 1`
/// other rows with temperature `tau`; its positive is the other view of the same item.
pub fn nt_xent_loss(tape: &mut Tape, z_ori: VarId, z_aug: VarId, temperature: f32) -> VarId {
    let n = tape.value(z_ori).rows();
    assert_eq!(
        n,
        tape.value(z_aug).rows(),
        "nt_xent_loss: the two views must have the same batch size"
    );
    assert!(n >= 2, "nt_xent_loss: need at least 2 items per batch");
    assert!(
        temperature > 0.0,
        "nt_xent_loss: temperature must be positive"
    );

    let z = tape.concat_rows(z_ori, z_aug); // 2n x d
    let z = tape.l2_normalize_rows(z);
    let sim = tape.matmul_transpose_b(z, z); // 2n x 2n cosine similarities, fused Z*Z^T
    let sim = tape.scale(sim, 1.0 / temperature);
    // Mask the diagonal (self-similarity) with a large negative constant so it never
    // contributes to the softmax denominator (the `k != i` condition of Equation 1).
    let mask = Matrix::from_fn(2 * n, 2 * n, |r, c| if r == c { -1e9 } else { 0.0 });
    let mask_node = tape.constant(mask);
    let masked = tape.add(sim, mask_node);
    // Row i's positive is row i+n (and vice versa).
    let targets: Vec<usize> = (0..2 * n)
        .map(|i| if i < n { i + n } else { i - n })
        .collect();
    tape.softmax_cross_entropy(masked, &targets)
}

/// Barlow Twins loss.
///
/// Computes the `d x d` cross-correlation matrix between the two views (Equation 4: each
/// feature column is L2-normalized over the batch, so entries are cosine similarities
/// between features) and penalizes its distance to the identity (Equation 5):
/// `sum_i (1 - C_ii)^2 + lambda * sum_{i != j} C_ij^2`.
pub fn barlow_twins_loss(tape: &mut Tape, z_ori: VarId, z_aug: VarId, lambda: f32) -> VarId {
    let d = tape.value(z_ori).cols();
    assert_eq!(
        d,
        tape.value(z_aug).cols(),
        "barlow_twins_loss: views must share dimensionality"
    );
    // Normalize feature columns: transpose to d x n and L2-normalize rows.
    let a = tape.transpose(z_ori);
    let a = tape.l2_normalize_rows(a);
    let b = tape.transpose(z_aug);
    let b = tape.l2_normalize_rows(b);
    let c = tape.matmul_transpose_b(a, b); // d x d cross-correlation, fused A*B^T
    let identity = tape.constant(Matrix::identity(d));
    let diff = tape.sub(c, identity);
    let sq = tape.pow2(diff);
    // Weight matrix: 1 on the diagonal (invariance term), lambda off-diagonal
    // (redundancy-reduction term).
    let weights = Matrix::from_fn(d, d, |r, col| if r == col { 1.0 } else { lambda });
    let weights_node = tape.constant(weights);
    let weighted = tape.mul(sq, weights_node);
    tape.sum_all(weighted)
}

/// The combined Sudowoodo pre-training loss (Equation 6):
/// `(1 - alpha) * L_contrast + alpha * L_BT`. With `alpha = 0` this is plain SimCLR.
pub fn combined_loss(
    tape: &mut Tape,
    z_ori: VarId,
    z_aug: VarId,
    temperature: f32,
    bt_lambda: f32,
    alpha: f32,
) -> VarId {
    let contrast = nt_xent_loss(tape, z_ori, z_aug, temperature);
    if alpha <= 0.0 {
        return contrast;
    }
    let bt = barlow_twins_loss(tape, z_ori, z_aug, bt_lambda);
    let weighted_contrast = tape.scale(contrast, 1.0 - alpha);
    let weighted_bt = tape.scale(bt, alpha);
    tape.add(weighted_contrast, weighted_bt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sudowoodo_nn::matrix::Matrix;

    fn random_views(n: usize, d: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Matrix::random_normal(n, d, 1.0, &mut rng),
            Matrix::random_normal(n, d, 1.0, &mut rng),
        )
    }

    #[test]
    fn nt_xent_is_lower_for_aligned_views() {
        // When the two views are identical, the positive pair has maximal similarity and the
        // loss should be much lower than for random (unrelated) views.
        let (a, b) = random_views(8, 16, 1);
        let mut tape = Tape::new();
        let a1 = tape.constant(a.clone());
        let a2 = tape.constant(a.clone());
        let aligned = nt_xent_loss(&mut tape, a1, a2, 0.07);
        let aligned_loss = tape.scalar(aligned);

        let mut tape2 = Tape::new();
        let x = tape2.constant(a);
        let y = tape2.constant(b);
        let random = nt_xent_loss(&mut tape2, x, y, 0.07);
        let random_loss = tape2.scalar(random);
        assert!(
            aligned_loss + 1.0 < random_loss,
            "aligned {aligned_loss} should be much lower than random {random_loss}"
        );
    }

    #[test]
    fn nt_xent_gradient_pulls_views_together() {
        // The gradient with respect to the augmented view should have a component pointing
        // towards the original view (reducing the loss when followed).
        let (a, b) = random_views(4, 8, 2);
        let mut tape = Tape::new();
        let av = tape.constant(a);
        let bv = tape.constant(b.clone());
        let loss = nt_xent_loss(&mut tape, av, bv, 0.1);
        let grads = tape.backward(loss);
        let g = grads
            .get(bv)
            .expect("augmented view must receive a gradient");
        // Take a small step against the gradient and verify the loss decreases.
        let stepped = b.sub(&g.scale(0.5));
        let mut tape2 = Tape::new();
        let av2 = tape2.constant(tape.value(av).clone());
        let bv2 = tape2.constant(stepped);
        let loss2 = nt_xent_loss(&mut tape2, av2, bv2, 0.1);
        assert!(tape2.scalar(loss2) < tape.scalar(loss));
    }

    #[test]
    fn barlow_twins_is_zero_for_perfectly_decorrelated_identical_views() {
        // Views equal to (a multiple of) the identity have a cross-correlation equal to the
        // identity matrix, so the loss must vanish.
        let z = Matrix::identity(6).scale(2.0);
        let mut tape = Tape::new();
        let a = tape.constant(z.clone());
        let b = tape.constant(z);
        let loss = barlow_twins_loss(&mut tape, a, b, 0.005);
        assert!(tape.scalar(loss) < 1e-6);
    }

    #[test]
    fn barlow_twins_penalizes_redundant_features() {
        // Duplicate every feature: off-diagonal correlations are 1, so the loss grows with
        // lambda.
        let mut rng = StdRng::seed_from_u64(3);
        let base = Matrix::random_normal(16, 4, 1.0, &mut rng);
        let redundant = Matrix::hstack(&[&base, &base]);
        let mut tape = Tape::new();
        let a = tape.constant(redundant.clone());
        let b = tape.constant(redundant);
        let low = barlow_twins_loss(&mut tape, a, b, 0.001);
        let low_val = tape.scalar(low);
        let mut tape2 = Tape::new();
        let a2 = tape2.constant(Matrix::hstack(&[&base, &base]));
        let b2 = tape2.constant(Matrix::hstack(&[&base, &base]));
        let high = barlow_twins_loss(&mut tape2, a2, b2, 0.1);
        assert!(tape2.scalar(high) > low_val * 10.0);
    }

    #[test]
    fn combined_loss_interpolates_between_objectives() {
        let (a, b) = random_views(6, 8, 4);
        let eval = |alpha: f32| {
            let mut tape = Tape::new();
            let av = tape.constant(a.clone());
            let bv = tape.constant(b.clone());
            let l = combined_loss(&mut tape, av, bv, 0.07, 0.005, alpha);
            tape.scalar(l)
        };
        let pure_contrast = eval(0.0);
        let mixed = eval(0.5);
        // alpha = 0 must equal the plain NT-Xent value.
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let nt = nt_xent_loss(&mut tape, av, bv, 0.07);
        assert!((pure_contrast - tape.scalar(nt)).abs() < 1e-5);
        assert!(mixed.is_finite() && mixed > 0.0);
    }

    #[test]
    #[should_panic(expected = "same batch size")]
    fn mismatched_batch_sizes_panic() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::zeros(4, 8));
        let b = tape.constant(Matrix::zeros(3, 8));
        let _ = nt_xent_loss(&mut tape, a, b, 0.07);
    }

    #[test]
    #[should_panic(expected = "at least 2 items")]
    fn single_item_batch_panics() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::zeros(1, 8));
        let b = tape.constant(Matrix::zeros(1, 8));
        let _ = nt_xent_loss(&mut tape, a, b, 0.07);
    }
}
