//! # sudowoodo-core
//!
//! The core of the Sudowoodo reproduction: a multi-purpose data integration & preparation
//! (DI&P) framework based on contrastive self-supervised learning
//! (Wang, Li, Wang — "Sudowoodo", ICDE 2023).
//!
//! The framework casts a wide range of DI&P tasks as one generic *matching* problem over
//! serialized data items and provides:
//!
//! * [`encoder`] — the embedding model `M_emb` (a compact Transformer or mean-pool encoder
//!   standing in for the paper's RoBERTa/DistilBERT);
//! * [`loss`] — the SimCLR contrastive loss, the Barlow Twins redundancy-regularization
//!   loss, and their combination (Equations 1–6);
//! * [`mod@pretrain`] — Algorithm 1 with the three optimizations of §IV (cutoff augmentation,
//!   clustering-based negative sampling, redundancy regularization);
//! * [`pseudo`] — pseudo labeling from the learned similarity space (§III-C);
//! * [`matcher`] — the pairwise matching model `M_pm` with the similarity-aware fine-tuning
//!   head `Linear(Z_xy ⊕ |Z_x − Z_y|)` (§III-B);
//! * [`pipeline`] — end-to-end pipelines for Entity Matching, data cleaning, and column
//!   matching;
//! * [`config`] — one configuration struct whose boolean switches reproduce every ablation
//!   variant of the paper.
//!
//! ## Quick example
//!
//! ```
//! use sudowoodo_core::config::SudowoodoConfig;
//! use sudowoodo_core::pipeline::EmPipeline;
//! use sudowoodo_datasets::em::EmProfile;
//!
//! // A miniature end-to-end run: pre-train, block, pseudo-label, fine-tune, evaluate.
//! let dataset = EmProfile::dblp_acm().generate(0.05, 1);
//! let mut config = SudowoodoConfig::test_config();
//! config.max_corpus_size = 80;
//! let result = EmPipeline::new(config).run(&dataset, Some(30));
//! assert!(result.matching.f1 >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod encoder;
pub mod loss;
pub mod matcher;
pub mod model_snapshot;
pub mod pipeline;
pub mod pretrain;
pub mod pseudo;

pub use config::{ClusterSpec, EncoderConfig, EncoderKind, SudowoodoConfig};
pub use encoder::Encoder;
pub use matcher::{FineTuneConfig, PairMatcher, TrainPair};
pub use pipeline::{CleaningPipeline, ColumnPipeline, EmPipeline};
pub use pretrain::{pretrain, PretrainReport};
pub use pseudo::{generate_pseudo_labels, PseudoLabelSet};
