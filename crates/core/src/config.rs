//! Configuration of the Sudowoodo framework.
//!
//! One [`SudowoodoConfig`] drives pre-training, pseudo-labeling, and fine-tuning. The four
//! optimization switches (`use_cutoff`, `use_clustering`, `use_barlow_twins`,
//! `use_pseudo_labels`) correspond exactly to the ablation variants of Tables V / VI / XV:
//! turning all four off recovers the plain SimCLR baseline.

use serde::Serialize;
use sudowoodo_augment::{CutoffKind, DaOp};
use sudowoodo_index::QuantSpec;

/// Which encoder architecture the embedding model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncoderKind {
    /// Token embeddings mean-pooled and passed through a small MLP. Fast; used in tests and
    /// as the "small LM" stand-in.
    MeanPool,
    /// A compact Transformer encoder (the stand-in for RoBERTa/DistilBERT).
    Transformer,
}

/// Hyper-parameters of the embedding model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EncoderConfig {
    /// Encoder architecture.
    pub kind: EncoderKind,
    /// Embedding / model dimension.
    pub dim: usize,
    /// Number of Transformer layers (ignored by `MeanPool`).
    pub layers: usize,
    /// Number of attention heads (ignored by `MeanPool`).
    pub heads: usize,
    /// Feed-forward hidden width (also the MLP width of `MeanPool`).
    pub ff_hidden: usize,
    /// Maximum sequence length (tokens beyond this are truncated).
    pub max_len: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            kind: EncoderKind::Transformer,
            dim: 48,
            layers: 1,
            heads: 2,
            ff_hidden: 96,
            max_len: 40,
        }
    }
}

impl EncoderConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 16,
            layers: 1,
            heads: 2,
            ff_hidden: 32,
            max_len: 24,
        }
    }
}

/// Shape of a scatter-gather serving cluster over the published blocking-index
/// snapshot (the `sudowoodo-coord` crate): how many serve processes to run and how
/// shards are replicated onto them. Carried on [`ServeConfig::cluster`] (under
/// [`SudowoodoConfig::serve`]); `None` keeps serving single-process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ClusterSpec {
    /// Serve processes in the cluster (each cold-loads the full snapshot).
    pub processes: usize,
    /// Replicas per shard (primary + backups) on the placement ring. Capped at
    /// `processes`; with `2`, any single process loss is invisible to queries.
    pub replication: usize,
    /// Virtual nodes per endpoint on the consistent-hash ring (more smooths the
    /// load spread across processes).
    pub virtual_nodes: usize,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            processes: 3,
            replication: 2,
            virtual_nodes: 64,
        }
    }
}

impl ClusterSpec {
    /// Parses a `processes[xreplication[xvirtual_nodes]]` spec, e.g. `"3"`,
    /// `"3x2"`, `"5x2x128"` — the shape used by benches and CLI flags. Omitted
    /// fields take the [`ClusterSpec::default`] values.
    ///
    /// # Errors
    /// A descriptive message on malformed input or zero fields.
    pub fn parse(spec: &str) -> Result<ClusterSpec, String> {
        let mut out = ClusterSpec::default();
        let mut parts = spec.split('x');
        let fields: [&mut usize; 3] = [
            &mut out.processes,
            &mut out.replication,
            &mut out.virtual_nodes,
        ];
        for (name, field) in ["processes", "replication", "virtual_nodes"]
            .into_iter()
            .zip(fields)
        {
            let Some(part) = parts.next() else { break };
            *field = part
                .trim()
                .parse()
                .map_err(|_| format!("cluster spec {spec:?}: bad {name} field {part:?}"))?;
            if *field == 0 {
                return Err(format!("cluster spec {spec:?}: {name} must be at least 1"));
            }
        }
        if parts.next().is_some() {
            return Err(format!(
                "cluster spec {spec:?}: expected at most processes x replication x \
                 virtual_nodes"
            ));
        }
        Ok(out)
    }

    /// Decodes the [`serde::Value`] tree produced by `Serialize` back into a spec
    /// (the serde shim has no `Deserialize` half, so decoding is by hand).
    ///
    /// # Errors
    /// A descriptive message on missing fields or wrong JSON types.
    pub fn from_value(value: &serde::Value) -> Result<ClusterSpec, String> {
        Ok(ClusterSpec {
            processes: field_usize(value, "processes")?,
            replication: field_usize(value, "replication")?,
            virtual_nodes: field_usize(value, "virtual_nodes")?,
        })
    }
}

/// Serving-side knobs of the framework, grouped: admission control, deadlines,
/// client retries, socket workers, and the optional scatter-gather cluster shape.
///
/// Carried on [`SudowoodoConfig::serve`]. These were flat `serve_*` fields on
/// [`SudowoodoConfig`] before; the nesting keeps serving concerns in one place and
/// gives them one (de)serialization boundary — [`Serialize`] via the serde shim and
/// [`ServeConfig::from_value`] for the way back.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ServeConfig {
    /// Admission-queue depth of a query server spawned over the blocking index (maps
    /// to `sudowoodo_serve::ServerConfig::admission_queue_depth`): requests beyond
    /// this many waiting are answered with a `BUSY` frame instead of queueing without
    /// bound — the server sheds load rather than building unbounded latency.
    pub queue_depth: usize,
    /// Per-request deadline, in milliseconds (maps to
    /// `sudowoodo_serve::ServerConfig::request_deadline`): a request that waited
    /// longer than this in the admission queue is answered `BUSY` without running.
    /// `None` (the default) disables deadlines.
    pub deadline_ms: Option<u64>,
    /// Client-side retries for idempotent requests (maps to
    /// `sudowoodo_serve::RetryPolicy::max_retries`): transport failures and `BUSY`
    /// load-shed responses are retried this many times with exponential backoff and
    /// deterministic jitter; server error responses are never retried. A *degraded*
    /// response (quarantined shards skipped server-side) is a success with an
    /// explicit flag, not a retry trigger.
    pub retry_max: u32,
    /// I/O worker threads of the server (maps to
    /// `sudowoodo_serve::ServerConfig::worker_threads`): a fixed pool of
    /// readiness-polled workers multiplexes every connection, so this bounds
    /// socket-I/O parallelism — join compute runs on its own thread either way. `0`
    /// (the default) sizes the pool from the machine's available parallelism.
    pub worker_threads: usize,
    /// Shape of a distributed scatter-gather serving cluster (see [`ClusterSpec`]
    /// and the `sudowoodo-coord` crate). `None` (the default) keeps serving
    /// single-process.
    pub cluster: Option<ClusterSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 256,
            deadline_ms: None,
            retry_max: 3,
            worker_threads: 0,
            cluster: None,
        }
    }
}

impl ServeConfig {
    /// Decodes the [`serde::Value`] tree produced by `Serialize` back into a config
    /// (the serde shim has no `Deserialize` half, so decoding is by hand). Inverse
    /// of `to_value`: `from_value(&c.to_value()) == Ok(c)` for every config.
    ///
    /// # Errors
    /// A descriptive message on missing fields or wrong JSON types.
    pub fn from_value(value: &serde::Value) -> Result<ServeConfig, String> {
        let deadline_ms = match field(value, "deadline_ms")? {
            serde::Value::Null => None,
            serde::Value::Number(n) => Some(*n as u64),
            other => return Err(format!("serve config: deadline_ms is {other:?}")),
        };
        let cluster = match field(value, "cluster")? {
            serde::Value::Null => None,
            nested @ serde::Value::Object(_) => Some(ClusterSpec::from_value(nested)?),
            other => return Err(format!("serve config: cluster is {other:?}")),
        };
        Ok(ServeConfig {
            queue_depth: field_usize(value, "queue_depth")?,
            deadline_ms,
            retry_max: field_usize(value, "retry_max")? as u32,
            worker_threads: field_usize(value, "worker_threads")?,
            cluster,
        })
    }
}

/// Looks up one field of a [`serde::Value::Object`].
fn field<'v>(value: &'v serde::Value, name: &str) -> Result<&'v serde::Value, String> {
    let serde::Value::Object(entries) = value else {
        return Err(format!("expected a JSON object, got {value:?}"));
    };
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {name:?}"))
}

/// Looks up one numeric field and converts it to `usize`.
fn field_usize(value: &serde::Value, name: &str) -> Result<usize, String> {
    match field(value, name)? {
        serde::Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
        other => Err(format!(
            "field {name:?} is not a non-negative integer: {other:?}"
        )),
    }
}

/// The full Sudowoodo configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SudowoodoConfig {
    /// Embedding-model architecture.
    pub encoder: EncoderConfig,
    /// Projection-head dimension (the projector `g`, discarded after pre-training).
    pub projector_dim: usize,

    // ---- pre-training -------------------------------------------------------------------
    /// Pre-training epochs.
    pub pretrain_epochs: usize,
    /// Pre-training batch size `N` (each batch yields `2N` views).
    pub batch_size: usize,
    /// Learning rate for pre-training.
    pub pretrain_lr: f32,
    /// Maximum number of corpus items used for pre-training (the paper caps it at 10,000).
    pub max_corpus_size: usize,
    /// Contrastive temperature `tau`.
    pub temperature: f32,
    /// Base data-augmentation operator.
    pub da_op: DaOp,
    /// Cutoff flavour applied on top of the base operator.
    pub cutoff: CutoffKind,
    /// `cutoff_ratio` hyper-parameter (fraction of tokens/features zeroed).
    pub cutoff_ratio: f32,
    /// `num_clusters` for clustering-based negative sampling.
    pub num_clusters: usize,
    /// Barlow-Twins off-diagonal weight `lambda`.
    pub bt_lambda: f32,
    /// Weight `alpha` of the Barlow-Twins term in the combined loss (Equation 6).
    pub bt_alpha: f32,

    // ---- optimizations (ablation switches) --------------------------------------------
    /// Enable the cutoff DA optimization (§IV-A).
    pub use_cutoff: bool,
    /// Enable clustering-based negative sampling (§IV-B).
    pub use_clustering: bool,
    /// Enable redundancy regularization / Barlow Twins (§IV-C).
    pub use_barlow_twins: bool,
    /// Enable pseudo labeling (§III-C).
    pub use_pseudo_labels: bool,

    // ---- pseudo labeling ---------------------------------------------------------------
    /// Assumed positive ratio `rho` among candidate pairs.
    pub pseudo_positive_ratio: f32,
    /// `multiplier`: total training-set size after adding pseudo labels, as a multiple of
    /// the manually labeled set (Table IV; 8 was found best).
    pub pseudo_multiplier: usize,

    // ---- fine-tuning ---------------------------------------------------------------------
    /// Fine-tuning epochs.
    pub finetune_epochs: usize,
    /// Fine-tuning batch size.
    pub finetune_batch_size: usize,
    /// Learning rate for fine-tuning.
    pub finetune_lr: f32,
    /// Use the similarity-aware head `Linear(Z_xy ⊕ |Z_x − Z_y|)` (Figure 4); `false` falls
    /// back to the default concatenation-only fine-tuning used by the LM baselines.
    pub use_diff_head: bool,

    // ---- blocking ------------------------------------------------------------------------
    /// Number of nearest neighbours retrieved per item during blocking.
    pub blocking_k: usize,
    /// Shard capacity of the blocking index. `None` keeps the whole corpus in one dense
    /// matrix (fastest for static in-memory corpora); `Some(c)` routes blocking through
    /// the streaming `ShardedCosineIndex` with `c` rows per shard — same results, but the
    /// corpus is scored shard-by-shard so it can grow incrementally and never needs one
    /// monolithic allocation.
    pub blocking_shard_capacity: Option<usize>,
    /// Resident-memory budget of the sharded blocking index, in bytes of shard-matrix
    /// payload. `Some(b)` spills the least-recently-used shards beyond `b` bytes to a
    /// compact on-disk format (they are read back only when a query needs them, and
    /// routing statistics skip — and never fault in — shards that provably cannot enter
    /// the top-k). `None` keeps every shard resident. Ignored by the dense layout
    /// (`blocking_shard_capacity: None`), which cannot partially spill. Results are
    /// identical in every configuration; only the memory/IO profile changes.
    pub shard_memory_budget: Option<usize>,
    /// Optional i8 quantization of the sharded blocking index's shard payloads
    /// (`sudowoodo_index::QuantSpec`). `Some(spec)` stores each shard as per-row-scaled
    /// i8 codes alongside the exact f32 payload; `knn_join` then runs a two-stage scan —
    /// a cheap quantized pass that keeps `spec.alpha · k` candidates under an admissible
    /// error bound, followed by an exact f32 rescore — so the final ids **and** score
    /// bits are identical to the dense build while the scan reads ~4× fewer payload
    /// bytes. Ignored by the dense layout (`blocking_shard_capacity: None`). `None`
    /// (the default) keeps plain f32 shards.
    pub shard_quantization: Option<QuantSpec>,
    /// Query-batch cache capacity of the sharded blocking index, in cached batches
    /// (`0` disables). A repeated `knn_join` batch (the serving workload: dashboard
    /// refreshes, retried RPCs) answers from the cache without touching a single shard
    /// — no GEMM, no disk fault; entries are invalidated by the index's mutation epoch,
    /// so a hit is always result-identical to recomputing. Ignored by the dense layout,
    /// which has no mutation epoch to invalidate by.
    pub blocking_query_cache: usize,
    /// Directory the pipelines persist the built blocking index into (see
    /// `sudowoodo_index::snapshot`): after blocking, the index is saved as a versioned
    /// manifest plus per-shard payloads, so a separate serving process (the
    /// `sudowoodo-serve` crate) can load it cold — O(manifest), not O(corpus) — and
    /// answer `knn_join` traffic without rebuilding or re-embedding anything. `None`
    /// (the default) persists nothing. Snapshot I/O failures are reported as warnings,
    /// never pipeline failures.
    pub snapshot_dir: Option<std::path::PathBuf>,

    // ---- serving -------------------------------------------------------------------------
    /// Serving-side knobs, grouped (see [`ServeConfig`]): admission control,
    /// deadlines, client retries, socket workers, and the optional scatter-gather
    /// cluster shape. These replaced the flat `serve_queue_depth` /
    /// `serve_deadline_ms` / `serve_retry_max` / `serve_worker_threads` /
    /// `cluster_spec` fields.
    pub serve: ServeConfig,

    /// Random seed controlling every stochastic choice.
    pub seed: u64,
}

impl Default for SudowoodoConfig {
    fn default() -> Self {
        SudowoodoConfig {
            encoder: EncoderConfig::default(),
            projector_dim: 48,
            pretrain_epochs: 3,
            batch_size: 32,
            pretrain_lr: 1e-3,
            max_corpus_size: 10_000,
            temperature: 0.07,
            da_op: DaOp::TokenDel,
            cutoff: CutoffKind::Span,
            cutoff_ratio: 0.05,
            num_clusters: 30,
            bt_lambda: 3.9e-3,
            bt_alpha: 1e-3,
            use_cutoff: true,
            use_clustering: true,
            use_barlow_twins: true,
            use_pseudo_labels: true,
            pseudo_positive_ratio: 0.10,
            pseudo_multiplier: 8,
            finetune_epochs: 10,
            finetune_batch_size: 16,
            finetune_lr: 5e-4,
            use_diff_head: true,
            blocking_k: 10,
            blocking_shard_capacity: None,
            shard_memory_budget: None,
            shard_quantization: None,
            blocking_query_cache: 8,
            snapshot_dir: None,
            serve: ServeConfig::default(),
            seed: 42,
        }
    }
}

impl SudowoodoConfig {
    /// A small configuration for unit/integration tests (tiny encoder, one epoch).
    ///
    /// The encoder architecture honours the `SUDOWOODO_TEST_ENCODER` environment variable
    /// (`meanpool` | `transformer`, case-insensitive): CI runs the workspace test suite
    /// once per encoder kind so the batched Transformer path cannot silently rot while
    /// the default (`MeanPool`) tier stays fast.
    ///
    /// `SUDOWOODO_TEST_QUANT=1` routes blocking through the sharded layout with i8
    /// shard quantization enabled, giving CI a leg where every pipeline join runs the
    /// quantized two-stage scan. Because the quantized join is bit-identical to the
    /// dense one, every test must pass unchanged on that leg.
    pub fn test_config() -> Self {
        let mut encoder = EncoderConfig::tiny();
        match std::env::var("SUDOWOODO_TEST_ENCODER")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "transformer" => encoder.kind = EncoderKind::Transformer,
            "meanpool" | "" => {}
            other => panic!("SUDOWOODO_TEST_ENCODER: unknown encoder kind {other:?}"),
        }
        let quant = match std::env::var("SUDOWOODO_TEST_QUANT")
            .unwrap_or_default()
            .as_str()
        {
            "1" => true,
            "" | "0" => false,
            other => panic!("SUDOWOODO_TEST_QUANT: expected 0 or 1, got {other:?}"),
        };
        SudowoodoConfig {
            encoder,
            blocking_shard_capacity: quant.then_some(64),
            shard_quantization: quant.then(QuantSpec::default),
            projector_dim: 16,
            pretrain_epochs: 1,
            batch_size: 8,
            max_corpus_size: 400,
            finetune_epochs: 3,
            finetune_batch_size: 8,
            num_clusters: 4,
            pseudo_multiplier: 4,
            blocking_k: 5,
            ..SudowoodoConfig::default()
        }
    }

    /// The plain SimCLR baseline: all four optimizations disabled.
    pub fn simclr(mut self) -> Self {
        self.use_cutoff = false;
        self.use_clustering = false;
        self.use_barlow_twins = false;
        self.use_pseudo_labels = false;
        self
    }

    /// Disables one named optimization (`"cut"`, `"cls"`, `"RR"`, `"PL"`), mirroring the
    /// paper's `Sudowoodo (-X)` notation.
    ///
    /// # Panics
    /// Panics on an unknown name.
    pub fn without(mut self, optimization: &str) -> Self {
        match optimization {
            "cut" => self.use_cutoff = false,
            "cls" => self.use_clustering = false,
            "RR" | "rr" => self.use_barlow_twins = false,
            "PL" | "pl" => self.use_pseudo_labels = false,
            other => panic!("unknown optimization name: {other}"),
        }
        self
    }

    /// Human-readable variant name based on which optimizations are enabled.
    pub fn variant_name(&self) -> String {
        let mut disabled = Vec::new();
        if !self.use_cutoff {
            disabled.push("-cut");
        }
        if !self.use_clustering {
            disabled.push("-cls");
        }
        if !self.use_barlow_twins {
            disabled.push("-RR");
        }
        if !self.use_pseudo_labels {
            disabled.push("-PL");
        }
        if disabled.len() == 4 {
            "SimCLR".to_string()
        } else if disabled.is_empty() {
            "Sudowoodo".to_string()
        } else {
            format!("Sudowoodo ({})", disabled.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_hyperparameters() {
        let c = SudowoodoConfig::default();
        assert_eq!(c.temperature, 0.07);
        assert_eq!(c.bt_lambda, 3.9e-3);
        assert_eq!(c.pseudo_multiplier, 8);
        assert_eq!(c.max_corpus_size, 10_000);
        assert!(c.use_cutoff && c.use_clustering && c.use_barlow_twins && c.use_pseudo_labels);
    }

    #[test]
    fn variant_names_follow_paper_notation() {
        assert_eq!(SudowoodoConfig::default().variant_name(), "Sudowoodo");
        assert_eq!(SudowoodoConfig::default().simclr().variant_name(), "SimCLR");
        assert_eq!(
            SudowoodoConfig::default().without("cut").variant_name(),
            "Sudowoodo (-cut)"
        );
        assert_eq!(
            SudowoodoConfig::default()
                .without("cut")
                .without("RR")
                .variant_name(),
            "Sudowoodo (-cut,-RR)"
        );
    }

    #[test]
    #[should_panic(expected = "unknown optimization")]
    fn unknown_ablation_name_panics() {
        let _ = SudowoodoConfig::default().without("bogus");
    }

    #[test]
    fn cluster_spec_parses_partial_and_full_forms() {
        assert_eq!(ClusterSpec::parse("3").unwrap(), ClusterSpec::default());
        assert_eq!(
            ClusterSpec::parse("5x1").unwrap(),
            ClusterSpec {
                processes: 5,
                replication: 1,
                ..ClusterSpec::default()
            }
        );
        assert_eq!(
            ClusterSpec::parse(" 4 x 2 x 128 ").unwrap(),
            ClusterSpec {
                processes: 4,
                replication: 2,
                virtual_nodes: 128,
            }
        );
    }

    #[test]
    fn cluster_spec_rejects_malformed_input() {
        for bad in ["", "three", "3x", "0x2", "3x0", "3x2x0", "3x2x64x9"] {
            let err = ClusterSpec::parse(bad).unwrap_err();
            assert!(err.contains("cluster spec"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn cluster_serving_is_off_by_default() {
        assert_eq!(SudowoodoConfig::default().serve.cluster, None);
    }

    #[test]
    fn serve_config_round_trips_through_serde_value() {
        for config in [
            ServeConfig::default(),
            ServeConfig {
                queue_depth: 16,
                deadline_ms: Some(750),
                retry_max: 7,
                worker_threads: 2,
                cluster: Some(ClusterSpec {
                    processes: 5,
                    replication: 2,
                    virtual_nodes: 128,
                }),
            },
        ] {
            let value = config.to_value();
            assert_eq!(ServeConfig::from_value(&value), Ok(config));
        }
    }

    #[test]
    fn serve_config_decode_rejects_malformed_trees() {
        let err = ServeConfig::from_value(&serde::Value::Null).unwrap_err();
        assert!(err.contains("expected a JSON object"), "{err}");

        let mut value = ServeConfig::default().to_value();
        if let serde::Value::Object(entries) = &mut value {
            entries.retain(|(key, _)| key != "retry_max");
        }
        let err = ServeConfig::from_value(&value).unwrap_err();
        assert!(err.contains("retry_max"), "{err}");
    }
}
