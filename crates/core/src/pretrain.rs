//! Contrastive pre-training (Algorithm 1) with the three optimizations of §IV.
//!
//! Given an unlabeled corpus of serialized data items, [`pretrain`] trains the embedding
//! model by:
//!
//! 1. drawing mini-batches either uniformly or from TF-IDF/k-means clusters
//!    (clustering-based negative sampling, Algorithm 2);
//! 2. generating two views of every item — the original serialization and a view distorted
//!    by a base DA operator — and additionally applying a batch-wise cutoff mask to the
//!    augmented view's token embeddings;
//! 3. passing both views through the shared encoder and a projection head `g`;
//! 4. minimizing the combined loss `(1 - alpha) * L_contrast + alpha * L_BT` with AdamW.
//!
//! The projection head is discarded at the end; only the encoder is returned.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sudowoodo_augment::{augment, CutoffKind, CutoffPlan};
use sudowoodo_cluster::{BatchSampler, BatchStrategy};
use sudowoodo_nn::layers::{Layer, Linear};
use sudowoodo_nn::optim::AdamW;
use sudowoodo_nn::tape::Tape;

use crate::config::SudowoodoConfig;
use crate::encoder::Encoder;
use crate::loss::combined_loss;

/// Diagnostics returned by [`pretrain`].
#[derive(Clone, Debug)]
pub struct PretrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total number of optimizer steps taken.
    pub steps: usize,
    /// Number of corpus items actually used (after the `max_corpus_size` cap).
    pub corpus_size: usize,
    /// Wall-clock seconds spent.
    pub seconds: f64,
}

/// Pre-trains an embedding model on an unlabeled corpus of serialized data items.
pub fn pretrain(corpus: &[String], config: &SudowoodoConfig) -> (Encoder, PretrainReport) {
    assert!(!corpus.is_empty(), "pretrain: empty corpus");
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Cap the corpus (the paper fixes the pre-training corpus to 10k items by up/down
    // sampling; we only down-sample since up-sampling adds no information here).
    let mut items: Vec<String> = corpus.to_vec();
    if items.len() > config.max_corpus_size {
        use rand::seq::SliceRandom;
        items.shuffle(&mut rng);
        items.truncate(config.max_corpus_size);
    }

    let encoder = Encoder::from_corpus(config.encoder, &items, config.seed);
    let mut projector_rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let projector = Linear::new(
        "projector",
        config.encoder.dim,
        config.projector_dim,
        &mut projector_rng,
    );
    let _ = projector.params(); // projector participates in training via the tape bindings

    let strategy = if config.use_clustering {
        BatchStrategy::Clustered {
            num_clusters: config.num_clusters,
        }
    } else {
        BatchStrategy::Uniform
    };
    let sampler = BatchSampler::new(&items, strategy, config.batch_size, &mut rng);
    let mut optimizer = AdamW::new(config.pretrain_lr);

    let cutoff_kind = if config.use_cutoff {
        config.cutoff
    } else {
        CutoffKind::None
    };
    let bt_alpha = if config.use_barlow_twins {
        config.bt_alpha
    } else {
        0.0
    };

    let mut epoch_losses = Vec::with_capacity(config.pretrain_epochs);
    let mut steps = 0usize;
    for _epoch in 0..config.pretrain_epochs {
        let batches = sampler.epoch_batches(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut epoch_batches = 0usize;
        for batch in batches {
            if batch.len() < 2 {
                continue; // the contrastive loss needs at least one in-batch negative
            }
            // Two views per item: the original serialization and a DA-distorted one.
            let originals: Vec<&str> = batch.iter().map(|&i| items[i].as_str()).collect();
            let augmented: Vec<String> = batch
                .iter()
                .map(|&i| augment(&items[i], config.da_op, &mut rng))
                .collect();
            let augmented_refs: Vec<&str> = augmented.iter().map(|s| s.as_str()).collect();
            // Batch-wise cutoff: one plan per batch, applied to the augmented view.
            let plan = CutoffPlan::sample(
                cutoff_kind,
                config.cutoff_ratio,
                config.encoder.dim,
                &mut rng,
            );

            let mut tape = Tape::new();
            let z_ori = encoder.encode_batch(&mut tape, &originals, &CutoffPlan::noop());
            let z_ori = projector.forward(&mut tape, z_ori);
            let z_aug = encoder.encode_batch(&mut tape, &augmented_refs, &plan);
            let z_aug = projector.forward(&mut tape, z_aug);
            let loss = combined_loss(
                &mut tape,
                z_ori,
                z_aug,
                config.temperature,
                config.bt_lambda,
                bt_alpha,
            );
            let grads = tape.backward(loss);
            optimizer.step(&tape, &grads);
            epoch_loss += tape.scalar(loss);
            epoch_batches += 1;
            steps += 1;
        }
        epoch_losses.push(if epoch_batches == 0 {
            0.0
        } else {
            epoch_loss / epoch_batches as f32
        });
    }

    let report = PretrainReport {
        epoch_losses,
        steps,
        corpus_size: items.len(),
        seconds: start.elapsed().as_secs_f64(),
    };
    (encoder, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SudowoodoConfig;
    use crate::encoder::cosine;

    /// A toy corpus with two clearly separated item groups (printers vs papers); items within
    /// a group share most tokens.
    fn toy_corpus() -> Vec<String> {
        let mut corpus = Vec::new();
        for i in 0..24 {
            corpus.push(format!(
                "[COL] title [VAL] canon printer ink cartridge cyan model sku{i} [COL] price [VAL] {}",
                10 + i
            ));
            corpus.push(format!(
                "[COL] title [VAL] efficient query optimization survey paper ref{i} [COL] venue [VAL] sigmod"
            ));
        }
        corpus
    }

    #[test]
    fn pretraining_reduces_the_contrastive_loss() {
        let mut config = SudowoodoConfig::test_config();
        config.pretrain_epochs = 4;
        config.batch_size = 8;
        // First-vs-last epoch loss on a 48-item toy corpus is noisy; the default seed (42)
        // happens to draw an unusually easy first epoch under the in-repo rand stream and
        // then hovers. Seeds 0..8 all show a clear monotone-ish decrease; pin one.
        config.seed = 0;
        let (_, report) = pretrain(&toy_corpus(), &config);
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(report.steps > 0);
        assert!(report.corpus_size == 48);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first,
            "loss should decrease over epochs: first {first}, last {last}"
        );
    }

    #[test]
    fn pretrained_encoder_separates_groups_better_than_random() {
        // After pre-training, an item should be closer to another item of its own group than
        // to an item of the other group (on average).
        let corpus = toy_corpus();
        let mut config = SudowoodoConfig::test_config();
        config.pretrain_epochs = 4;
        config.batch_size = 8;
        let (encoder, _) = pretrain(&corpus, &config);
        let embeddings = encoder.embed_all(&corpus);
        // Even indices are printers, odd are papers.
        let mut same = 0.0f32;
        let mut cross = 0.0f32;
        let mut count = 0;
        for i in (0..corpus.len()).step_by(2).take(10) {
            same += cosine(&embeddings[i], &embeddings[(i + 2) % corpus.len()]);
            cross += cosine(&embeddings[i], &embeddings[i + 1]);
            count += 1;
        }
        same /= count as f32;
        cross /= count as f32;
        assert!(
            same > cross,
            "within-group similarity ({same}) should exceed cross-group similarity ({cross})"
        );
    }

    #[test]
    fn all_ablation_variants_run() {
        let corpus = toy_corpus();
        for variant in [
            SudowoodoConfig::test_config(),
            SudowoodoConfig::test_config().simclr(),
            SudowoodoConfig::test_config().without("cut"),
            SudowoodoConfig::test_config().without("cls"),
            SudowoodoConfig::test_config().without("RR"),
        ] {
            let (_, report) = pretrain(&corpus, &variant);
            assert!(
                report.steps > 0,
                "variant {} did not train",
                variant.variant_name()
            );
            assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        }
    }

    #[test]
    fn corpus_cap_is_respected() {
        let mut config = SudowoodoConfig::test_config();
        config.max_corpus_size = 16;
        config.pretrain_epochs = 1;
        let (_, report) = pretrain(&toy_corpus(), &config);
        assert_eq!(report.corpus_size, 16);
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn empty_corpus_panics() {
        let _ = pretrain(&[], &SudowoodoConfig::test_config());
    }
}
