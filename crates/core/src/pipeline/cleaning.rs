//! Data-cleaning (error correction) pipeline (§V-A).
//!
//! Error correction is cast as matching dirty cells with candidate corrections: the encoder
//! is pre-trained on contextual serializations of the rows and their candidate corrections,
//! a pairwise matcher is fine-tuned on the cells of a handful of labeled rows (20 in the
//! paper), and each cell is then corrected with the candidate that maximizes the predicted
//! match probability. No separate error-detection stage is used.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sudowoodo_datasets::cleaning::CleaningDataset;
use sudowoodo_ml::metrics::PrF1;
use sudowoodo_text::serialize::{serialize_cell_in_context, serialize_record};

use crate::config::SudowoodoConfig;
use crate::matcher::{FineTuneConfig, PairMatcher, TrainPair};
use crate::pretrain::pretrain;

/// Result of one data-cleaning run.
#[derive(Clone, Debug)]
pub struct CleaningResult {
    /// Dataset name.
    pub dataset: String,
    /// Sudowoodo variant name.
    pub variant: String,
    /// Error-correction quality over the unlabeled rows.
    pub correction: PrF1,
    /// Number of corrections the system proposed.
    pub corrections_made: usize,
    /// Number of erroneous cells in the evaluated rows.
    pub errors_in_scope: usize,
    /// Number of labeled rows used for fine-tuning.
    pub labeled_rows: usize,
    /// Wall-clock seconds: pre-training.
    pub pretrain_secs: f64,
    /// Wall-clock seconds: fine-tuning + inference.
    pub finetune_secs: f64,
}

/// The Sudowoodo data-cleaning pipeline.
#[derive(Clone, Debug)]
pub struct CleaningPipeline {
    /// Configuration (pseudo labeling is not used for cleaning; see §V-A).
    pub config: SudowoodoConfig,
}

impl CleaningPipeline {
    /// Creates a pipeline.
    pub fn new(config: SudowoodoConfig) -> Self {
        CleaningPipeline { config }
    }

    /// Builds the unlabeled pre-training corpus: every row's contextual serialization plus
    /// (a capped number of) candidate corrections rendered in context.
    fn build_corpus(&self, dataset: &CleaningDataset) -> Vec<String> {
        let mut corpus: Vec<String> = dataset.dirty.rows.iter().map(serialize_record).collect();
        for (&(row, col), candidates) in &dataset.candidates {
            if corpus.len() >= self.config.max_corpus_size {
                break;
            }
            if let Some(record) = dataset.dirty.rows.get(row) {
                for candidate in candidates.iter().take(3) {
                    corpus.push(serialize_cell_in_context(record, col, candidate));
                }
            }
        }
        corpus
    }

    /// Training pairs for one row: for every cell with candidates, pair the current cell (in
    /// row context) with each candidate correction (in row context); the label is whether the
    /// candidate equals the clean value.
    fn row_pairs(dataset: &CleaningDataset, row: usize) -> Vec<TrainPair> {
        let mut pairs = Vec::new();
        let record = &dataset.dirty.rows[row];
        for col in 0..dataset.dirty.num_columns() {
            let Some(candidates) = dataset.candidates.get(&(row, col)) else {
                continue;
            };
            let current = serialize_record(record);
            let clean_value = dataset.clean.cell(row, col).unwrap_or_default();
            for candidate in candidates {
                let candidate_text = serialize_cell_in_context(record, col, candidate);
                pairs.push(TrainPair::new(
                    current.clone(),
                    candidate_text,
                    candidate == clean_value,
                ));
            }
        }
        pairs
    }

    /// Runs the pipeline: pre-train, fine-tune on `labeled_rows` uniformly sampled rows, and
    /// evaluate the corrections proposed for all remaining rows.
    pub fn run(&self, dataset: &CleaningDataset, labeled_rows: usize) -> CleaningResult {
        let corpus = self.build_corpus(dataset);
        let (encoder, report) = pretrain(&corpus, &self.config);
        let pretrain_secs = report.seconds;

        let finetune_start = Instant::now();
        let num_rows = dataset.dirty.num_rows();
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(13));
        let mut row_order: Vec<usize> = (0..num_rows).collect();
        row_order.shuffle(&mut rng);
        let labeled: Vec<usize> = row_order.iter().copied().take(labeled_rows).collect();
        let evaluated: Vec<usize> = row_order.iter().copied().skip(labeled_rows).collect();

        let mut train_pairs = Vec::new();
        for &row in &labeled {
            train_pairs.extend(Self::row_pairs(dataset, row));
        }
        let mut matcher = PairMatcher::new(encoder, self.config.use_diff_head, self.config.seed);
        matcher.fine_tune(
            &train_pairs,
            &FineTuneConfig {
                epochs: self.config.finetune_epochs,
                batch_size: self.config.finetune_batch_size,
                learning_rate: self.config.finetune_lr,
                seed: self.config.seed,
            },
        );
        super::persist_matcher(&self.config, &matcher);
        // Candidate sets are heavily imbalanced (at most one correct candidate per cell), so
        // calibrate the acceptance threshold on the labeled rows rather than using 0.5.
        let acceptance_threshold = if train_pairs.is_empty() {
            0.5
        } else {
            let inputs: Vec<(String, String)> = train_pairs
                .iter()
                .map(|p| (p.left.clone(), p.right.clone()))
                .collect();
            let scores = matcher.predict_scores(&inputs);
            let gold: Vec<bool> = train_pairs.iter().map(|p| p.label).collect();
            sudowoodo_ml::metrics::best_f1_threshold(&scores, &gold).0
        };

        // Propose corrections on the evaluated rows.
        let mut corrections: Vec<(usize, usize, String)> = Vec::new();
        for &row in &evaluated {
            let record = &dataset.dirty.rows[row];
            let current_text = serialize_record(record);
            for col in 0..dataset.dirty.num_columns() {
                let Some(candidates) = dataset.candidates.get(&(row, col)) else {
                    continue;
                };
                let current_value = dataset.dirty.cell(row, col).unwrap_or_default();
                let pairs: Vec<(String, String)> = candidates
                    .iter()
                    .map(|c| {
                        (
                            current_text.clone(),
                            serialize_cell_in_context(record, col, c),
                        )
                    })
                    .collect();
                let scores = matcher.predict_scores(&pairs);
                let best = scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal));
                if let Some((idx, &score)) = best {
                    let candidate = &candidates[idx];
                    if score >= acceptance_threshold && candidate != current_value {
                        corrections.push((row, col, candidate.clone()));
                    }
                }
            }
        }

        // Score the corrections: a correction is correct iff the cell is truly erroneous and
        // the proposed value equals the clean value. Recall is over all errors in the
        // evaluated rows.
        let evaluated_set: std::collections::HashSet<usize> = evaluated.iter().copied().collect();
        let errors_in_scope = dataset
            .errors
            .iter()
            .filter(|e| evaluated_set.contains(&e.row))
            .count();
        let mut correct = 0usize;
        for (row, col, value) in &corrections {
            if dataset.correction_for(*row, *col) == Some(value.as_str()) {
                correct += 1;
            }
        }
        let precision = if corrections.is_empty() {
            0.0
        } else {
            correct as f32 / corrections.len() as f32
        };
        let recall = if errors_in_scope == 0 {
            0.0
        } else {
            correct as f32 / errors_in_scope as f32
        };
        let f1 = if precision + recall <= 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };

        CleaningResult {
            dataset: dataset.name.clone(),
            variant: self.config.variant_name(),
            correction: PrF1 {
                precision,
                recall,
                f1,
            },
            corrections_made: corrections.len(),
            errors_in_scope,
            labeled_rows: labeled.len(),
            pretrain_secs,
            finetune_secs: finetune_start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::cleaning::CleaningProfile;

    fn tiny_config() -> SudowoodoConfig {
        let mut c = SudowoodoConfig::test_config();
        c.pretrain_epochs = 1;
        c.finetune_epochs = 2;
        c.max_corpus_size = 100;
        c
    }

    #[test]
    fn cleaning_pipeline_runs_and_reports_consistent_counts() {
        let dataset = CleaningProfile::beers().generate(0.06, 11);
        let pipeline = CleaningPipeline::new(tiny_config());
        let result = pipeline.run(&dataset, 6);
        assert_eq!(result.dataset, "beers");
        assert_eq!(result.labeled_rows, 6);
        assert!(result.correction.f1 >= 0.0 && result.correction.f1 <= 1.0);
        assert!(result.errors_in_scope <= dataset.errors.len());
        assert!(result.pretrain_secs > 0.0);
        assert!(result.finetune_secs > 0.0);
    }

    #[test]
    fn row_pairs_label_true_only_for_the_clean_value() {
        let dataset = CleaningProfile::hospital().generate(0.06, 13);
        // Find a row that has at least one candidate set.
        let row = dataset
            .candidates
            .keys()
            .map(|&(r, _)| r)
            .next()
            .expect("dataset should have candidates");
        let pairs = CleaningPipeline::row_pairs(&dataset, row);
        assert!(!pairs.is_empty());
        for p in &pairs {
            // Positive pairs must embed the clean value in the right-hand serialization.
            if p.label {
                let clean_values: Vec<&str> = (0..dataset.clean.num_columns())
                    .filter_map(|c| dataset.clean.cell(row, c))
                    .collect();
                assert!(
                    clean_values.iter().any(|v| p.right.contains(*v)),
                    "positive pair does not contain a clean value: {}",
                    p.right
                );
            }
        }
    }

    #[test]
    fn corpus_is_capped_by_config() {
        let dataset = CleaningProfile::tax().generate(0.1, 17);
        let mut config = tiny_config();
        config.max_corpus_size = 50;
        let pipeline = CleaningPipeline::new(config);
        let corpus = pipeline.build_corpus(&dataset);
        // rows themselves may exceed the cap (they are always included), but candidate
        // expansion must stop once the cap is hit.
        assert!(corpus.len() <= dataset.dirty.num_rows() + 53);
    }
}
