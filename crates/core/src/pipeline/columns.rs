//! Column-matching pipeline for semantic type detection (§V-B, §VI-D).
//!
//! Columns are serialized with the bare-bone `[VAL] v1 [VAL] v2 ...` scheme, the encoder is
//! pre-trained on the column corpus, kNN blocking proposes candidate column pairs, a small
//! number of pairs is labeled (same coarse semantic type or not), the pairwise matcher is
//! fine-tuned, and finally the predicted matches are turned into column clusters with a
//! connected-component pass (Table XIII reports the cluster count and purity).

use std::time::Instant;

use sudowoodo_cluster::{cluster_purity, connected_components};
use sudowoodo_datasets::columns::{ColumnCorpus, ColumnPair};
use sudowoodo_ml::metrics::{best_f1_threshold, PrF1};

use crate::config::SudowoodoConfig;
use crate::matcher::{FineTuneConfig, PairMatcher, TrainPair};
use crate::pretrain::pretrain;

/// Maximum number of column values included in a serialization.
pub const MAX_COLUMN_VALUES: usize = 12;

/// Result of one column-matching run.
#[derive(Clone, Debug)]
pub struct ColumnMatchResult {
    /// Sudowoodo variant name.
    pub variant: String,
    /// Pair-matching quality on the validation split.
    pub valid: PrF1,
    /// Pair-matching quality on the test split.
    pub test: PrF1,
    /// Number of clusters discovered by connected components over predicted matches.
    pub num_clusters: usize,
    /// Number of discovered clusters with at least 2 columns.
    pub num_multi_clusters: usize,
    /// Purity of the multi-column clusters against the coarse ground-truth types.
    pub purity: f32,
    /// Number of labeled pairs used for fine-tuning (train split only).
    pub labeled_pairs: usize,
    /// Blocking time in seconds.
    pub blocking_secs: f64,
    /// Fine-tuning + inference time in seconds.
    pub matching_secs: f64,
}

/// The Sudowoodo column-matching pipeline.
#[derive(Clone, Debug)]
pub struct ColumnPipeline {
    /// Configuration.
    pub config: SudowoodoConfig,
}

impl ColumnPipeline {
    /// Creates a pipeline.
    pub fn new(config: SudowoodoConfig) -> Self {
        ColumnPipeline { config }
    }

    /// Blocking over the column corpus: kNN self-join (excluding self-pairs), returning
    /// candidate `(i, j)` pairs with `i < j`. The index layout (dense or streaming
    /// sharded) follows `config.blocking_shard_capacity`, and the sharded layout honours
    /// `config.shard_memory_budget` (cold shards spill to disk), the
    /// `config.blocking_query_cache` batch cache, and `config.snapshot_dir` persistence
    /// (see `pipeline::build_blocking_index`); results are identical.
    pub fn block(&self, corpus: &ColumnCorpus, embeddings: &[Vec<f32>]) -> Vec<(usize, usize)> {
        let index = crate::pipeline::build_blocking_index(&self.config, embeddings.to_vec());
        // One batched self-join (identical per-query results to `top_k`, proven by the
        // index tests): the query tiles are the parallel axis, where a per-embedding
        // `top_k` loop would run every single-query scan serially.
        let mut pairs = Vec::new();
        for (i, hit_id, _) in index.knn_join(embeddings, self.config.blocking_k + 1) {
            if hit_id == i {
                continue;
            }
            let (lo, hi) = if i < hit_id { (i, hit_id) } else { (hit_id, i) };
            pairs.push((lo, hi));
        }
        pairs.sort_unstable();
        pairs.dedup();
        let _ = corpus;
        pairs
    }

    /// Runs the pipeline: pre-train, block, fine-tune on the given labeled splits, evaluate,
    /// and cluster.
    pub fn run(
        &self,
        corpus: &ColumnCorpus,
        train: &[ColumnPair],
        valid: &[ColumnPair],
        test: &[ColumnPair],
    ) -> ColumnMatchResult {
        let texts = corpus.corpus(MAX_COLUMN_VALUES);
        let (encoder, _) = pretrain(&texts, &self.config);

        let blocking_start = Instant::now();
        let embeddings = encoder.embed_all(&texts);
        let candidates = self.block(corpus, &embeddings);
        let blocking_secs = blocking_start.elapsed().as_secs_f64();

        let matching_start = Instant::now();
        let to_train_pair =
            |p: &ColumnPair| TrainPair::new(texts[p.left].clone(), texts[p.right].clone(), p.label);
        let train_pairs: Vec<TrainPair> = train.iter().map(to_train_pair).collect();
        let mut matcher = PairMatcher::new(encoder, self.config.use_diff_head, self.config.seed);
        matcher.fine_tune(
            &train_pairs,
            &FineTuneConfig {
                epochs: self.config.finetune_epochs,
                batch_size: self.config.finetune_batch_size,
                learning_rate: self.config.finetune_lr,
                seed: self.config.seed,
            },
        );
        super::persist_matcher(&self.config, &matcher);

        // Threshold selected on the validation split, evaluation on both splits.
        let score_split = |pairs: &[ColumnPair]| -> (Vec<f32>, Vec<bool>) {
            let inputs: Vec<(String, String)> = pairs
                .iter()
                .map(|p| (texts[p.left].clone(), texts[p.right].clone()))
                .collect();
            (
                matcher.predict_scores(&inputs),
                pairs.iter().map(|p| p.label).collect(),
            )
        };
        let (valid_scores, valid_gold) = score_split(valid);
        let (threshold, _) = if valid.is_empty() {
            (0.5, 0.0)
        } else {
            best_f1_threshold(&valid_scores, &valid_gold)
        };
        let evaluate = |scores: &[f32], gold: &[bool]| {
            let predicted: Vec<bool> = scores.iter().map(|&s| s >= threshold).collect();
            PrF1::from_predictions(&predicted, gold)
        };
        let valid_metrics = evaluate(&valid_scores, &valid_gold);
        let (test_scores, test_gold) = score_split(test);
        let test_metrics = evaluate(&test_scores, &test_gold);

        // Cluster discovery: predicted matches over all blocking candidates become edges.
        let candidate_inputs: Vec<(String, String)> = candidates
            .iter()
            .map(|&(i, j)| (texts[i].clone(), texts[j].clone()))
            .collect();
        let candidate_scores = matcher.predict_scores(&candidate_inputs);
        let edges: Vec<(usize, usize)> = candidates
            .iter()
            .zip(candidate_scores.iter())
            .filter(|(_, &s)| s >= threshold)
            .map(|(&(i, j), _)| (i, j))
            .collect();
        let clusters = connected_components(corpus.len(), &edges);
        let num_multi_clusters = clusters.iter().filter(|c| c.len() >= 2).count();
        let purity = cluster_purity(&clusters, &corpus.type_labels, 2);
        let matching_secs = matching_start.elapsed().as_secs_f64();

        ColumnMatchResult {
            variant: self.config.variant_name(),
            valid: valid_metrics,
            test: test_metrics,
            num_clusters: clusters.len(),
            num_multi_clusters,
            purity,
            labeled_pairs: train.len(),
            blocking_secs,
            matching_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::columns::{sample_labeled_pairs, ColumnProfile};

    fn tiny_config() -> SudowoodoConfig {
        let mut c = SudowoodoConfig::test_config();
        c.pretrain_epochs = 1;
        c.finetune_epochs = 2;
        c.max_corpus_size = 80;
        c.blocking_k = 3;
        c
    }

    #[test]
    fn column_pipeline_runs_end_to_end() {
        let corpus = ColumnProfile {
            num_columns: 60,
            min_values: 4,
            max_values: 8,
        }
        .generate(1.0, 3);
        let pipeline = ColumnPipeline::new(tiny_config());
        // Candidate pairs for labeling: adjacent columns (cheap, mixes types).
        let candidates: Vec<(usize, usize)> = (0..corpus.len() - 1).map(|i| (i, i + 1)).collect();
        let (train, valid, test) = sample_labeled_pairs(&corpus, &candidates, 40, 5);
        let result = pipeline.run(&corpus, &train, &valid, &test);
        assert_eq!(result.labeled_pairs, train.len());
        assert!(result.test.f1 >= 0.0 && result.test.f1 <= 1.0);
        assert!(result.num_clusters >= 1);
        assert!(result.num_clusters <= corpus.len());
        assert!(result.purity >= 0.0 && result.purity <= 1.0);
        assert!(result.blocking_secs >= 0.0 && result.matching_secs > 0.0);
    }

    #[test]
    fn sharded_column_blocking_matches_dense() {
        let corpus = ColumnProfile {
            num_columns: 24,
            min_values: 4,
            max_values: 6,
        }
        .generate(1.0, 11);
        let dense_pipeline = ColumnPipeline::new(tiny_config());
        let mut sharded_config = tiny_config();
        sharded_config.blocking_shard_capacity = Some(5);
        let sharded_pipeline = ColumnPipeline::new(sharded_config.clone());
        let mut spilled_config = sharded_config;
        spilled_config.shard_memory_budget = Some(0); // every shard on disk
        let spilled_pipeline = ColumnPipeline::new(spilled_config);
        let texts = corpus.corpus(MAX_COLUMN_VALUES);
        let (encoder, _) = pretrain(&texts, &dense_pipeline.config);
        let embeddings = encoder.embed_all(&texts);
        let dense_pairs = dense_pipeline.block(&corpus, &embeddings);
        assert_eq!(dense_pairs, sharded_pipeline.block(&corpus, &embeddings));
        assert_eq!(dense_pairs, spilled_pipeline.block(&corpus, &embeddings));
    }

    #[test]
    fn blocking_produces_deduplicated_ordered_pairs() {
        let corpus = ColumnProfile {
            num_columns: 30,
            min_values: 4,
            max_values: 6,
        }
        .generate(1.0, 7);
        let pipeline = ColumnPipeline::new(tiny_config());
        let texts = corpus.corpus(MAX_COLUMN_VALUES);
        let (encoder, _) = pretrain(&texts, &pipeline.config);
        let embeddings = encoder.embed_all(&texts);
        let pairs = pipeline.block(&corpus, &embeddings);
        assert!(!pairs.is_empty());
        for w in pairs.windows(2) {
            assert!(
                w[0] < w[1],
                "pairs must be strictly increasing (sorted + deduped)"
            );
        }
        for &(i, j) in &pairs {
            assert!(i < j);
            assert!(j < corpus.len());
        }
    }
}
