//! Task pipelines built on top of the Sudowoodo framework: Entity Matching (blocking +
//! matching), data cleaning (error correction), and column matching (semantic type
//! detection).

pub mod cleaning;
pub mod columns;
pub mod em;

pub use cleaning::{CleaningPipeline, CleaningResult};
pub use columns::{ColumnMatchResult, ColumnPipeline};
pub use em::{EmPipeline, EmResult, EmTimings};

use sudowoodo_index::BlockingIndex;

use crate::config::SudowoodoConfig;

/// Builds the blocking index every pipeline retrieves through, applying the full
/// blocking configuration in one place so the pipelines cannot drift:
///
/// * layout, spill, and quantization — `blocking_shard_capacity` /
///   `shard_memory_budget` / `shard_quantization`
///   ([`BlockingIndex::build_with_options`]);
/// * the query-batch cache — `blocking_query_cache`
///   ([`BlockingIndex::set_query_cache_capacity`]);
/// * persistence — when `snapshot_dir` is set, the built index is saved there
///   ([`BlockingIndex::save_snapshot`]) so a serving process (`sudowoodo-serve`) can
///   load it cold and answer queries without rebuilding. A snapshot I/O failure is a
///   warning, never a pipeline failure — persistence is an optimization.
pub(crate) fn build_blocking_index(
    config: &SudowoodoConfig,
    vectors: Vec<Vec<f32>>,
) -> BlockingIndex {
    let mut index = BlockingIndex::build_with_options(
        vectors,
        config.blocking_shard_capacity,
        config.shard_memory_budget,
        config.shard_quantization,
    );
    index.set_query_cache_capacity(config.blocking_query_cache);
    if let Some(dir) = &config.snapshot_dir {
        if let Err(e) = index.save_snapshot(dir) {
            eprintln!(
                "warning: blocking-index snapshot into {} failed (serving will need a \
                 rebuild): {e}",
                dir.display()
            );
        }
    }
    index
}

/// Persists the fine-tuned matcher next to the index snapshot when `snapshot_dir` is
/// set — the model half of the same train-once/serve-many contract: a serving process
/// loads `model.swmodel` cold ([`crate::model_snapshot::load_matcher`]) and answers
/// `EMBED`/`MATCH` traffic bit-identically to this process. Like the index snapshot,
/// an I/O failure is a warning, never a pipeline failure.
pub(crate) fn persist_matcher(config: &SudowoodoConfig, matcher: &crate::matcher::PairMatcher) {
    let Some(dir) = &config.snapshot_dir else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!(
            "warning: could not create snapshot dir {}: {e}",
            dir.display()
        );
        return;
    }
    let path = dir.join(crate::model_snapshot::MODEL_SNAPSHOT_FILE);
    if let Err(e) = crate::model_snapshot::save_matcher(matcher, &path) {
        eprintln!(
            "warning: model snapshot into {} failed (EMBED/MATCH serving will need a \
             retrain): {e}",
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;
    use crate::encoder::Encoder;
    use crate::matcher::PairMatcher;

    #[test]
    fn persist_matcher_writes_a_loadable_model_beside_the_index_snapshot() {
        let corpus: Vec<String> = (0..4).map(|i| format!("[COL] t [VAL] item {i}")).collect();
        let encoder = Encoder::from_corpus(EncoderConfig::tiny(), &corpus, 1);
        let matcher = PairMatcher::new(encoder, true, 1);

        // No snapshot_dir: a no-op, nothing written anywhere.
        let mut config = SudowoodoConfig::test_config();
        config.snapshot_dir = None;
        persist_matcher(&config, &matcher);

        // With snapshot_dir: the model lands beside the index snapshot and loads back.
        let dir =
            std::env::temp_dir().join(format!("sudowoodo-persist-matcher-{}", std::process::id()));
        config.snapshot_dir = Some(dir.clone());
        persist_matcher(&config, &matcher);
        let path = dir.join(crate::model_snapshot::MODEL_SNAPSHOT_FILE);
        let loaded = crate::model_snapshot::load_matcher(&path).expect("model must load");
        assert_eq!(loaded.encoder.config, matcher.encoder.config);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
