//! Task pipelines built on top of the Sudowoodo framework: Entity Matching (blocking +
//! matching), data cleaning (error correction), and column matching (semantic type
//! detection).

pub mod cleaning;
pub mod columns;
pub mod em;

pub use cleaning::{CleaningPipeline, CleaningResult};
pub use columns::{ColumnMatchResult, ColumnPipeline};
pub use em::{EmPipeline, EmResult, EmTimings};

use sudowoodo_index::BlockingIndex;

use crate::config::SudowoodoConfig;

/// Builds the blocking index every pipeline retrieves through, applying the full
/// blocking configuration in one place so the pipelines cannot drift:
///
/// * layout and spill — `blocking_shard_capacity` / `shard_memory_budget`
///   ([`BlockingIndex::build_with_budget`]);
/// * the query-batch cache — `blocking_query_cache`
///   ([`BlockingIndex::set_query_cache_capacity`]);
/// * persistence — when `snapshot_dir` is set, the built index is saved there
///   ([`BlockingIndex::save_snapshot`]) so a serving process (`sudowoodo-serve`) can
///   load it cold and answer queries without rebuilding. A snapshot I/O failure is a
///   warning, never a pipeline failure — persistence is an optimization.
pub(crate) fn build_blocking_index(
    config: &SudowoodoConfig,
    vectors: Vec<Vec<f32>>,
) -> BlockingIndex {
    let mut index = BlockingIndex::build_with_budget(
        vectors,
        config.blocking_shard_capacity,
        config.shard_memory_budget,
    );
    index.set_query_cache_capacity(config.blocking_query_cache);
    if let Some(dir) = &config.snapshot_dir {
        if let Err(e) = index.save_snapshot(dir) {
            eprintln!(
                "warning: blocking-index snapshot into {} failed (serving will need a \
                 rebuild): {e}",
                dir.display()
            );
        }
    }
    index
}
