//! Task pipelines built on top of the Sudowoodo framework: Entity Matching (blocking +
//! matching), data cleaning (error correction), and column matching (semantic type
//! detection).

pub mod cleaning;
pub mod columns;
pub mod em;

pub use cleaning::{CleaningPipeline, CleaningResult};
pub use columns::{ColumnMatchResult, ColumnPipeline};
pub use em::{EmPipeline, EmResult, EmTimings};
