//! End-to-end Entity Matching pipeline (Figure 2): contrastive pre-training → blocking →
//! pseudo labeling → fine-tuning → evaluation.

use std::collections::HashSet;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sudowoodo_datasets::em::{EmDataset, LabeledPair};
use sudowoodo_index::{evaluate_blocking, BlockingQuality};
use sudowoodo_ml::metrics::{best_f1_threshold, PrF1};
use sudowoodo_text::serialize::serialize_record;

use crate::config::SudowoodoConfig;
use crate::encoder::Encoder;
use crate::matcher::{FineTuneConfig, PairMatcher, TrainPair};
use crate::pretrain::{pretrain, PretrainReport};
use crate::pseudo::{generate_pseudo_labels, PseudoLabelSet, ScoredPair};

/// Wall-clock timings of the pipeline stages (Figures 9/10).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EmTimings {
    /// Contrastive pre-training.
    pub pretrain_secs: f64,
    /// Embedding + kNN blocking.
    pub blocking_secs: f64,
    /// Pseudo labeling + fine-tuning.
    pub finetune_secs: f64,
    /// End-to-end total.
    pub total_secs: f64,
}

/// Result of one EM pipeline run.
#[derive(Clone, Debug)]
pub struct EmResult {
    /// Dataset name.
    pub dataset: String,
    /// Sudowoodo variant name (ablation configuration).
    pub variant: String,
    /// Number of manually labeled pairs used.
    pub labels_used: usize,
    /// Matching quality on the test set.
    pub matching: PrF1,
    /// Blocking quality at `config.blocking_k`.
    pub blocking: BlockingQuality,
    /// Pseudo-label quality `(TPR, TNR)` against gold matches, when pseudo labels were used.
    pub pseudo_quality: Option<(f32, f32)>,
    /// Number of pseudo labels added to the training set.
    pub num_pseudo_labels: usize,
    /// The decision threshold selected on the labeled/validation pairs.
    pub threshold: f32,
    /// Stage timings.
    pub timings: EmTimings,
    /// Pre-training diagnostics.
    pub pretrain_report: PretrainReport,
}

/// The Sudowoodo EM pipeline.
#[derive(Clone, Debug)]
pub struct EmPipeline {
    /// Configuration (including the ablation switches).
    pub config: SudowoodoConfig,
}

impl EmPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: SudowoodoConfig) -> Self {
        EmPipeline { config }
    }

    /// Serializes both tables of a dataset.
    fn serialize_tables(dataset: &EmDataset) -> (Vec<String>, Vec<String>) {
        let a = dataset.table_a.iter().map(serialize_record).collect();
        let b = dataset.table_b.iter().map(serialize_record).collect();
        (a, b)
    }

    /// Pre-trains the embedding model on the unlabeled corpus of a dataset.
    pub fn pretrain_encoder(&self, dataset: &EmDataset) -> (Encoder, PretrainReport) {
        pretrain(&dataset.corpus(), &self.config)
    }

    /// Runs kNN blocking with a given encoder, returning scored candidate pairs
    /// `(a_index, b_index, cosine)` and the blocking quality at `k`.
    ///
    /// The right-table index layout follows `config.blocking_shard_capacity`: dense
    /// (one corpus matrix) by default, or the streaming sharded index, optionally under
    /// `config.shard_memory_budget` (cold shards spill to disk and routing statistics
    /// skip unpromising ones) — results are identical in every configuration, only the
    /// memory/ingestion profile changes. `config.blocking_query_cache` caches repeated
    /// query batches, and `config.snapshot_dir` persists the built index for external
    /// serving (see `pipeline::build_blocking_index`).
    pub fn block(
        &self,
        encoder: &Encoder,
        dataset: &EmDataset,
        k: usize,
    ) -> (Vec<ScoredPair>, BlockingQuality) {
        let (texts_a, texts_b) = Self::serialize_tables(dataset);
        let emb_a = encoder.embed_all(&texts_a);
        let emb_b = encoder.embed_all(&texts_b);
        let index = crate::pipeline::build_blocking_index(&self.config, emb_b);
        let candidates = index.knn_join(&emb_a, k);
        let pairs: Vec<(usize, usize)> = candidates.iter().map(|&(a, b, _)| (a, b)).collect();
        let quality = evaluate_blocking(
            &pairs,
            &dataset.gold_matches,
            dataset.table_a.len(),
            dataset.table_b.len(),
        );
        (candidates, quality)
    }

    /// Computes the blocking recall/CSSR curve for a range of `k` values (Figure 7) using a
    /// single pre-trained encoder.
    pub fn blocking_curve(
        &self,
        dataset: &EmDataset,
        ks: &[usize],
    ) -> Vec<(usize, BlockingQuality)> {
        let (encoder, _) = self.pretrain_encoder(dataset);
        let (texts_a, texts_b) = Self::serialize_tables(dataset);
        let emb_a = encoder.embed_all(&texts_a);
        let emb_b = encoder.embed_all(&texts_b);
        let index = crate::pipeline::build_blocking_index(&self.config, emb_b);
        ks.iter()
            .map(|&k| {
                let candidates = index.knn_join(&emb_a, k);
                let pairs: Vec<(usize, usize)> =
                    candidates.iter().map(|&(a, b, _)| (a, b)).collect();
                (
                    k,
                    evaluate_blocking(
                        &pairs,
                        &dataset.gold_matches,
                        dataset.table_a.len(),
                        dataset.table_b.len(),
                    ),
                )
            })
            .collect()
    }

    /// Uniformly samples a label budget from the train+valid pairs (the paper's protocol for
    /// the semi-supervised setting). `None` means fully supervised (all train+valid labels);
    /// `Some(0)` means unsupervised.
    pub fn sample_labels(
        &self,
        dataset: &EmDataset,
        label_budget: Option<usize>,
    ) -> Vec<LabeledPair> {
        let mut pool: Vec<LabeledPair> = dataset.train.clone();
        pool.extend(dataset.valid.iter().copied());
        match label_budget {
            None => pool,
            Some(budget) => {
                let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(77));
                pool.shuffle(&mut rng);
                pool.truncate(budget);
                pool
            }
        }
    }

    /// Runs the full pipeline on a dataset with the given label budget.
    pub fn run(&self, dataset: &EmDataset, label_budget: Option<usize>) -> EmResult {
        let total_start = Instant::now();

        // 1. Contrastive pre-training on the unlabeled corpus.
        let (encoder, pretrain_report) = self.pretrain_encoder(dataset);
        let pretrain_secs = pretrain_report.seconds;

        // 2. Blocking via kNN search over the learned representations.
        let blocking_start = Instant::now();
        let (candidates, blocking_quality) = self.block(&encoder, dataset, self.config.blocking_k);
        let blocking_secs = blocking_start.elapsed().as_secs_f64();

        // 3. Labels + pseudo labels.
        let finetune_start = Instant::now();
        let labeled = self.sample_labels(dataset, label_budget);
        let labeled_keys: HashSet<(usize, usize)> = labeled.iter().map(|p| (p.a, p.b)).collect();
        let gold: HashSet<(usize, usize)> = dataset.gold_matches.iter().copied().collect();

        let (pseudo, pseudo_quality) = if self.config.use_pseudo_labels {
            let unlabeled: Vec<ScoredPair> = candidates
                .iter()
                .copied()
                .filter(|(a, b, _)| !labeled_keys.contains(&(*a, *b)))
                .collect();
            let base = if labeled.is_empty() {
                200
            } else {
                labeled.len()
            };
            let target = base.saturating_mul(self.config.pseudo_multiplier.saturating_sub(1));
            let set = generate_pseudo_labels(&unlabeled, self.config.pseudo_positive_ratio, target);
            let quality = set.quality(|a, b| gold.contains(&(a, b)));
            (set, Some(quality))
        } else {
            (
                PseudoLabelSet {
                    labels: Vec::new(),
                    theta_plus: 1.0,
                    theta_minus: -1.0,
                },
                None,
            )
        };

        // 4. Fine-tune the pairwise matcher on labeled + pseudo-labeled pairs.
        let (texts_a, texts_b) = Self::serialize_tables(dataset);
        let mut train_pairs: Vec<TrainPair> = labeled
            .iter()
            .map(|p| TrainPair::new(texts_a[p.a].clone(), texts_b[p.b].clone(), p.label))
            .collect();
        train_pairs.extend(
            pseudo
                .labels
                .iter()
                .map(|p| TrainPair::new(texts_a[p.a].clone(), texts_b[p.b].clone(), p.label)),
        );
        let num_pseudo_labels = pseudo.labels.len();

        let mut matcher = PairMatcher::new(encoder, self.config.use_diff_head, self.config.seed);
        matcher.fine_tune(
            &train_pairs,
            &FineTuneConfig {
                epochs: self.config.finetune_epochs,
                batch_size: self.config.finetune_batch_size,
                learning_rate: self.config.finetune_lr,
                seed: self.config.seed,
            },
        );
        super::persist_matcher(&self.config, &matcher);

        // 5. Select the decision threshold on the labeled pairs (paper: best epoch/threshold
        //    on the validation split). In the unsupervised setting the pseudo labels play the
        //    role of the validation set (self-training calibration); without either, use 0.5.
        let threshold = if labeled.is_empty() {
            if pseudo.labels.is_empty() {
                0.5
            } else {
                let eval_pairs: Vec<(String, String)> = pseudo
                    .labels
                    .iter()
                    .map(|p| (texts_a[p.a].clone(), texts_b[p.b].clone()))
                    .collect();
                let scores = matcher.predict_scores(&eval_pairs);
                let gold_labels: Vec<bool> = pseudo.labels.iter().map(|p| p.label).collect();
                best_f1_threshold(&scores, &gold_labels).0
            }
        } else {
            let eval_pairs: Vec<(String, String)> = labeled
                .iter()
                .map(|p| (texts_a[p.a].clone(), texts_b[p.b].clone()))
                .collect();
            let scores = matcher.predict_scores(&eval_pairs);
            let gold_labels: Vec<bool> = labeled.iter().map(|p| p.label).collect();
            best_f1_threshold(&scores, &gold_labels).0
        };
        let finetune_secs = finetune_start.elapsed().as_secs_f64();

        // 6. Evaluate on the held-out test pairs.
        let matching = evaluate_matcher(&matcher, dataset, &dataset.test, threshold);

        EmResult {
            dataset: dataset.name.clone(),
            variant: self.config.variant_name(),
            labels_used: labeled.len(),
            matching,
            blocking: blocking_quality,
            pseudo_quality,
            num_pseudo_labels,
            threshold,
            timings: EmTimings {
                pretrain_secs,
                blocking_secs,
                finetune_secs,
                total_secs: total_start.elapsed().as_secs_f64(),
            },
            pretrain_report,
        }
    }
}

/// Evaluates a fine-tuned matcher on a set of labeled pairs of a dataset.
pub fn evaluate_matcher(
    matcher: &PairMatcher,
    dataset: &EmDataset,
    pairs: &[LabeledPair],
    threshold: f32,
) -> PrF1 {
    let eval_pairs: Vec<(String, String)> = pairs
        .iter()
        .map(|p| {
            (
                serialize_record(&dataset.table_a[p.a]),
                serialize_record(&dataset.table_b[p.b]),
            )
        })
        .collect();
    let predicted = matcher.predict_labels(&eval_pairs, threshold);
    let gold: Vec<bool> = pairs.iter().map(|p| p.label).collect();
    PrF1::from_predictions(&predicted, &gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudowoodo_datasets::em::EmProfile;

    fn tiny_dataset() -> EmDataset {
        EmProfile::dblp_acm().generate(0.08, 3)
    }

    fn tiny_config() -> SudowoodoConfig {
        let mut c = SudowoodoConfig::test_config();
        c.pretrain_epochs = 1;
        c.finetune_epochs = 2;
        c.max_corpus_size = 120;
        c.blocking_k = 3;
        c
    }

    #[test]
    fn full_pipeline_runs_and_produces_sane_metrics() {
        let dataset = tiny_dataset();
        let pipeline = EmPipeline::new(tiny_config());
        let result = pipeline.run(&dataset, Some(60));
        assert_eq!(result.dataset, "DBLP-ACM");
        assert_eq!(result.variant, "Sudowoodo");
        assert!(result.labels_used <= 60);
        assert!(result.matching.f1 >= 0.0 && result.matching.f1 <= 1.0);
        assert!(result.blocking.recall >= 0.0 && result.blocking.recall <= 1.0);
        assert!(result.blocking.num_candidates > 0);
        assert!(
            result.num_pseudo_labels > 0,
            "pseudo labels should be generated"
        );
        assert!(result.pseudo_quality.is_some());
        assert!(result.timings.total_secs > 0.0);
        assert!(result.timings.pretrain_secs > 0.0);
    }

    #[test]
    fn unsupervised_run_uses_no_labels() {
        let dataset = tiny_dataset();
        let pipeline = EmPipeline::new(tiny_config());
        let result = pipeline.run(&dataset, Some(0));
        assert_eq!(result.labels_used, 0);
        // Without manual labels the threshold is calibrated on the pseudo labels.
        assert!((0.0..=1.0).contains(&result.threshold));
        assert!(result.num_pseudo_labels > 0);
    }

    #[test]
    fn disabling_pseudo_labels_removes_them() {
        let dataset = tiny_dataset();
        let pipeline = EmPipeline::new(tiny_config().without("PL"));
        let result = pipeline.run(&dataset, Some(40));
        assert_eq!(result.num_pseudo_labels, 0);
        assert!(result.pseudo_quality.is_none());
        assert_eq!(result.variant, "Sudowoodo (-PL)");
    }

    #[test]
    fn blocking_curve_recall_is_monotone_in_k() {
        let dataset = tiny_dataset();
        let pipeline = EmPipeline::new(tiny_config());
        let curve = pipeline.blocking_curve(&dataset, &[1, 3, 8]);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].1.recall <= curve[1].1.recall + 1e-6);
        assert!(curve[1].1.recall <= curve[2].1.recall + 1e-6);
        assert!(curve[0].1.num_candidates < curve[2].1.num_candidates);
    }

    #[test]
    fn sharded_blocking_produces_identical_candidates() {
        let dataset = tiny_dataset();
        let dense_pipeline = EmPipeline::new(tiny_config());
        let (encoder, _) = dense_pipeline.pretrain_encoder(&dataset);
        let mut sharded_config = tiny_config();
        sharded_config.blocking_shard_capacity = Some(17);
        let sharded_pipeline = EmPipeline::new(sharded_config.clone());
        // Same encoder through both layouts: candidate sets and quality must coincide.
        let (dense_candidates, dense_quality) = dense_pipeline.block(&encoder, &dataset, 4);
        let (sharded_candidates, sharded_quality) = sharded_pipeline.block(&encoder, &dataset, 4);
        assert_eq!(dense_candidates, sharded_candidates);
        assert_eq!(dense_quality, sharded_quality);
        // Forcing every shard to spill to disk must also be invisible in results.
        let mut spilled_config = sharded_config;
        spilled_config.shard_memory_budget = Some(0);
        let spilled_pipeline = EmPipeline::new(spilled_config);
        let (spilled_candidates, spilled_quality) = spilled_pipeline.block(&encoder, &dataset, 4);
        assert_eq!(dense_candidates, spilled_candidates);
        assert_eq!(dense_quality, spilled_quality);
    }

    #[test]
    fn label_sampling_respects_budget_and_none_means_all() {
        let dataset = tiny_dataset();
        let pipeline = EmPipeline::new(tiny_config());
        assert_eq!(pipeline.sample_labels(&dataset, Some(10)).len(), 10);
        assert_eq!(
            pipeline.sample_labels(&dataset, None).len(),
            dataset.train.len() + dataset.valid.len()
        );
    }
}
