//! The embedding model `M_emb` (§II, §III).
//!
//! The encoder maps a serialized data item to an L2-normalized `dim`-dimensional vector.
//! The paper uses a pre-trained RoBERTa/DistilBERT; this reproduction trains a compact
//! encoder from scratch (see DESIGN.md for the substitution rationale). Two architectures
//! are provided behind [`EncoderKind`]:
//!
//! * `MeanPool` — token embeddings, mean pooling, a two-layer MLP;
//! * `Transformer` — token + positional embeddings, `layers` pre-norm Transformer blocks,
//!   mean pooling.
//!
//! Both consume the token-embedding matrix, so the cutoff augmentation (which zeroes parts
//! of that matrix) applies identically to either. Outputs are always L2-normalized so that
//! dot products are cosine similarities, as required by blocking, pseudo-labeling, and the
//! contrastive objective.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use sudowoodo_augment::{CutoffKind, CutoffPlan};
use sudowoodo_nn::layers::{
    Embedding, FeedForward, Layer, LayerNorm, PositionalEmbedding, TransformerBlock,
};
use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::param::Param;
use sudowoodo_nn::tape::{Tape, VarId};
use sudowoodo_text::{Vocab, VocabConfig};

use crate::config::{EncoderConfig, EncoderKind};

/// The Sudowoodo embedding model.
#[derive(Clone, Debug)]
pub struct Encoder {
    /// Architecture configuration.
    pub config: EncoderConfig,
    vocab: Vocab,
    embedding: Embedding,
    positional: PositionalEmbedding,
    blocks: Vec<TransformerBlock>,
    pool_mlp: FeedForward,
    output_norm: LayerNorm,
}

impl Encoder {
    /// Creates an encoder whose vocabulary is built from `corpus`.
    pub fn from_corpus(config: EncoderConfig, corpus: &[String], seed: u64) -> Self {
        let vocab = Vocab::build_from_texts(
            corpus.iter().map(|s| s.as_str()),
            &VocabConfig {
                max_size: 20_000,
                min_count: 1,
                hash_buckets: 256,
            },
        );
        Self::with_vocab(config, vocab, seed)
    }

    /// Creates an encoder with an existing vocabulary.
    pub fn with_vocab(config: EncoderConfig, vocab: Vocab, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let embedding = Embedding::new("encoder.embedding", vocab.size(), config.dim, &mut rng);
        let positional = PositionalEmbedding::new("encoder", config.max_len, config.dim, &mut rng);
        let blocks = (0..config.layers)
            .map(|i| {
                TransformerBlock::new(
                    &format!("encoder.block{i}"),
                    config.dim,
                    config.heads,
                    config.ff_hidden,
                    &mut rng,
                )
            })
            .collect();
        let pool_mlp = FeedForward::new("encoder.pool_mlp", config.dim, config.ff_hidden, &mut rng);
        let output_norm = LayerNorm::new("encoder.output_norm", config.dim);
        Encoder {
            config,
            vocab,
            embedding,
            positional,
            blocks,
            pool_mlp,
            output_norm,
        }
    }

    /// The vocabulary used by this encoder.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Param> {
        let mut ps = self.embedding.params();
        match self.config.kind {
            EncoderKind::MeanPool => {
                ps.extend(self.pool_mlp.params());
            }
            EncoderKind::Transformer => {
                ps.extend(self.positional.params());
                for b in &self.blocks {
                    ps.extend(b.params());
                }
            }
        }
        ps.extend(self.output_norm.params());
        ps
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.num_elements()).sum()
    }

    /// Encodes one tokenized item on the tape, returning a `1 x dim` L2-normalized vector.
    ///
    /// This is the **per-sequence reference path**: [`Encoder::encode_batch`] must stay
    /// numerically equivalent to stacking `encode_ids` outputs (it is the frozen oracle of
    /// `crates/nn/tests/attention_equivalence.rs` and the `perf_speedup` baseline, the same
    /// role [`Matrix::matmul_naive`] plays for the GEMM kernels). An item that tokenizes to
    /// nothing pools to the zero row instead of panicking.
    pub fn encode_ids(&self, tape: &mut Tape, token_ids: &[usize], cutoff: &CutoffPlan) -> VarId {
        let ids: Vec<usize> = token_ids
            .iter()
            .take(self.config.max_len)
            .copied()
            .collect();
        let pooled = if ids.is_empty() {
            // Zero tokens: nothing to embed or attend over. The token mean is the zero row
            // (the value `mean_rows`/`segment_mean_rows` assign an empty segment), and the
            // MeanPool MLP still applies to it so the batched path stays equivalent.
            let mean = tape.constant(Matrix::zeros(1, self.config.dim));
            match self.config.kind {
                EncoderKind::MeanPool => {
                    let lifted = self.pool_mlp.forward(tape, mean);
                    tape.add(mean, lifted)
                }
                EncoderKind::Transformer => mean,
            }
        } else {
            let embedded = self.embedding.forward(tape, &ids);
            // Cutoff acts on the token-embedding matrix: multiply by a constant 0/1 mask so
            // that gradients still flow to the surviving entries.
            let mask = cutoff.apply(&Matrix::full(ids.len(), self.config.dim, 1.0));
            let mask_node = tape.constant(mask);
            let masked = tape.mul(embedded, mask_node);

            match self.config.kind {
                EncoderKind::MeanPool => {
                    let mean = tape.mean_rows(masked);
                    let lifted = self.pool_mlp.forward(tape, mean);
                    tape.add(mean, lifted)
                }
                EncoderKind::Transformer => {
                    let mut x = self.positional.forward(tape, masked, ids.len());
                    for block in &self.blocks {
                        x = block.forward(tape, x);
                    }
                    tape.mean_rows(x)
                }
            }
        };
        let normed = self.output_norm.forward(tape, pooled);
        tape.l2_normalize_rows(normed)
    }

    /// Encodes one serialized text on the tape.
    pub fn encode_text(&self, tape: &mut Tape, text: &str, cutoff: &CutoffPlan) -> VarId {
        let ids = self.vocab.encode(text, self.config.max_len);
        self.encode_ids(tape, &ids, cutoff)
    }

    /// Encodes a batch of serialized texts on the tape, returning an `n x dim` matrix of
    /// L2-normalized rows. An empty batch yields an empty `0 x dim` node instead of
    /// panicking.
    ///
    /// For **both** architectures the whole batch is **one** graph of batched ops. The
    /// `MeanPool` arm runs a single embedding gather over the concatenated token ids, one
    /// constant cutoff mask, and a segment-mean pooling matmul. The `Transformer` arm
    /// packs the sequences into a padded `[n*max_len, dim]` row-block and runs batched
    /// masked attention — padding keys are masked out of every softmax and pooling skips
    /// padding rows, so no item ever mixes with another (numerically equivalent to the
    /// per-sequence [`Encoder::encode_ids`] oracle, see
    /// `crates/nn/tests/attention_equivalence.rs`).
    pub fn encode_batch(&self, tape: &mut Tape, texts: &[&str], cutoff: &CutoffPlan) -> VarId {
        if texts.is_empty() {
            return tape.constant(Matrix::zeros(0, self.config.dim));
        }
        match self.config.kind {
            EncoderKind::MeanPool => self.encode_batch_meanpool(tape, texts, cutoff),
            EncoderKind::Transformer => self.encode_batch_transformer(tape, texts, cutoff),
        }
    }

    /// Batched `MeanPool` forward: gather → mask → segment-mean pool → MLP → norm, all as
    /// `n`-row batched ops on one tape graph.
    fn encode_batch_meanpool(&self, tape: &mut Tape, texts: &[&str], cutoff: &CutoffPlan) -> VarId {
        let dim = self.config.dim;
        let ids_per_text: Vec<Vec<usize>> = texts
            .iter()
            .map(|t| self.vocab.encode(t, self.config.max_len))
            .collect();
        let all_ids: Vec<usize> = ids_per_text.iter().flatten().copied().collect();

        // ONE gather over the whole batch: `total x dim`.
        let embedded = self.embedding.forward(tape, &all_ids);

        // The batch-wise cutoff plan applies per item, exactly as in the per-row path;
        // the per-segment 0/1 masks are stacked into one constant. A noop plan (every
        // original view, and both views with cutoff ablated) skips the mask entirely —
        // multiplying by all-ones in the hot path would be pure overhead.
        let masked = if cutoff.kind() == CutoffKind::None {
            embedded
        } else {
            let segment_masks: Vec<Matrix> = ids_per_text
                .iter()
                .map(|ids| cutoff.apply(&Matrix::full(ids.len(), dim, 1.0)))
                .collect();
            let mask_refs: Vec<&Matrix> = segment_masks.iter().collect();
            let mask_node = tape.constant(Matrix::vstack(&mask_refs));
            tape.mul(embedded, mask_node)
        };

        // Segment-mean pooling: one fused op at O(total x dim) (empty items pool to the
        // zero vector, matching `mean_rows` on an empty matrix).
        let lens: Vec<usize> = ids_per_text.iter().map(|ids| ids.len()).collect();
        let mean = tape.segment_mean_rows(masked, &lens); // n x dim

        let lifted = self.pool_mlp.forward(tape, mean);
        let summed = tape.add(mean, lifted);
        let normed = self.output_norm.forward(tape, summed);
        tape.l2_normalize_rows(normed)
    }

    /// Batched `Transformer` forward: the sequences of the batch are packed into one
    /// padded `[n*max_len, dim]` row-block (`max_len` = longest sequence of this batch)
    /// and every op runs once for the whole batch — a single embedding gather, one fused
    /// cutoff+padding mask, batched positional add, `layers` batched masked Transformer
    /// blocks, and one padding-aware segment-mean pooling. Padding rows carry the padding
    /// token's embedding but are masked out of every attention softmax and excluded from
    /// pooling, so they influence neither values nor gradients.
    fn encode_batch_transformer(
        &self,
        tape: &mut Tape,
        texts: &[&str],
        cutoff: &CutoffPlan,
    ) -> VarId {
        let dim = self.config.dim;
        let ids_per_text: Vec<Vec<usize>> = texts
            .iter()
            .map(|t| self.vocab.encode(t, self.config.max_len))
            .collect();
        let lens: Vec<usize> = ids_per_text.iter().map(|ids| ids.len()).collect();
        let max_len = lens.iter().copied().max().unwrap_or(0).max(1);

        // ONE gather over the padded batch: `n*max_len x dim`. Padding slots gather the
        // PAD token row; their gradient is exactly zero (masked keys, skipped pooling), so
        // the scatter-add of the backward pass never touches the PAD embedding for them.
        let mut padded_ids = Vec::with_capacity(lens.len() * max_len);
        for ids in &ids_per_text {
            padded_ids.extend(ids.iter().copied());
            padded_ids.resize(padded_ids.len() + (max_len - ids.len()), 0);
        }
        let embedded = self.embedding.forward(tape, &padded_ids);

        // Fused cutoff + padding mask: each item's batch-wise cutoff mask lands in its
        // block's leading rows and padding rows are zeroed. When there is no cutoff and no
        // ragged padding the multiply would be the identity, so it is skipped.
        let needs_mask = cutoff.kind() != CutoffKind::None || lens.iter().any(|&len| len < max_len);
        let masked = if needs_mask {
            let mut mask = Matrix::zeros(lens.len() * max_len, dim);
            for (b, ids) in ids_per_text.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                let item = cutoff.apply(&Matrix::full(ids.len(), dim, 1.0));
                for t in 0..ids.len() {
                    mask.row_mut(b * max_len + t).copy_from_slice(item.row(t));
                }
            }
            let mask_node = tape.constant(mask);
            tape.mul(embedded, mask_node)
        } else {
            embedded
        };

        let mut x = self
            .positional
            .forward_batch(tape, masked, lens.len(), max_len);
        for block in &self.blocks {
            x = block.forward_batch(tape, x, &lens, max_len);
        }
        let pooled = tape.padded_segment_mean_rows(x, &lens, max_len);
        let normed = self.output_norm.forward(tape, pooled);
        tape.l2_normalize_rows(normed)
    }

    /// Inference-only embedding of many texts (no augmentation, no tape, no gradient
    /// bookkeeping), parallel over 64-item chunks with rayon. Each chunk runs the batched
    /// matrix-level forward of [`Encoder::infer_chunk`]; model weights are shared across
    /// workers behind read locks.
    pub fn embed_all(&self, texts: &[String]) -> Vec<Vec<f32>> {
        if texts.is_empty() {
            return Vec::new();
        }
        let chunk_outputs: Vec<Matrix> = texts
            .par_chunks(64)
            .map(|chunk| self.infer_chunk(chunk))
            .collect();
        let mut out = Vec::with_capacity(texts.len());
        for values in &chunk_outputs {
            for r in 0..values.rows() {
                out.push(values.row(r).to_vec());
            }
        }
        out
    }

    /// Batched inference forward for one chunk, returning `n x dim` L2-normalized rows
    /// (`0 x dim` for an empty chunk).
    ///
    /// Both architectures run whole-chunk batched ops: `MeanPool` gathers and segment-mean
    /// pools in place; `Transformer` packs the chunk into a padded `[n*max_len, dim]`
    /// row-block and runs the batched masked attention path (projections and feed-forward
    /// as chunk-wide GEMMs, scores as fused per-`(sequence, head)` `A * B^T` tiles with
    /// padding keys masked). [`Encoder::infer_chunk_reference`] keeps the retired
    /// per-sequence loop as the frozen equivalence oracle.
    pub fn infer_chunk(&self, texts: &[String]) -> Matrix {
        let n = texts.len();
        let dim = self.config.dim;
        if n == 0 {
            return Matrix::zeros(0, dim);
        }
        let ids_per_text: Vec<Vec<usize>> = texts
            .iter()
            .map(|t| self.vocab.encode(t, self.config.max_len))
            .collect();

        let pooled = match self.config.kind {
            EncoderKind::MeanPool => {
                // One gather for the chunk, then segment means accumulated in place.
                let all_ids: Vec<usize> = ids_per_text.iter().flatten().copied().collect();
                let embedded = self.embedding.lookup(&all_ids);
                let mut means = Matrix::zeros(n, dim);
                let mut offset = 0;
                for (i, ids) in ids_per_text.iter().enumerate() {
                    if !ids.is_empty() {
                        for t in offset..offset + ids.len() {
                            let token_row = embedded.row(t);
                            for (m, &e) in means.row_mut(i).iter_mut().zip(token_row.iter()) {
                                *m += e;
                            }
                        }
                        let inv = 1.0 / ids.len() as f32;
                        for m in means.row_mut(i) {
                            *m *= inv;
                        }
                    }
                    offset += ids.len();
                }
                let lifted = self.pool_mlp.infer(&means);
                means.add(&lifted)
            }
            EncoderKind::Transformer => {
                let lens: Vec<usize> = ids_per_text.iter().map(|ids| ids.len()).collect();
                let max_len = lens.iter().copied().max().unwrap_or(0).max(1);
                let mut padded_ids = Vec::with_capacity(n * max_len);
                for ids in &ids_per_text {
                    padded_ids.extend(ids.iter().copied());
                    padded_ids.resize(padded_ids.len() + (max_len - ids.len()), 0);
                }
                let embedded = self.embedding.lookup(&padded_ids);
                let mut x = self.positional.infer_batch(&embedded, n, max_len);
                for block in &self.blocks {
                    x = block.infer_batch(&x, &lens, max_len);
                }
                sudowoodo_nn::tape::padded_segment_mean_rows(&x, &lens, max_len)
            }
        };
        let normed = self.output_norm.infer(&pooled);
        normed.l2_normalize_rows()
    }

    /// The retired per-sequence inference loop, kept verbatim as the frozen oracle for the
    /// batched-attention equivalence tests and the `perf_speedup` baseline (the role
    /// [`Matrix::matmul_naive`] plays for the GEMM kernels). Do not optimize this.
    pub fn infer_chunk_reference(&self, texts: &[String]) -> Matrix {
        let n = texts.len();
        let dim = self.config.dim;
        let ids_per_text: Vec<Vec<usize>> = texts
            .iter()
            .map(|t| self.vocab.encode(t, self.config.max_len))
            .collect();

        let pooled = match self.config.kind {
            EncoderKind::MeanPool => {
                let mut means = Matrix::zeros(n, dim);
                for (i, ids) in ids_per_text.iter().enumerate() {
                    if !ids.is_empty() {
                        let embedded = self.embedding.lookup(ids);
                        means
                            .row_mut(i)
                            .copy_from_slice(embedded.mean_rows().row(0));
                    }
                }
                let lifted = self.pool_mlp.infer(&means);
                means.add(&lifted)
            }
            EncoderKind::Transformer => {
                let mut pooled = Matrix::zeros(n, dim);
                for (i, ids) in ids_per_text.iter().enumerate() {
                    if ids.is_empty() {
                        continue;
                    }
                    let mut x = self.embedding.lookup(ids);
                    x = self.positional.infer(&x, ids.len());
                    for block in &self.blocks {
                        x = block.infer(&x);
                    }
                    pooled.row_mut(i).copy_from_slice(x.mean_rows().row(0));
                }
                pooled
            }
        };
        let normed = self.output_norm.infer(&pooled);
        normed.l2_normalize_rows()
    }

    /// Convenience: embedding of a single text.
    pub fn embed_one(&self, text: &str) -> Vec<f32> {
        self.embed_all(&[text.to_string()]).remove(0)
    }
}

/// Cosine similarity between two embeddings produced by [`Encoder::embed_all`].
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    Matrix::cosine(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;

    fn small_corpus() -> Vec<String> {
        vec![
            "[COL] title [VAL] canon ink cartridge cyan [COL] price [VAL] 13.99".to_string(),
            "[COL] title [VAL] canon cyan ink tank [COL] price [VAL] 16.00".to_string(),
            "[COL] title [VAL] post mortem dreamcatcher [COL] price [VAL] 29.99".to_string(),
            "[COL] title [VAL] spanish language course deluxe [COL] price [VAL] 36.11".to_string(),
        ]
    }

    #[test]
    fn meanpool_and_transformer_produce_unit_vectors() {
        for kind in [EncoderKind::MeanPool, EncoderKind::Transformer] {
            let config = EncoderConfig {
                kind,
                dim: 16,
                layers: 1,
                heads: 2,
                ff_hidden: 32,
                max_len: 24,
            };
            let encoder = Encoder::from_corpus(config, &small_corpus(), 1);
            let embeddings = encoder.embed_all(&small_corpus());
            assert_eq!(embeddings.len(), 4);
            for e in &embeddings {
                assert_eq!(e.len(), 16);
                let norm: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
                assert!(
                    (norm - 1.0).abs() < 1e-4,
                    "embedding not normalized: {norm}"
                );
            }
            assert!(encoder.num_parameters() > 0);
        }
    }

    #[test]
    fn identical_texts_have_cosine_one() {
        let encoder = Encoder::from_corpus(EncoderConfig::tiny(), &small_corpus(), 2);
        let a = encoder.embed_one(&small_corpus()[0]);
        let b = encoder.embed_one(&small_corpus()[0]);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn encode_batch_matches_individual_encoding() {
        let encoder = Encoder::from_corpus(EncoderConfig::tiny(), &small_corpus(), 3);
        let corpus = small_corpus();
        let all = encoder.embed_all(&corpus);
        let single = encoder.embed_one(&corpus[2]);
        assert!((cosine(&all[2], &single) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn tape_and_inference_paths_agree_for_both_architectures() {
        // Three forwards exist (per-row tape, batched tape, tape-free infer); a change to
        // one must not silently diverge from the others. Pin all three together.
        let corpus = small_corpus();
        for kind in [EncoderKind::MeanPool, EncoderKind::Transformer] {
            let config = EncoderConfig {
                kind,
                dim: 16,
                layers: 1,
                heads: 2,
                ff_hidden: 32,
                max_len: 24,
            };
            let encoder = Encoder::from_corpus(config, &corpus, 9);
            let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();

            let mut tape = Tape::new();
            let batched = encoder.encode_batch(&mut tape, &refs, &CutoffPlan::noop());
            let batched = tape.value(batched).clone();

            let mut row_tape = Tape::new();
            let rows: Vec<_> = refs
                .iter()
                .map(|t| encoder.encode_text(&mut row_tape, t, &CutoffPlan::noop()))
                .collect();
            let per_row = row_tape.stack_rows(&rows);
            let per_row = row_tape.value(per_row).clone();

            let inferred = encoder.infer_chunk(&corpus);

            assert!(
                batched.approx_eq(&per_row, 1e-4),
                "{kind:?}: batched tape path diverged from per-row tape path"
            );
            assert!(
                batched.approx_eq(&inferred, 1e-4),
                "{kind:?}: tape path diverged from inference path"
            );
        }
    }

    #[test]
    fn encoder_is_differentiable_end_to_end() {
        let corpus = small_corpus();
        let config = EncoderConfig {
            kind: EncoderKind::Transformer,
            dim: 8,
            layers: 1,
            heads: 2,
            ff_hidden: 16,
            max_len: 16,
        };
        let encoder = Encoder::from_corpus(config, &corpus, 4);
        let mut tape = Tape::new();
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let batch = encoder.encode_batch(&mut tape, &refs, &CutoffPlan::noop());
        let sq = tape.pow2(batch);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        let mut with_grad = 0;
        for (node, _) in tape.bindings() {
            if grads.get(*node).is_some() {
                with_grad += 1;
            }
        }
        assert!(with_grad > 0, "no parameter received a gradient");
    }

    #[test]
    fn encode_batch_of_zero_texts_yields_empty_matrix() {
        // Regression: this used to panic with "encode_batch: empty batch".
        for kind in [EncoderKind::MeanPool, EncoderKind::Transformer] {
            let config = EncoderConfig {
                kind,
                ..EncoderConfig::tiny()
            };
            let encoder = Encoder::from_corpus(config, &small_corpus(), 11);
            let mut tape = Tape::new();
            let out = encoder.encode_batch(&mut tape, &[], &CutoffPlan::noop());
            assert_eq!(tape.value(out).shape(), (0, config.dim));
            assert_eq!(encoder.infer_chunk(&[]).shape(), (0, config.dim));
            assert!(encoder.embed_all(&[]).is_empty());
        }
    }

    #[test]
    fn zero_length_token_sequences_pool_to_defined_rows() {
        // Regression: a sequence that tokenizes to nothing must produce a defined,
        // finite, unit-norm embedding (the zero pooled row pushed through the output
        // norm) on the per-sequence oracle — the same convention the batched padded
        // pooling assigns an all-padding block.
        for kind in [EncoderKind::MeanPool, EncoderKind::Transformer] {
            let config = EncoderConfig {
                kind,
                ..EncoderConfig::tiny()
            };
            let encoder = Encoder::from_corpus(config, &small_corpus(), 12);
            let mut tape = Tape::new();
            let out = encoder.encode_ids(&mut tape, &[], &CutoffPlan::noop());
            let v = tape.value(out);
            assert_eq!(v.shape(), (1, config.dim));
            assert!(
                v.data().iter().all(|x| x.is_finite()),
                "{kind:?}: non-finite embedding for an empty token sequence"
            );
            // A fresh encoder has zero biases, so the zero pooled row stays the zero
            // vector (which `l2_normalize_rows` deliberately leaves unchanged) — what
            // matters is that the row is defined, not that it has unit norm.
        }
    }

    #[test]
    fn ragged_batches_with_empty_texts_agree_across_paths() {
        // "" tokenizes to the single PAD token, giving maximal raggedness next to a long
        // text; batched tape, per-row oracle, and batched inference must still agree.
        let corpus = small_corpus();
        let config = EncoderConfig {
            kind: EncoderKind::Transformer,
            ..EncoderConfig::tiny()
        };
        let encoder = Encoder::from_corpus(config, &corpus, 13);
        let texts = vec!["".to_string(), corpus[0].clone(), "canon".to_string()];
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();

        let mut tape = Tape::new();
        let batched = encoder.encode_batch(&mut tape, &refs, &CutoffPlan::noop());
        let batched = tape.value(batched).clone();

        let mut row_tape = Tape::new();
        let rows: Vec<_> = refs
            .iter()
            .map(|t| encoder.encode_text(&mut row_tape, t, &CutoffPlan::noop()))
            .collect();
        let per_row = row_tape.stack_rows(&rows);
        let per_row = row_tape.value(per_row).clone();

        assert!(batched.approx_eq(&per_row, 1e-4));
        assert!(batched.approx_eq(&encoder.infer_chunk(&texts), 1e-4));
        assert!(batched.approx_eq(&encoder.infer_chunk_reference(&texts), 1e-4));
    }

    #[test]
    fn batched_inference_matches_per_sequence_reference() {
        // The frozen per-sequence loop (`infer_chunk_reference`) is the oracle for the
        // batched masked-attention inference path.
        for kind in [EncoderKind::MeanPool, EncoderKind::Transformer] {
            let config = EncoderConfig {
                kind,
                dim: 16,
                layers: 2,
                heads: 4,
                ff_hidden: 32,
                max_len: 24,
            };
            let encoder = Encoder::from_corpus(config, &small_corpus(), 14);
            let batched = encoder.infer_chunk(&small_corpus());
            let reference = encoder.infer_chunk_reference(&small_corpus());
            assert!(
                batched.approx_eq(&reference, 1e-4),
                "{kind:?}: batched inference diverged from the per-sequence oracle"
            );
        }
    }

    #[test]
    fn long_inputs_are_truncated_to_max_len() {
        let config = EncoderConfig {
            max_len: 6,
            ..EncoderConfig::tiny()
        };
        let encoder = Encoder::from_corpus(config, &small_corpus(), 5);
        let long_text = "[COL] title [VAL] ".to_string() + &"token ".repeat(100);
        let e = encoder.embed_one(&long_text);
        assert_eq!(e.len(), config.dim);
        assert!(e.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn vocab_accessor_reflects_corpus() {
        let encoder = Encoder::from_corpus(EncoderConfig::tiny(), &small_corpus(), 6);
        assert!(encoder.vocab().known_size() > 6);
        assert_eq!(encoder.dim(), 16);
    }
}
