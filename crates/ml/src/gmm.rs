//! Gaussian Mixture Models fitted with Expectation-Maximization.
//!
//! The ZeroER baseline (Wu et al., SIGMOD 2020) models the distribution of similarity
//! features of matching and non-matching pairs as a two-component Gaussian mixture and
//! labels pairs by posterior probability without any labeled examples. This module provides
//! the diagonal-covariance GMM that the baseline needs.

use rand::seq::SliceRandom;
use rand::Rng;

/// A single diagonal-covariance Gaussian component.
#[derive(Clone, Debug)]
pub struct Component {
    /// Mixture weight.
    pub weight: f32,
    /// Per-dimension mean.
    pub mean: Vec<f32>,
    /// Per-dimension variance (floored for stability).
    pub variance: Vec<f32>,
}

impl Component {
    /// Log probability density of a point under this component.
    pub fn log_density(&self, x: &[f32]) -> f32 {
        let mut log_p = 0.0f32;
        for ((&xi, &mu), &var) in x.iter().zip(&self.mean).zip(&self.variance) {
            let var = var.max(1e-6);
            log_p +=
                -0.5 * ((xi - mu) * (xi - mu) / var + var.ln() + (2.0 * std::f32::consts::PI).ln());
        }
        log_p
    }
}

/// A fitted Gaussian mixture model.
#[derive(Clone, Debug)]
pub struct GaussianMixture {
    /// Mixture components.
    pub components: Vec<Component>,
    /// Log-likelihood trace over EM iterations.
    pub log_likelihood_trace: Vec<f32>,
}

/// Configuration for [`GaussianMixture::fit`].
#[derive(Clone, Copy, Debug)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub num_components: usize,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the mean log-likelihood improvement.
    pub tolerance: f32,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            num_components: 2,
            max_iterations: 100,
            tolerance: 1e-4,
        }
    }
}

impl GaussianMixture {
    /// Fits a GMM with EM. Components are initialized from random points with the global
    /// per-dimension variance.
    pub fn fit(data: &[Vec<f32>], config: &GmmConfig, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "GaussianMixture::fit: empty data");
        let dim = data[0].len();
        let k = config.num_components.clamp(1, data.len());

        // Global variance for initialization.
        let mut global_mean = vec![0.0f32; dim];
        for x in data {
            for (m, &v) in global_mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in global_mean.iter_mut() {
            *m /= data.len() as f32;
        }
        let mut global_var = vec![0.0f32; dim];
        for x in data {
            for ((gv, &v), &m) in global_var.iter_mut().zip(x).zip(&global_mean) {
                *gv += (v - m) * (v - m);
            }
        }
        for gv in global_var.iter_mut() {
            *gv = (*gv / data.len() as f32).max(1e-4);
        }

        let mut seeds: Vec<usize> = (0..data.len()).collect();
        seeds.shuffle(rng);
        let mut components: Vec<Component> = seeds[..k]
            .iter()
            .map(|&i| Component {
                weight: 1.0 / k as f32,
                mean: data[i].clone(),
                variance: global_var.clone(),
            })
            .collect();

        let n = data.len();
        let mut responsibilities = vec![vec![0.0f32; k]; n];
        let mut trace = Vec::new();
        let mut previous_ll = f32::NEG_INFINITY;
        for _ in 0..config.max_iterations {
            // E-step.
            let mut total_ll = 0.0f32;
            for (i, x) in data.iter().enumerate() {
                let logs: Vec<f32> = components
                    .iter()
                    .map(|c| c.weight.max(1e-12).ln() + c.log_density(x))
                    .collect();
                let max = logs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let sum: f32 = logs.iter().map(|l| (l - max).exp()).sum();
                total_ll += max + sum.ln();
                for (j, l) in logs.iter().enumerate() {
                    responsibilities[i][j] = ((l - max).exp() / sum).max(1e-12);
                }
            }
            let mean_ll = total_ll / n as f32;
            trace.push(mean_ll);
            if (mean_ll - previous_ll).abs() < config.tolerance {
                break;
            }
            previous_ll = mean_ll;

            // M-step.
            for j in 0..k {
                let resp_sum: f32 = responsibilities.iter().map(|r| r[j]).sum();
                let mut mean = vec![0.0f32; dim];
                for (x, r) in data.iter().zip(&responsibilities) {
                    for (m, &v) in mean.iter_mut().zip(x) {
                        *m += r[j] * v;
                    }
                }
                for m in mean.iter_mut() {
                    *m /= resp_sum;
                }
                let mut variance = vec![0.0f32; dim];
                for (x, r) in data.iter().zip(&responsibilities) {
                    for ((s, &v), &m) in variance.iter_mut().zip(x).zip(&mean) {
                        *s += r[j] * (v - m) * (v - m);
                    }
                }
                for s in variance.iter_mut() {
                    *s = (*s / resp_sum).max(1e-6);
                }
                components[j] = Component {
                    weight: resp_sum / n as f32,
                    mean,
                    variance,
                };
            }
        }
        GaussianMixture {
            components,
            log_likelihood_trace: trace,
        }
    }

    /// Posterior responsibility of each component for a point.
    pub fn posterior(&self, x: &[f32]) -> Vec<f32> {
        let logs: Vec<f32> = self
            .components
            .iter()
            .map(|c| c.weight.max(1e-12).ln() + c.log_density(x))
            .collect();
        let max = logs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = logs.iter().map(|l| (l - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        exp.into_iter().map(|e| e / sum).collect()
    }

    /// Index of the most likely component.
    pub fn assign(&self, x: &[f32]) -> usize {
        let post = self.posterior(x);
        post.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Index of the component with the largest mean along dimension `dim` — for ZeroER,
    /// the "match" component is the one whose similarity features are highest.
    pub fn component_with_largest_mean(&self, dim: usize) -> usize {
        self.components
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.mean[dim]
                    .partial_cmp(&b.1.mean[dim])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blob_data(rng: &mut impl Rng) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..100 {
            data.push(vec![rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2)]);
            labels.push(0);
        }
        for _ in 0..100 {
            data.push(vec![
                3.0 + rng.gen_range(-0.2..0.2),
                3.0 + rng.gen_range(-0.2..0.2),
            ]);
            labels.push(1);
        }
        (data, labels)
    }

    #[test]
    fn em_separates_two_well_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let (data, labels) = two_blob_data(&mut rng);
        let gmm = GaussianMixture::fit(&data, &GmmConfig::default(), &mut rng);
        assert_eq!(gmm.components.len(), 2);
        // The component with the larger mean on dim 0 should claim exactly the second blob.
        let high = gmm.component_with_largest_mean(0);
        let correct = data
            .iter()
            .zip(&labels)
            .filter(|(x, &l)| (gmm.assign(x) == high) == (l == 1))
            .count();
        assert!(correct >= 198, "GMM separated only {correct}/200 points");
        // Weights should be roughly balanced.
        assert!((gmm.components[0].weight - 0.5).abs() < 0.1);
    }

    #[test]
    fn log_likelihood_is_nondecreasing() {
        let mut rng = StdRng::seed_from_u64(2);
        let (data, _) = two_blob_data(&mut rng);
        let gmm = GaussianMixture::fit(
            &data,
            &GmmConfig {
                num_components: 2,
                max_iterations: 30,
                tolerance: 0.0,
            },
            &mut rng,
        );
        let trace = &gmm.log_likelihood_trace;
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-3, "log-likelihood decreased: {:?}", w);
        }
    }

    #[test]
    fn posterior_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let (data, _) = two_blob_data(&mut rng);
        let gmm = GaussianMixture::fit(&data, &GmmConfig::default(), &mut rng);
        let p = gmm.posterior(&[1.5, 1.5]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn single_component_covers_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let gmm = GaussianMixture::fit(
            &data,
            &GmmConfig {
                num_components: 1,
                max_iterations: 10,
                tolerance: 1e-4,
            },
            &mut rng,
        );
        assert_eq!(gmm.components.len(), 1);
        assert!((gmm.components[0].weight - 1.0).abs() < 1e-5);
        assert_eq!(gmm.assign(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = GaussianMixture::fit(&[], &GmmConfig::default(), &mut rng);
    }
}
