//! Linear classifiers: logistic regression and a linear SVM trained with SGD.
//!
//! These power the Sherlock/Sato column-matching baselines (LR / SVM variants of Table XII)
//! and serve as simple probes elsewhere.

use rand::seq::SliceRandom;
use rand::Rng;

/// A dense feature vector.
pub type Features = Vec<f32>;

/// Binary logistic regression trained with mini-batch SGD and L2 regularization.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// Number of passes over the data.
    pub epochs: usize,
}

impl LogisticRegression {
    /// Creates an untrained model for `dim`-dimensional inputs.
    pub fn new(dim: usize) -> Self {
        LogisticRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
            learning_rate: 0.1,
            l2: 1e-4,
            epochs: 100,
        }
    }

    /// Sets training hyper-parameters.
    pub fn with_hyperparams(mut self, learning_rate: f32, l2: f32, epochs: usize) -> Self {
        self.learning_rate = learning_rate;
        self.l2 = l2;
        self.epochs = epochs;
        self
    }

    /// Trains on `(features, label)` pairs.
    pub fn fit(&mut self, x: &[Features], y: &[bool], rng: &mut impl Rng) {
        assert_eq!(x.len(), y.len(), "fit: feature/label length mismatch");
        if x.is_empty() {
            return;
        }
        let n = x.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.epochs {
            order.shuffle(rng);
            for &i in &order {
                let p = self.predict_proba(&x[i]);
                let error = p - if y[i] { 1.0 } else { 0.0 };
                for (w, &xi) in self.weights.iter_mut().zip(&x[i]) {
                    *w -= self.learning_rate * (error * xi + self.l2 * *w);
                }
                self.bias -= self.learning_rate * error;
            }
        }
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, features: &[f32]) -> f32 {
        let z: f32 = self
            .weights
            .iter()
            .zip(features.iter())
            .map(|(w, x)| w * x)
            .sum::<f32>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &[f32]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Model weights (for inspection in tests).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

/// A linear support-vector machine trained by SGD on the hinge loss (Pegasos-style).
#[derive(Clone, Debug)]
pub struct LinearSvm {
    weights: Vec<f32>,
    bias: f32,
    /// Regularization strength (lambda).
    pub lambda: f32,
    /// Number of passes over the data.
    pub epochs: usize,
}

impl LinearSvm {
    /// Creates an untrained model.
    pub fn new(dim: usize) -> Self {
        LinearSvm {
            weights: vec![0.0; dim],
            bias: 0.0,
            lambda: 1e-3,
            epochs: 100,
        }
    }

    /// Sets training hyper-parameters.
    pub fn with_hyperparams(mut self, lambda: f32, epochs: usize) -> Self {
        self.lambda = lambda;
        self.epochs = epochs;
        self
    }

    /// Trains on `(features, label)` pairs.
    pub fn fit(&mut self, x: &[Features], y: &[bool], rng: &mut impl Rng) {
        assert_eq!(x.len(), y.len(), "fit: feature/label length mismatch");
        if x.is_empty() {
            return;
        }
        let n = x.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0usize;
        for _ in 0..self.epochs {
            order.shuffle(rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f32);
                let target = if y[i] { 1.0 } else { -1.0 };
                let margin = target * (self.decision(&x[i]));
                // Shrink weights (regularization).
                for w in self.weights.iter_mut() {
                    *w *= 1.0 - eta * self.lambda;
                }
                if margin < 1.0 {
                    for (w, &xi) in self.weights.iter_mut().zip(&x[i]) {
                        *w += eta * target * xi;
                    }
                    self.bias += eta * target;
                }
            }
        }
    }

    /// Signed decision value.
    pub fn decision(&self, features: &[f32]) -> f32 {
        self.weights
            .iter()
            .zip(features.iter())
            .map(|(w, x)| w * x)
            .sum::<f32>()
            + self.bias
    }

    /// Hard prediction.
    pub fn predict(&self, features: &[f32]) -> bool {
        self.decision(features) >= 0.0
    }

    /// A pseudo-probability obtained by squashing the decision value; only used to rank.
    pub fn predict_proba(&self, features: &[f32]) -> f32 {
        1.0 / (1.0 + (-self.decision(features)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable 2-D data: positive iff x0 + x1 > 1.
    fn toy_data(n: usize, rng: &mut impl Rng) -> (Vec<Features>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            x.push(vec![a, b]);
            y.push(a + b > 1.0);
        }
        (x, y)
    }

    #[test]
    fn logistic_regression_learns_separable_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = toy_data(300, &mut rng);
        let mut model = LogisticRegression::new(2).with_hyperparams(0.5, 1e-5, 60);
        model.fit(&x, &y, &mut rng);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| model.predict(xi) == yi)
            .count();
        assert!(
            correct as f32 / x.len() as f32 > 0.93,
            "accuracy too low: {correct}/300"
        );
        // Both weights should be positive (both features push towards the positive class).
        assert!(model.weights()[0] > 0.0 && model.weights()[1] > 0.0);
    }

    #[test]
    fn logistic_regression_probabilities_are_calibrated_ordering() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = toy_data(300, &mut rng);
        let mut model = LogisticRegression::new(2).with_hyperparams(0.5, 1e-5, 60);
        model.fit(&x, &y, &mut rng);
        assert!(model.predict_proba(&[0.9, 0.9]) > model.predict_proba(&[0.1, 0.1]));
    }

    #[test]
    fn linear_svm_learns_separable_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let (x, y) = toy_data(300, &mut rng);
        let mut model = LinearSvm::new(2).with_hyperparams(1e-3, 60);
        model.fit(&x, &y, &mut rng);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| model.predict(xi) == yi)
            .count();
        assert!(
            correct as f32 / x.len() as f32 > 0.9,
            "accuracy too low: {correct}/300"
        );
        assert!(model.predict_proba(&[1.0, 1.0]) > 0.5);
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lr = LogisticRegression::new(3);
        lr.fit(&[], &[], &mut rng);
        assert_eq!(lr.predict_proba(&[1.0, 1.0, 1.0]), 0.5);
        let mut svm = LinearSvm::new(3);
        svm.fit(&[], &[], &mut rng);
        assert!(svm.predict(&[0.0, 0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lr = LogisticRegression::new(1);
        lr.fit(&[vec![1.0]], &[], &mut rng);
    }
}
