//! Tree ensembles: random forest and gradient-boosted trees.
//!
//! These are the strongest classical baselines paired with the Sherlock/Sato column features
//! in the paper's column-matching comparison (Table XII reports LR/SVM/GBT/RF variants, with
//! GBT the best baseline).

use rand::Rng;

use crate::tree::{DecisionTree, RegressionTree, TreeConfig};

/// A bagged random-forest classifier.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree induction configuration.
    pub tree_config: TreeConfig,
}

impl RandomForest {
    /// Creates an unfitted forest. `max_features` defaults to sqrt(d) at fit time when the
    /// provided config leaves it as `None`.
    pub fn new(num_trees: usize, tree_config: TreeConfig) -> Self {
        RandomForest {
            trees: Vec::new(),
            num_trees,
            tree_config,
        }
    }

    /// Fits the forest with bootstrap sampling and per-split feature subsampling.
    pub fn fit(&mut self, x: &[Vec<f32>], y: &[bool], rng: &mut impl Rng) {
        assert_eq!(x.len(), y.len(), "fit: feature/label length mismatch");
        self.trees.clear();
        if x.is_empty() {
            return;
        }
        let dim = x[0].len();
        let mut config = self.tree_config;
        if config.max_features.is_none() {
            config.max_features = Some(((dim as f32).sqrt().ceil() as usize).max(1));
        }
        for _ in 0..self.num_trees {
            // Bootstrap sample.
            let mut bx = Vec::with_capacity(x.len());
            let mut by = Vec::with_capacity(y.len());
            for _ in 0..x.len() {
                let i = rng.gen_range(0..x.len());
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            let mut tree = DecisionTree::new(config);
            tree.fit(&bx, &by, rng);
            self.trees.push(tree);
        }
    }

    /// Mean positive-class probability over the trees.
    pub fn predict_proba(&self, features: &[f32]) -> f32 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees
            .iter()
            .map(|t| t.predict_proba(features))
            .sum::<f32>()
            / self.trees.len() as f32
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &[f32]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` when no tree has been fitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// A gradient-boosting binary classifier with regression-tree weak learners and logistic loss.
#[derive(Clone, Debug)]
pub struct GradientBoosting {
    trees: Vec<RegressionTree>,
    base_score: f32,
    /// Number of boosting rounds.
    pub num_rounds: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f32,
    /// Weak-learner configuration.
    pub tree_config: TreeConfig,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    pub fn new(num_rounds: usize, learning_rate: f32, tree_config: TreeConfig) -> Self {
        GradientBoosting {
            trees: Vec::new(),
            base_score: 0.0,
            num_rounds,
            learning_rate,
            tree_config,
        }
    }

    /// Fits the booster on binary labels using gradient descent in function space:
    /// each round fits a regression tree to the residuals `y - sigmoid(F(x))`.
    pub fn fit(&mut self, x: &[Vec<f32>], y: &[bool], rng: &mut impl Rng) {
        assert_eq!(x.len(), y.len(), "fit: feature/label length mismatch");
        self.trees.clear();
        if x.is_empty() {
            self.base_score = 0.0;
            return;
        }
        // Initialize with the log-odds of the positive rate.
        let pos = y.iter().filter(|&&b| b).count() as f32;
        let rate = (pos / y.len() as f32).clamp(1e-4, 1.0 - 1e-4);
        self.base_score = (rate / (1.0 - rate)).ln();
        let mut scores = vec![self.base_score; x.len()];
        for _ in 0..self.num_rounds {
            let residuals: Vec<f32> = scores
                .iter()
                .zip(y.iter())
                .map(|(&s, &label)| {
                    let p = 1.0 / (1.0 + (-s).exp());
                    (if label { 1.0 } else { 0.0 }) - p
                })
                .collect();
            let mut tree = RegressionTree::new(self.tree_config);
            tree.fit(x, &residuals, rng);
            for (i, xi) in x.iter().enumerate() {
                scores[i] += self.learning_rate * tree.predict(xi);
            }
            self.trees.push(tree);
        }
    }

    /// Raw additive score `F(x)`.
    pub fn decision(&self, features: &[f32]) -> f32 {
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.learning_rate * t.predict(features))
                .sum::<f32>()
    }

    /// Positive-class probability.
    pub fn predict_proba(&self, features: &[f32]) -> f32 {
        1.0 / (1.0 + (-self.decision(features)).exp())
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &[f32]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Number of fitted boosting rounds.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` when no rounds have been fitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Noisy circular decision boundary — not linearly separable, so it stresses the
    /// ensembles more than a linear rule would.
    fn ring_data(n: usize, rng: &mut impl Rng) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            x.push(vec![a, b]);
            y.push(a * a + b * b < 0.5);
        }
        (x, y)
    }

    fn accuracy(pred: impl Fn(&[f32]) -> bool, x: &[Vec<f32>], y: &[bool]) -> f32 {
        x.iter().zip(y).filter(|(xi, &yi)| pred(xi) == yi).count() as f32 / x.len() as f32
    }

    #[test]
    fn random_forest_beats_chance_on_ring() {
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = ring_data(400, &mut rng);
        let mut rf = RandomForest::new(
            15,
            TreeConfig {
                max_depth: 6,
                min_samples_split: 4,
                max_features: None,
            },
        );
        rf.fit(&x, &y, &mut rng);
        assert_eq!(rf.len(), 15);
        assert!(!rf.is_empty());
        let acc = accuracy(|f| rf.predict(f), &x, &y);
        assert!(acc > 0.9, "random forest accuracy {acc}");
        assert!(rf.predict_proba(&[0.0, 0.0]) > 0.8);
        assert!(rf.predict_proba(&[0.95, 0.95]) < 0.3);
    }

    #[test]
    fn gradient_boosting_beats_chance_on_ring() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = ring_data(400, &mut rng);
        let mut gbt = GradientBoosting::new(
            30,
            0.3,
            TreeConfig {
                max_depth: 3,
                min_samples_split: 4,
                max_features: None,
            },
        );
        gbt.fit(&x, &y, &mut rng);
        assert_eq!(gbt.len(), 30);
        assert!(!gbt.is_empty());
        let acc = accuracy(|f| gbt.predict(f), &x, &y);
        assert!(acc > 0.9, "gradient boosting accuracy {acc}");
    }

    #[test]
    fn gbt_base_score_matches_class_prior_when_no_rounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..10).map(|i| i < 3).collect();
        let mut gbt = GradientBoosting::new(0, 0.1, TreeConfig::default());
        gbt.fit(&x, &y, &mut rng);
        assert!((gbt.predict_proba(&[5.0]) - 0.3).abs() < 0.02);
    }

    #[test]
    fn unfitted_models_return_neutral_predictions() {
        let rf = RandomForest::new(5, TreeConfig::default());
        assert_eq!(rf.predict_proba(&[1.0]), 0.5);
        let gbt = GradientBoosting::new(5, 0.1, TreeConfig::default());
        assert_eq!(gbt.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn empty_training_sets_are_noops() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut rf = RandomForest::new(3, TreeConfig::default());
        rf.fit(&[], &[], &mut rng);
        assert!(rf.is_empty());
        let mut gbt = GradientBoosting::new(3, 0.1, TreeConfig::default());
        gbt.fit(&[], &[], &mut rng);
        assert!(gbt.is_empty());
    }
}
