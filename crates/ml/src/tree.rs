//! CART-style binary decision trees.
//!
//! Two flavours share the same induction machinery:
//! * [`DecisionTree`] — classification with Gini impurity (used by the random forest);
//! * [`RegressionTree`] — least-squares regression (used as the weak learner of the
//!   gradient-boosting classifier).

use rand::Rng;

/// A node of a fitted tree.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, features: &[f32]) -> f32 {
        match self {
            Node::Leaf { value } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if features[*feature] <= *threshold {
                    left.predict(features)
                } else {
                    right.predict(features)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// Hyper-parameters shared by both tree types.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of random features examined per split (`None` = all features).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

/// Outcome of searching for the best split of a node.
struct BestSplit {
    feature: usize,
    threshold: f32,
    score: f32,
    left: Vec<usize>,
    right: Vec<usize>,
}

/// Finds the best split of `indices` minimizing the weighted child impurity computed by
/// `impurity(targets of child)`. Returns `None` when no split improves over the parent.
fn best_split(
    x: &[Vec<f32>],
    targets: &[f32],
    indices: &[usize],
    config: &TreeConfig,
    impurity: &dyn Fn(&[f32]) -> f32,
    rng: &mut impl Rng,
) -> Option<BestSplit> {
    let num_features = x[0].len();
    let parent_targets: Vec<f32> = indices.iter().map(|&i| targets[i]).collect();
    let parent_impurity = impurity(&parent_targets);
    if parent_impurity <= 1e-9 {
        return None;
    }

    // Candidate features (optionally a random subset, for random forests).
    let mut features: Vec<usize> = (0..num_features).collect();
    if let Some(k) = config.max_features {
        let k = k.clamp(1, num_features);
        for i in 0..k {
            let j = rng.gen_range(i..features.len());
            features.swap(i, j);
        }
        features.truncate(k);
    }

    let mut best: Option<BestSplit> = None;
    for &f in &features {
        // Sort indices by this feature and scan midpoints between distinct values.
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_by(|&a, &b| {
            x[a][f]
                .partial_cmp(&x[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for w in 1..sorted.len() {
            let lo = x[sorted[w - 1]][f];
            let hi = x[sorted[w]][f];
            if (hi - lo).abs() < 1e-12 {
                continue;
            }
            let threshold = (lo + hi) / 2.0;
            let left: Vec<usize> = sorted[..w].to_vec();
            let right: Vec<usize> = sorted[w..].to_vec();
            let left_t: Vec<f32> = left.iter().map(|&i| targets[i]).collect();
            let right_t: Vec<f32> = right.iter().map(|&i| targets[i]).collect();
            let score = (left_t.len() as f32 * impurity(&left_t)
                + right_t.len() as f32 * impurity(&right_t))
                / indices.len() as f32;
            if best.as_ref().map(|b| score < b.score).unwrap_or(true) {
                best = Some(BestSplit {
                    feature: f,
                    threshold,
                    score,
                    left,
                    right,
                });
            }
        }
    }
    // Accept the best split even when it does not immediately reduce impurity (a greedy
    // CART would otherwise be unable to enter XOR-like interactions); depth and
    // min-samples limits bound the tree size instead.
    best.filter(|b| b.score <= parent_impurity + 1e-9)
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    x: &[Vec<f32>],
    targets: &[f32],
    indices: &[usize],
    depth: usize,
    config: &TreeConfig,
    impurity: &dyn Fn(&[f32]) -> f32,
    leaf_value: &dyn Fn(&[f32]) -> f32,
    rng: &mut impl Rng,
) -> Node {
    let node_targets: Vec<f32> = indices.iter().map(|&i| targets[i]).collect();
    if depth >= config.max_depth || indices.len() < config.min_samples_split {
        return Node::Leaf {
            value: leaf_value(&node_targets),
        };
    }
    match best_split(x, targets, indices, config, impurity, rng) {
        None => Node::Leaf {
            value: leaf_value(&node_targets),
        },
        Some(split) => Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: Box::new(build_node(
                x,
                targets,
                &split.left,
                depth + 1,
                config,
                impurity,
                leaf_value,
                rng,
            )),
            right: Box::new(build_node(
                x,
                targets,
                &split.right,
                depth + 1,
                config,
                impurity,
                leaf_value,
                rng,
            )),
        },
    }
}

/// Gini impurity of binary targets encoded as 0.0 / 1.0.
fn gini(targets: &[f32]) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let p = targets.iter().sum::<f32>() / targets.len() as f32;
    2.0 * p * (1.0 - p)
}

/// Variance of continuous targets.
fn variance(targets: &[f32]) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let mean = targets.iter().sum::<f32>() / targets.len() as f32;
    targets.iter().map(|t| (t - mean) * (t - mean)).sum::<f32>() / targets.len() as f32
}

fn mean(targets: &[f32]) -> f32 {
    if targets.is_empty() {
        0.0
    } else {
        targets.iter().sum::<f32>() / targets.len() as f32
    }
}

/// A binary classification tree (Gini impurity). Leaves store the positive-class fraction.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    root: Option<Node>,
    /// Induction hyper-parameters.
    pub config: TreeConfig,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree { root: None, config }
    }

    /// Fits the tree to binary labels.
    pub fn fit(&mut self, x: &[Vec<f32>], y: &[bool], rng: &mut impl Rng) {
        assert_eq!(x.len(), y.len(), "fit: feature/label length mismatch");
        if x.is_empty() {
            self.root = None;
            return;
        }
        let targets: Vec<f32> = y.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let indices: Vec<usize> = (0..x.len()).collect();
        self.root = Some(build_node(
            x,
            &targets,
            &indices,
            0,
            &self.config,
            &gini,
            &mean,
            rng,
        ));
    }

    /// Probability of the positive class (leaf positive fraction).
    pub fn predict_proba(&self, features: &[f32]) -> f32 {
        self.root
            .as_ref()
            .map(|r| r.predict(features))
            .unwrap_or(0.5)
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &[f32]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Depth of the fitted tree (0 when unfitted).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(|r| r.depth()).unwrap_or(0)
    }
}

/// A least-squares regression tree. Leaves store the mean target.
#[derive(Clone, Debug)]
pub struct RegressionTree {
    root: Option<Node>,
    /// Induction hyper-parameters.
    pub config: TreeConfig,
}

impl RegressionTree {
    /// Creates an unfitted tree.
    pub fn new(config: TreeConfig) -> Self {
        RegressionTree { root: None, config }
    }

    /// Fits the tree to continuous targets.
    pub fn fit(&mut self, x: &[Vec<f32>], y: &[f32], rng: &mut impl Rng) {
        assert_eq!(x.len(), y.len(), "fit: feature/target length mismatch");
        if x.is_empty() {
            self.root = None;
            return;
        }
        let indices: Vec<usize> = (0..x.len()).collect();
        self.root = Some(build_node(
            x,
            y,
            &indices,
            0,
            &self.config,
            &variance,
            &mean,
            rng,
        ));
    }

    /// Predicted value.
    pub fn predict(&self, features: &[f32]) -> f32 {
        self.root
            .as_ref()
            .map(|r| r.predict(features))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gini_and_variance_basics() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[1.0, 1.0]), 0.0);
        assert!((gini(&[1.0, 0.0]) - 0.5).abs() < 1e-6);
        assert_eq!(variance(&[]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn classification_tree_learns_axis_aligned_rule() {
        // Positive iff feature0 > 0.5, independent of feature1.
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let a = (i as f32) / 100.0;
            let b = ((i * 37) % 100) as f32 / 100.0;
            x.push(vec![a, b]);
            y.push(a > 0.5);
        }
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, &mut rng);
        assert!(tree.depth() >= 2);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| tree.predict(xi) == yi)
            .count();
        assert!(
            correct >= 98,
            "tree should nail an axis-aligned rule, got {correct}/100"
        );
        assert!(tree.predict_proba(&[0.9, 0.2]) > 0.9);
        assert!(tree.predict_proba(&[0.1, 0.9]) < 0.1);
    }

    #[test]
    fn classification_tree_xor_needs_depth_two() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = if i % 2 == 0 { 0.1 } else { 0.9 };
            let b = if (i / 2) % 2 == 0 { 0.1 } else { 0.9 };
            x.push(vec![a, b]);
            y.push((a > 0.5) != (b > 0.5));
        }
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 4,
            min_samples_split: 2,
            max_features: None,
        });
        tree.fit(&x, &y, &mut rng);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| tree.predict(xi) == yi)
            .count();
        assert!(correct as f32 / 200.0 > 0.95, "XOR accuracy {correct}/200");
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 50.0]).collect();
        let y: Vec<f32> = x
            .iter()
            .map(|v| if v[0] < 0.4 { 1.0 } else { 5.0 })
            .collect();
        let mut tree = RegressionTree::new(TreeConfig::default());
        tree.fit(&x, &y, &mut rng);
        assert!((tree.predict(&[0.1]) - 1.0).abs() < 0.2);
        assert!((tree.predict(&[0.9]) - 5.0).abs() < 0.2);
    }

    #[test]
    fn unfitted_and_empty_trees_return_defaults() {
        let tree = DecisionTree::new(TreeConfig::default());
        assert_eq!(tree.predict_proba(&[1.0]), 0.5);
        assert_eq!(tree.depth(), 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut rt = RegressionTree::new(TreeConfig::default());
        rt.fit(&[], &[], &mut rng);
        assert_eq!(rt.predict(&[1.0]), 0.0);
    }

    #[test]
    fn max_depth_one_produces_stump() {
        let mut rng = StdRng::seed_from_u64(5);
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 1,
            min_samples_split: 2,
            max_features: None,
        });
        tree.fit(&x, &y, &mut rng);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn pure_node_is_not_split() {
        let mut rng = StdRng::seed_from_u64(6);
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let y = vec![true; 10];
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, &mut rng);
        assert_eq!(tree.depth(), 1);
        assert!(tree.predict(&[3.0]));
    }
}
