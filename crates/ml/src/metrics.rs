//! Evaluation metrics used across the experiments.
//!
//! The matching and data-cleaning experiments report precision/recall/F1 over a binary
//! label; blocking reports recall and candidate-set size (in `sudowoodo-index`).

/// A binary confusion matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds a confusion matrix from predictions and gold labels.
    ///
    /// # Panics
    /// Panics when the slices have different lengths.
    pub fn from_predictions(predicted: &[bool], gold: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            gold.len(),
            "prediction/label length mismatch"
        );
        let mut c = Confusion::default();
        for (&p, &g) in predicted.iter().zip(gold.iter()) {
            match (p, g) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)`; defined as 0 when the denominator is 0.
    pub fn precision(&self) -> f32 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)`; defined as 0 when the denominator is 0.
    pub fn recall(&self) -> f32 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f32 {
        let p = self.precision();
        let r = self.recall();
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all predictions.
    pub fn accuracy(&self) -> f32 {
        ratio(self.tp + self.tn, self.tp + self.tn + self.fp + self.fn_)
    }

    /// True-positive rate of the *labels themselves* (used for pseudo-label quality,
    /// Table XI): among pairs labeled positive, the fraction that are truly positive.
    pub fn label_tpr(&self) -> f32 {
        self.precision()
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

fn ratio(num: usize, den: usize) -> f32 {
    if den == 0 {
        0.0
    } else {
        num as f32 / den as f32
    }
}

/// Precision / recall / F1 triple.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrF1 {
    /// Precision.
    pub precision: f32,
    /// Recall.
    pub recall: f32,
    /// F1 score.
    pub f1: f32,
}

impl PrF1 {
    /// Computes precision/recall/F1 from predictions.
    pub fn from_predictions(predicted: &[bool], gold: &[bool]) -> Self {
        let c = Confusion::from_predictions(predicted, gold);
        PrF1 {
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
        }
    }
}

/// Picks the probability threshold maximizing F1 on `(score, gold)` pairs.
///
/// Returns `(threshold, best_f1)`. Used to mirror the paper's practice of selecting the best
/// epoch/threshold on a validation split.
pub fn best_f1_threshold(scores: &[f32], gold: &[bool]) -> (f32, f32) {
    assert_eq!(scores.len(), gold.len());
    let mut candidates: Vec<f32> = scores.to_vec();
    candidates.push(0.5);
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    candidates.dedup();
    let mut best = (0.5f32, -1.0f32);
    for &t in &candidates {
        let predicted: Vec<bool> = scores.iter().map(|&s| s >= t).collect();
        let f1 = PrF1::from_predictions(&predicted, gold).f1;
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    (best.0, best.1.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = vec![true, true, false, false, true];
        let gold = vec![true, false, true, false, true];
        let c = Confusion::from_predictions(&pred, &gold);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 1, 1, 1));
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-6);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-6);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-6);
        assert!((c.accuracy() - 0.6).abs() < 1e-6);
        assert_eq!(c.total(), 5);
        assert_eq!(c.label_tpr(), c.precision());
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let c = Confusion::from_predictions(&[false, false], &[false, false]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let gold = vec![true, false, true];
        let m = PrF1::from_predictions(&gold, &gold);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn threshold_search_finds_separating_point() {
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let gold = vec![false, false, true, true];
        let (t, f1) = best_f1_threshold(&scores, &gold);
        assert_eq!(f1, 1.0);
        assert!(t > 0.2 && t <= 0.8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Confusion::from_predictions(&[true], &[true, false]);
    }
}
