//! # sudowoodo-ml
//!
//! Classical machine-learning substrate for the Sudowoodo reproduction.
//!
//! Several of the paper's baselines are not deep models: ZeroER is a Gaussian-mixture model
//! over pair-similarity features, and the Sherlock/Sato column-matching baselines pair
//! hand-crafted column features with LR / SVM / Random Forest / Gradient-Boosting
//! classifiers. This crate provides those learners plus the shared evaluation metrics:
//!
//! * [`metrics`] — precision / recall / F1, confusion matrices, threshold search;
//! * [`linear`] — logistic regression and a linear SVM (SGD training);
//! * [`tree`] — CART decision and regression trees;
//! * [`ensemble`] — random forest and gradient boosting;
//! * [`gmm`] — diagonal-covariance Gaussian mixtures fitted with EM.

#![warn(missing_docs)]

pub mod ensemble;
pub mod gmm;
pub mod linear;
pub mod metrics;
pub mod tree;

pub use ensemble::{GradientBoosting, RandomForest};
pub use gmm::{GaussianMixture, GmmConfig};
pub use linear::{LinearSvm, LogisticRegression};
pub use metrics::{best_f1_threshold, Confusion, PrF1};
pub use tree::{DecisionTree, RegressionTree, TreeConfig};
