//! Criterion micro-benchmarks of the Sudowoodo building blocks.
//!
//! These complement the experiment binaries (which regenerate the paper's tables and
//! figures) by measuring the throughput-critical primitives: encoder forward/backward,
//! the contrastive and Barlow Twins losses, TF-IDF + k-means clustering, kNN blocking, and
//! the data-augmentation operators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sudowoodo_augment::{augment, CutoffKind, CutoffPlan, DaOp};
use sudowoodo_cluster::{kmeans, BatchSampler, BatchStrategy, KMeansConfig, TfIdfVectorizer};
use sudowoodo_core::config::{EncoderConfig, EncoderKind, SudowoodoConfig};
use sudowoodo_core::encoder::Encoder;
use sudowoodo_core::loss::{barlow_twins_loss, combined_loss, nt_xent_loss};
use sudowoodo_datasets::em::EmProfile;
use sudowoodo_index::{CosineIndex, ShardedCosineIndex};
use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::tape::Tape;
use sudowoodo_text::serialize::serialize_record;

fn corpus() -> Vec<String> {
    EmProfile::abt_buy().generate(0.2, 7).corpus()
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    for size in [128usize, 256, 512, 1024] {
        let a = Matrix::random_normal(size, size, 1.0, &mut rng);
        let b = Matrix::random_normal(size, size, 1.0, &mut rng);
        c.bench_function(&format!("matmul_{size}x{size}"), |bench| {
            bench.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
        });
        c.bench_function(&format!("matmul_transpose_b_{size}x{size}"), |bench| {
            bench.iter(|| black_box(black_box(&a).matmul_transpose_b(black_box(&b))))
        });
        if size <= 512 {
            // The naive reference gets slow fast; keep the comparison points bounded.
            c.bench_function(&format!("matmul_naive_{size}x{size}"), |bench| {
                bench.iter(|| black_box(black_box(&a).matmul_naive(black_box(&b))))
            });
        }
    }
}

fn bench_knn_join(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let dim = 32;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let index = CosineIndex::build(corpus.clone());
    c.bench_function("knn_join_10kx10k_k20", |bench| {
        bench.iter(|| black_box(index.knn_join(black_box(&queries), 20)))
    });
    // Sharded variants: same join through fixed-capacity shards (the streaming layout).
    for capacity in [1024usize, 4096] {
        let sharded = ShardedCosineIndex::from_vectors(&corpus, capacity);
        c.bench_function(
            &format!("knn_join_sharded_cap{capacity}_10kx10k_k20"),
            |bench| bench.iter(|| black_box(sharded.knn_join(black_box(&queries), 20))),
        );
    }
    // Streaming ingestion: building the sharded index batch-by-batch.
    c.bench_function("sharded_add_batch_10k_cap1024", |bench| {
        bench.iter(|| {
            let mut sharded = ShardedCosineIndex::new(1024);
            for chunk in corpus.chunks(500) {
                sharded.add_batch(black_box(chunk));
            }
            black_box(sharded.len())
        })
    });
}

fn bench_encoder(c: &mut Criterion) {
    let texts = corpus();
    let transformer = Encoder::from_corpus(
        EncoderConfig {
            kind: EncoderKind::Transformer,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        &texts,
        1,
    );
    let meanpool = Encoder::from_corpus(
        EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        &texts,
        1,
    );
    let batch: Vec<&str> = texts.iter().take(16).map(|s| s.as_str()).collect();
    c.bench_function("encoder_forward_transformer_batch16", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            black_box(transformer.encode_batch(&mut tape, black_box(&batch), &CutoffPlan::noop()))
        })
    });
    c.bench_function("encoder_forward_meanpool_batch16", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            black_box(meanpool.encode_batch(&mut tape, black_box(&batch), &CutoffPlan::noop()))
        })
    });
    c.bench_function("encoder_forward_backward_meanpool_batch16", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let z = meanpool.encode_batch(&mut tape, black_box(&batch), &CutoffPlan::noop());
            let sq = tape.pow2(z);
            let loss = tape.mean_all(sq);
            black_box(tape.backward(loss));
        })
    });
    let batch64: Vec<&str> = texts.iter().take(64).map(|s| s.as_str()).collect();
    c.bench_function("encode_batch_meanpool_batch64", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            black_box(meanpool.encode_batch(&mut tape, black_box(&batch64), &CutoffPlan::noop()))
        })
    });
    let chunk64: Vec<String> = texts.iter().take(64).cloned().collect();
    c.bench_function("infer_chunk_meanpool_batch64", |b| {
        b.iter(|| black_box(meanpool.infer_chunk(black_box(&chunk64))))
    });
    // The PR 3 batched masked-attention paths: one padded tape graph / one tape-free
    // batched forward per 64-item chunk, vs. the retained per-sequence oracle.
    c.bench_function("encode_batch_transformer_batch64", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            black_box(transformer.encode_batch(&mut tape, black_box(&batch64), &CutoffPlan::noop()))
        })
    });
    c.bench_function("infer_chunk_transformer_batch64", |b| {
        b.iter(|| black_box(transformer.infer_chunk(black_box(&chunk64))))
    });
    c.bench_function("infer_chunk_reference_transformer_batch64", |b| {
        b.iter(|| black_box(transformer.infer_chunk_reference(black_box(&chunk64))))
    });
}

fn bench_losses(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::random_normal(32, 32, 1.0, &mut rng);
    let b = Matrix::random_normal(32, 32, 1.0, &mut rng);
    c.bench_function("nt_xent_loss_batch32_dim32", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let av = tape.constant(a.clone());
            let bv = tape.constant(b.clone());
            let loss = nt_xent_loss(&mut tape, av, bv, 0.07);
            black_box(tape.backward(loss));
        })
    });
    c.bench_function("barlow_twins_loss_batch32_dim32", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let av = tape.constant(a.clone());
            let bv = tape.constant(b.clone());
            let loss = barlow_twins_loss(&mut tape, av, bv, 3.9e-3);
            black_box(tape.backward(loss));
        })
    });
    c.bench_function("combined_loss_batch32_dim32", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let av = tape.constant(a.clone());
            let bv = tape.constant(b.clone());
            let loss = combined_loss(&mut tape, av, bv, 0.07, 3.9e-3, 1e-3);
            black_box(tape.backward(loss));
        })
    });
}

fn bench_clustering(c: &mut Criterion) {
    let texts = corpus();
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    c.bench_function("tfidf_fit_transform", |b| {
        b.iter(|| {
            let v = TfIdfVectorizer::fit(refs.iter().copied());
            black_box(v.transform_all(refs.iter().copied()))
        })
    });
    let vectorizer = TfIdfVectorizer::fit(refs.iter().copied());
    let points = vectorizer.transform_all(refs.iter().copied());
    c.bench_function("kmeans_k12", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(kmeans(
                &points,
                &KMeansConfig {
                    k: 12,
                    max_iterations: 5,
                    num_features: vectorizer.num_features(),
                },
                &mut rng,
            ))
        })
    });
    c.bench_function("clustered_batch_sampling", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let sampler = BatchSampler::new(
                &texts,
                BatchStrategy::Clustered { num_clusters: 12 },
                32,
                &mut rng,
            );
            black_box(sampler.epoch_batches(&mut rng))
        })
    });
}

fn bench_blocking(c: &mut Criterion) {
    let dataset = EmProfile::amazon_google().generate(0.2, 5);
    let mut config = SudowoodoConfig::test_config();
    config.pretrain_epochs = 1;
    config.max_corpus_size = 300;
    let texts_a: Vec<String> = dataset.table_a.iter().map(serialize_record).collect();
    let texts_b: Vec<String> = dataset.table_b.iter().map(serialize_record).collect();
    let encoder = Encoder::from_corpus(config.encoder, &dataset.corpus(), 5);
    let emb_a = encoder.embed_all(&texts_a);
    let emb_b = encoder.embed_all(&texts_b);
    c.bench_function("knn_blocking_k10", |b| {
        b.iter(|| {
            let index = CosineIndex::build(emb_b.clone());
            black_box(index.knn_join(&emb_a, 10))
        })
    });
}

fn bench_augmentation(c: &mut Criterion) {
    let texts = corpus();
    let sample = texts[0].clone();
    c.bench_function("da_operator_token_del", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            black_box(augment(black_box(&sample), DaOp::TokenDel, &mut rng))
        })
    });
    c.bench_function("cutoff_span_seq32_dim64", |b| {
        let embeddings = Matrix::full(32, 64, 1.0);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let plan = CutoffPlan::sample(CutoffKind::Span, 0.05, 64, &mut rng);
            black_box(plan.apply(black_box(&embeddings)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_encoder, bench_losses, bench_clustering, bench_blocking,
        bench_knn_join, bench_augmentation
}
criterion_main!(benches);
