//! Tables X / XII: column matching P/R/F1.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table10_12_column_matching`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table10_12_column_matching;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table10_12_column_matching(&config);
    table.print("Tables X / XII: column matching P/R/F1");
    ResultWriter::new().write(&table.id, &table);
}
