//! Table V: semi-supervised EM F1 (with ablations).
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table05_semi_supervised_em`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table05_semi_supervised;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table05_semi_supervised(&config);
    table.print("Table V: semi-supervised EM F1 (with ablations)");
    ResultWriter::new().write(&table.id, &table);
}
