//! Table VII + Figure 7: blocking recall / CSSR.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table07_fig07_blocking`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table07_fig07_blocking;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table07_fig07_blocking(&config);
    table.print("Table VII + Figure 7: blocking recall / CSSR");
    ResultWriter::new().write(&table.id, &table);
}
