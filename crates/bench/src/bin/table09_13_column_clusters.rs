//! Tables IX / XIII: discovered column clusters.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table09_13_column_clusters`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table09_13_column_clusters;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table09_13_column_clusters(&config);
    table.print("Tables IX / XIII: discovered column clusters");
    ResultWriter::new().write(&table.id, &table);
}
