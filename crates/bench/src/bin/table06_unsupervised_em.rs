//! Table VI: unsupervised EM F1.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table06_unsupervised_em`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table06_unsupervised;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table06_unsupervised(&config);
    table.print("Table VI: unsupervised EM F1");
    ResultWriter::new().write(&table.id, &table);
}
