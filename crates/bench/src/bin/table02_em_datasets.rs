//! Table II / XVII: EM dataset statistics.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table02_em_datasets`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table02_em_datasets;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table02_em_datasets(&config);
    table.print("Table II / XVII: EM dataset statistics");
    ResultWriter::new().write(&table.id, &table);
}
