//! Table XVIII: fully supervised EM F1.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table18_full_supervised_em`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table18_full_supervised;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table18_full_supervised(&config);
    table.print("Table XVIII: fully supervised EM F1");
    ResultWriter::new().write(&table.id, &table);
}
