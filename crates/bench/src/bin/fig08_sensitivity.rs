//! Figure 8: hyper-parameter sensitivity.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin fig08_sensitivity`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::fig08_sensitivity;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = fig08_sensitivity(&config);
    table.print("Figure 8: hyper-parameter sensitivity");
    ResultWriter::new().write(&table.id, &table);
}
