//! End-to-end serving benchmark: snapshot → cold load → TCP serve → sustained QPS.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin serve_bench`.
//!
//! Walks the whole persistence + serving path on the 2k-query × 10k-corpus blocking
//! fixture (the same one `perf_speedup` gates `knn_join` on):
//!
//! 1. build a sharded index with spill forced (zero residency budget) and
//!    **save a snapshot**;
//! 2. **load it cold** in the server role — O(manifest), shards stay on disk;
//! 3. serve over localhost TCP (`sudowoodo-serve`) with the query-batch cache enabled;
//! 4. measure the first (uncached — faults shards from disk) served batch, then
//!    **sustained warm-cache throughput** in queries/second over repeated batches, and
//!    the same with several concurrent client connections.
//!
//! The headline number is warm-cache queries/sec; the run prints a pass/fail line
//! against the 5k queries/sec serving target. Results are written to
//! `target/experiments/serve_bench.json`.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use sudowoodo_bench::connsweep::{self, SweepLevel};
use sudowoodo_bench::harness::print_table;
use sudowoodo_bench::ResultWriter;
use sudowoodo_coord::{Coordinator, CoordinatorConfig, LocalCluster};
use sudowoodo_core::config::{EncoderConfig, EncoderKind};
use sudowoodo_core::encoder::Encoder;
use sudowoodo_core::matcher::{FineTuneConfig, PairMatcher, TrainPair};
use sudowoodo_core::model_snapshot::{self, MatcherBackend};
use sudowoodo_core::ClusterSpec;
use sudowoodo_index::{BlockingIndex, ShardedCosineIndex};
use sudowoodo_serve::{ClientConfig, RetryPolicy, ServeClient, Server, ServerConfig};

/// Warm-cache serving target (queries/second) this benchmark reports against.
const TARGET_QPS: f64 = 5_000.0;

#[derive(Clone, Debug, Serialize)]
struct ServeRow {
    stage: String,
    seconds: f64,
    queries: usize,
    queries_per_sec: f64,
}

impl ServeRow {
    fn new(stage: impl Into<String>, seconds: f64, queries: usize) -> Self {
        ServeRow {
            stage: stage.into(),
            seconds,
            queries,
            queries_per_sec: if seconds > 0.0 {
                queries as f64 / seconds
            } else {
                0.0
            },
        }
    }
}

#[derive(Clone, Debug, Serialize)]
struct ServeReport {
    rows: Vec<ServeRow>,
    warm_cache_qps: f64,
    target_qps: f64,
    target_met: bool,
    /// Batches shed with `BUSY` during the 2x-admission-capacity overload stage
    /// (recorded alongside the stage's QPS row; never gated — shed rate is timing-
    /// dependent by construction).
    load_shed_batches: usize,
    load_shed_attempts: usize,
    /// Shape of the scatter-gather stage (`SUDOWOODO_CLUSTER` or the default
    /// `3x2x64`): processes, replication, virtual nodes. Its QPS row rides in
    /// `rows` and is never gated against `target_qps`.
    cluster: ClusterShape,
    /// Connection-count sweep: p50/p99 per-request latency with 6 → 10k idle
    /// connections parked (targets clamped by the fd rlimit; two descriptors
    /// per in-process connection). Idle connections are free under the
    /// readiness-polled workers, so latency should hold roughly flat.
    connection_sweep: Vec<SweepLevel>,
    /// The largest idle crowd actually attached during the sweep.
    peak_idle_connections: usize,
    /// Served `EMBED` throughput (texts/sec) over a cold-loaded model snapshot;
    /// ungated — model inference dominates, and its speed is a property of the
    /// encoder kernels already gated by `perf_speedup`.
    serve_embed_texts_per_sec: f64,
    /// Served `MATCH` throughput (pairs/sec) over the same model; ungated, same
    /// reasoning.
    serve_match_pairs_per_sec: f64,
    /// Wall-clock seconds of the streaming-dedup publish step (builder add_batch +
    /// delta snapshot + server hot swap); ungated, trend only.
    streaming_publish_secs: f64,
}

#[derive(Clone, Debug, Serialize)]
struct ClusterShape {
    processes: usize,
    replication: usize,
    virtual_nodes: usize,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let dim = 32;
    let k = 20;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut rows = Vec::new();

    // 1. Build (spill forced) and snapshot.
    let build_start = Instant::now();
    let built = ShardedCosineIndex::from_vectors_with_budget(&corpus, 1024, Some(0));
    rows.push(ServeRow::new(
        "build sharded index (10k x 32, cap=1024, budget=0)",
        build_start.elapsed().as_secs_f64(),
        0,
    ));
    let dir = std::env::temp_dir().join(format!("sudowoodo-serve-bench-{}", std::process::id()));
    let save_start = Instant::now();
    built.save_snapshot(&dir).expect("save snapshot");
    rows.push(ServeRow::new(
        "save snapshot",
        save_start.elapsed().as_secs_f64(),
        0,
    ));

    // 2. Cold load in the server role: manifest only.
    let load_start = Instant::now();
    let mut serving = ShardedCosineIndex::load_snapshot(&dir).expect("load snapshot");
    rows.push(ServeRow::new(
        "cold snapshot load (manifest only)",
        load_start.elapsed().as_secs_f64(),
        0,
    ));
    serving.set_query_cache_capacity(8);

    // 3. Serve over localhost.
    let server = Server::spawn(Arc::new(BlockingIndex::Sharded(serving)), "127.0.0.1:0")
        .expect("spawn server");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    // 4a. First batch: uncached, faults every non-pruned shard from the snapshot.
    let first_start = Instant::now();
    let first = client.knn_join(&queries, k).expect("first served batch");
    rows.push(ServeRow::new(
        "first served batch (cache cold, shards on disk)",
        first_start.elapsed().as_secs_f64(),
        queries.len(),
    ));
    assert_eq!(
        first,
        built.knn_join(&queries, k),
        "served results diverged from the built index"
    );

    // 4b. Sustained warm-cache throughput, single connection.
    let reps = 50;
    let warm_start = Instant::now();
    for _ in 0..reps {
        let pairs = client.knn_join(&queries, k).expect("warm served batch");
        std::hint::black_box(&pairs);
    }
    let warm_secs = warm_start.elapsed().as_secs_f64();
    let warm = ServeRow::new(
        format!("warm-cache served batches x{reps} (single connection)"),
        warm_secs,
        reps * queries.len(),
    );
    let warm_cache_qps = warm.queries_per_sec;
    rows.push(warm);

    // 4c. Concurrent clients: 4 connections streaming the same warm batch.
    let clients = 4;
    let conc_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let queries = &queries;
            let addr = server.addr();
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for _ in 0..reps / clients {
                    let pairs = client.knn_join(queries, k).expect("concurrent batch");
                    std::hint::black_box(&pairs);
                }
            });
        }
    });
    rows.push(ServeRow::new(
        format!("warm-cache served batches x{reps} ({clients} concurrent connections)"),
        conc_start.elapsed().as_secs_f64(),
        (reps / clients) * clients * queries.len(),
    ));

    // 4d. Connection-count sweep: park 6 → 10k idle connections (clamped by the
    // fd rlimit) and time a small active set's requests through the crowd. The
    // batch is tiny and warm-cached so the numbers measure the I/O path — how
    // much a parked crowd costs per request — not join compute.
    let sweep_batch = &queries[..64];
    let mut connection_sweep = Vec::new();
    for target in [6usize, 512, 5_000, 10_000] {
        let level = connsweep::sweep_level(server.addr(), sweep_batch, k, target, 2, 40);
        println!(
            "conn sweep: {} idle (target {}) + {} active: p50 {:.3} ms, p99 {:.3} ms, \
             {:.0} queries/s",
            level.idle_attached,
            level.idle_target,
            level.active_clients,
            level.p50_ms,
            level.p99_ms,
            level.queries_per_sec
        );
        rows.push(ServeRow::new(
            format!(
                "sweep: {} idle + {} active (p50 {:.2} ms, p99 {:.2} ms)",
                level.idle_attached, level.active_clients, level.p50_ms, level.p99_ms
            ),
            level.seconds,
            level.requests * level.batch,
        ));
        connection_sweep.push(level);
    }
    let peak_idle_connections = connection_sweep
        .iter()
        .map(|l| l.idle_attached)
        .max()
        .unwrap_or(0);

    let stats = client.stats().expect("stats");
    server.shutdown();

    // 5. Load shed at 2x admission capacity: a second server with a deliberately
    // tiny admission queue, hammered by twice as many clients as it admits, each
    // sending unique (cache-defeating) batches with retries off so every shed is
    // observed rather than hidden behind backoff.
    let depth = 2;
    let shed_clients = 2 * (depth + 1);
    let shed_reps = 8;
    let shed_batch = 200;
    let mut overloaded = ShardedCosineIndex::load_snapshot(&dir).expect("load snapshot");
    overloaded.set_query_cache_capacity(0);
    let shed_server = Server::spawn_with_config(
        Arc::new(BlockingIndex::Sharded(overloaded)),
        "127.0.0.1:0",
        ServerConfig {
            admission_queue_depth: depth,
            ..ServerConfig::default()
        },
    )
    .expect("spawn overload server");
    let answered = std::sync::atomic::AtomicUsize::new(0);
    let shed = std::sync::atomic::AtomicUsize::new(0);
    let shed_start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..shed_clients {
            let (answered, shed) = (&answered, &shed);
            let addr = shed_server.addr();
            scope.spawn(move || {
                let config = ClientConfig {
                    retry: RetryPolicy {
                        max_retries: 0,
                        ..RetryPolicy::default()
                    },
                    ..ClientConfig::default()
                };
                let mut client = ServeClient::connect_with_config(addr, config).expect("connect");
                let mut rng = StdRng::seed_from_u64(900 + c as u64);
                for _ in 0..shed_reps {
                    let batch: Vec<Vec<f32>> = (0..shed_batch)
                        .map(|_| (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                        .collect();
                    match client.knn_join(&batch, 20) {
                        Ok(pairs) => {
                            std::hint::black_box(&pairs);
                            answered.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(e) => panic!("overload client hit a non-BUSY error: {e}"),
                    }
                }
            });
        }
    });
    let shed_secs = shed_start.elapsed().as_secs_f64();
    shed_server.shutdown();
    let answered = answered.load(std::sync::atomic::Ordering::Relaxed);
    let load_shed_batches = shed.load(std::sync::atomic::Ordering::Relaxed);
    let load_shed_attempts = shed_clients * shed_reps;
    rows.push(ServeRow::new(
        format!(
            "load shed: {shed_clients} clients vs admission depth {depth} \
             ({load_shed_batches}/{load_shed_attempts} batches shed)"
        ),
        shed_secs,
        answered * shed_batch,
    ));

    // 6. Scatter-gather over a replicated cluster: every process cold-loads the
    // same snapshot, a coordinator places shards on the consistent-hash ring and
    // merges per-replica top-k. The distributed answer is checked bit-identical to
    // the built index before timing; the QPS row is recorded ungated.
    let spec = match std::env::var("SUDOWOODO_CLUSTER") {
        Ok(raw) => ClusterSpec::parse(&raw).expect("SUDOWOODO_CLUSTER"),
        Err(_) => ClusterSpec::default(),
    };
    let scattered = BlockingIndex::load_snapshot(&dir).expect("load snapshot");
    let cluster = LocalCluster::spawn(Arc::new(scattered), spec.processes).expect("spawn cluster");
    let mut coord = Coordinator::connect(
        &cluster.endpoints(),
        CoordinatorConfig {
            replication: spec.replication,
            virtual_nodes: spec.virtual_nodes,
            ..CoordinatorConfig::default()
        },
    )
    .expect("connect coordinator");
    assert_eq!(
        coord.knn_join(&queries, k).expect("scatter-gather batch"),
        built.knn_join(&queries, k),
        "scatter-gather results diverged from the built index"
    );
    let scatter_reps = 10;
    let scatter_start = Instant::now();
    for _ in 0..scatter_reps {
        let pairs = coord.knn_join(&queries, k).expect("scatter-gather batch");
        std::hint::black_box(&pairs);
    }
    rows.push(ServeRow::new(
        format!(
            "scatter-gather batches x{scatter_reps} ({} processes, R={}, vnodes={})",
            spec.processes, spec.replication, spec.virtual_nodes
        ),
        scatter_start.elapsed().as_secs_f64(),
        scatter_reps * queries.len(),
    ));
    drop(coord);
    drop(cluster);

    // 7. Multi-task serving: a trained matcher travels through a model snapshot
    // (train once, serve cold — like the index), and the server answers `EMBED` and
    // `MATCH` alongside `KNN`. Both answers are verified bit-identical to the
    // in-process model before timing; the throughput rows are never gated.
    let texts: Vec<String> = (0..1_000)
        .map(|i| {
            format!(
                "[COL] title [VAL] canon pixma printer sku{i} mdl{} [COL] price [VAL] {}",
                (i * 7) % 5_000,
                i % 97
            )
        })
        .collect();
    let encoder = Encoder::from_corpus(
        EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        &texts,
        19,
    );
    let mut matcher = PairMatcher::new(encoder, true, 19);
    let train: Vec<TrainPair> = (0..32)
        .map(|i| TrainPair::new(texts[i].clone(), texts[(i + 5) % 64].clone(), i % 2 == 0))
        .collect();
    matcher.fine_tune(
        &train,
        &FineTuneConfig {
            epochs: 1,
            batch_size: 8,
            learning_rate: 1e-3,
            seed: 19,
        },
    );
    let model_path = dir.join(model_snapshot::MODEL_SNAPSHOT_FILE);
    let model_snapshot_start = Instant::now();
    model_snapshot::save_matcher(&matcher, &model_path).expect("save model snapshot");
    let cold_model = model_snapshot::load_matcher(&model_path).expect("load model snapshot");
    rows.push(ServeRow::new(
        "model snapshot save + cold load",
        model_snapshot_start.elapsed().as_secs_f64(),
        0,
    ));

    let model_index = BlockingIndex::load_snapshot(&dir).expect("load snapshot");
    let model_server = Server::spawn_with_model(
        Arc::new(model_index),
        Arc::new(MatcherBackend(cold_model)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("spawn model server");
    let mut model_client = ServeClient::connect(model_server.addr()).expect("connect");

    let served_embed = model_client.embed(&texts).expect("served embed");
    let expected_embed = matcher.encoder.embed_all(&texts);
    assert!(
        served_embed
            .iter()
            .flatten()
            .map(|x| x.to_bits())
            .eq(expected_embed.iter().flatten().map(|x| x.to_bits())),
        "served embeddings diverged from the in-process model"
    );
    let embed_reps = 5;
    let embed_start = Instant::now();
    for _ in 0..embed_reps {
        let vecs = model_client.embed(&texts).expect("served embed");
        std::hint::black_box(&vecs);
    }
    let embed_row = ServeRow::new(
        format!("served EMBED x{embed_reps} (1k texts, MeanPool d=32)"),
        embed_start.elapsed().as_secs_f64(),
        embed_reps * texts.len(),
    );
    let serve_embed_texts_per_sec = embed_row.queries_per_sec;
    rows.push(embed_row);

    let pairs: Vec<(String, String)> = (0..256)
        .map(|i| (texts[i].clone(), texts[(i + 13) % 512].clone()))
        .collect();
    let served_scores = model_client.match_pairs(&pairs).expect("served match");
    assert!(
        served_scores
            .iter()
            .map(|x| x.to_bits())
            .eq(matcher.predict_scores(&pairs).iter().map(|x| x.to_bits())),
        "served match scores diverged from the in-process model"
    );
    let match_reps = 5;
    let match_start = Instant::now();
    for _ in 0..match_reps {
        let scores = model_client.match_pairs(&pairs).expect("served match");
        std::hint::black_box(&scores);
    }
    let match_row = ServeRow::new(
        format!("served MATCH x{match_reps} (256 pairs, MeanPool d=32)"),
        match_start.elapsed().as_secs_f64(),
        match_reps * pairs.len(),
    );
    let serve_match_pairs_per_sec = match_row.queries_per_sec;
    rows.push(match_row);

    // 8. Streaming dedup: warm a cached batch, append new records in the builder
    // role, publish a `SWDELTA1` delta, hot-swap it in, and measure the publish
    // plus the first post-publish batch (which must see the new epoch).
    let probe = &queries[..256];
    let before = model_client.knn_join(probe, k).expect("pre-delta batch");
    let stream_start = Instant::now();
    let delta_dir = std::env::temp_dir().join(format!(
        "sudowoodo-serve-bench-delta-{}",
        std::process::id()
    ));
    let mut builder = ShardedCosineIndex::load_snapshot(&dir).expect("load base");
    builder.add_batch(probe);
    builder
        .save_delta_snapshot(&dir, &delta_dir)
        .expect("save delta");
    let next = ShardedCosineIndex::load_snapshot(&delta_dir).expect("load delta");
    model_server.publish_index(Arc::new(BlockingIndex::Sharded(next)));
    let streaming_publish_secs = stream_start.elapsed().as_secs_f64();
    let post_start = Instant::now();
    let after = model_client.knn_join(probe, k).expect("post-delta batch");
    assert_ne!(before, after, "the delta epoch must be visible to queries");
    rows.push(ServeRow::new(
        format!(
            "streaming dedup: delta publish {streaming_publish_secs:.4}s + first \
             post-publish batch"
        ),
        post_start.elapsed().as_secs_f64(),
        probe.len(),
    ));
    model_server.shutdown();
    let _ = std::fs::remove_dir_all(&delta_dir);

    let _ = std::fs::remove_dir_all(&dir);

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stage.clone(),
                format!("{:.4}", r.seconds),
                if r.queries > 0 {
                    format!("{}", r.queries)
                } else {
                    "-".into()
                },
                if r.queries > 0 {
                    format!("{:.0}", r.queries_per_sec)
                } else {
                    "-".into()
                },
            ]
        })
        .collect();
    print_table(
        "Snapshot + serving benchmark (2k queries x 10k corpus)",
        &["stage", "seconds", "queries", "queries/s"],
        &printable,
    );
    println!(
        "server stats: {} requests served, {} coalesced joins, cache {}/{} hits/misses",
        stats.served_requests, stats.batched_joins, stats.cache_hits, stats.cache_misses
    );

    let target_met = warm_cache_qps >= TARGET_QPS;
    println!(
        "warm-cache throughput: {warm_cache_qps:.0} queries/sec — target {TARGET_QPS:.0}: {}",
        if target_met { "MET" } else { "NOT MET" }
    );
    println!(
        "multi-task serving: EMBED {serve_embed_texts_per_sec:.0} texts/sec, MATCH \
         {serve_match_pairs_per_sec:.0} pairs/sec, streaming delta publish \
         {streaming_publish_secs:.4}s (ungated; trend only)"
    );

    ResultWriter::new().write(
        "serve_bench",
        &ServeReport {
            rows,
            warm_cache_qps,
            target_qps: TARGET_QPS,
            target_met,
            load_shed_batches,
            load_shed_attempts,
            cluster: ClusterShape {
                processes: spec.processes,
                replication: spec.replication,
                virtual_nodes: spec.virtual_nodes,
            },
            connection_sweep,
            peak_idle_connections,
            serve_embed_texts_per_sec,
            serve_match_pairs_per_sec,
            streaming_publish_secs,
        },
    );
}
