//! End-to-end serving benchmark: snapshot → cold load → TCP serve → sustained QPS.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin serve_bench`.
//!
//! Walks the whole persistence + serving path on the 2k-query × 10k-corpus blocking
//! fixture (the same one `perf_speedup` gates `knn_join` on):
//!
//! 1. build a sharded index with spill forced (zero residency budget) and
//!    **save a snapshot**;
//! 2. **load it cold** in the server role — O(manifest), shards stay on disk;
//! 3. serve over localhost TCP (`sudowoodo-serve`) with the query-batch cache enabled;
//! 4. measure the first (uncached — faults shards from disk) served batch, then
//!    **sustained warm-cache throughput** in queries/second over repeated batches, and
//!    the same with several concurrent client connections.
//!
//! The headline number is warm-cache queries/sec; the run prints a pass/fail line
//! against the 5k queries/sec serving target. Results are written to
//! `target/experiments/serve_bench.json`.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use sudowoodo_bench::harness::print_table;
use sudowoodo_bench::ResultWriter;
use sudowoodo_index::{BlockingIndex, ShardedCosineIndex};
use sudowoodo_serve::{ServeClient, Server};

/// Warm-cache serving target (queries/second) this benchmark reports against.
const TARGET_QPS: f64 = 5_000.0;

#[derive(Clone, Debug, Serialize)]
struct ServeRow {
    stage: String,
    seconds: f64,
    queries: usize,
    queries_per_sec: f64,
}

impl ServeRow {
    fn new(stage: impl Into<String>, seconds: f64, queries: usize) -> Self {
        ServeRow {
            stage: stage.into(),
            seconds,
            queries,
            queries_per_sec: if seconds > 0.0 {
                queries as f64 / seconds
            } else {
                0.0
            },
        }
    }
}

#[derive(Clone, Debug, Serialize)]
struct ServeReport {
    rows: Vec<ServeRow>,
    warm_cache_qps: f64,
    target_qps: f64,
    target_met: bool,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let dim = 32;
    let k = 20;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut rows = Vec::new();

    // 1. Build (spill forced) and snapshot.
    let build_start = Instant::now();
    let built = ShardedCosineIndex::from_vectors_with_budget(&corpus, 1024, Some(0));
    rows.push(ServeRow::new(
        "build sharded index (10k x 32, cap=1024, budget=0)",
        build_start.elapsed().as_secs_f64(),
        0,
    ));
    let dir = std::env::temp_dir().join(format!("sudowoodo-serve-bench-{}", std::process::id()));
    let save_start = Instant::now();
    built.save_snapshot(&dir).expect("save snapshot");
    rows.push(ServeRow::new(
        "save snapshot",
        save_start.elapsed().as_secs_f64(),
        0,
    ));

    // 2. Cold load in the server role: manifest only.
    let load_start = Instant::now();
    let mut serving = ShardedCosineIndex::load_snapshot(&dir).expect("load snapshot");
    rows.push(ServeRow::new(
        "cold snapshot load (manifest only)",
        load_start.elapsed().as_secs_f64(),
        0,
    ));
    serving.set_query_cache_capacity(8);

    // 3. Serve over localhost.
    let server = Server::spawn(Arc::new(BlockingIndex::Sharded(serving)), "127.0.0.1:0")
        .expect("spawn server");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    // 4a. First batch: uncached, faults every non-pruned shard from the snapshot.
    let first_start = Instant::now();
    let first = client.knn_join(&queries, k).expect("first served batch");
    rows.push(ServeRow::new(
        "first served batch (cache cold, shards on disk)",
        first_start.elapsed().as_secs_f64(),
        queries.len(),
    ));
    assert_eq!(
        first,
        built.knn_join(&queries, k),
        "served results diverged from the built index"
    );

    // 4b. Sustained warm-cache throughput, single connection.
    let reps = 50;
    let warm_start = Instant::now();
    for _ in 0..reps {
        let pairs = client.knn_join(&queries, k).expect("warm served batch");
        std::hint::black_box(&pairs);
    }
    let warm_secs = warm_start.elapsed().as_secs_f64();
    let warm = ServeRow::new(
        format!("warm-cache served batches x{reps} (single connection)"),
        warm_secs,
        reps * queries.len(),
    );
    let warm_cache_qps = warm.queries_per_sec;
    rows.push(warm);

    // 4c. Concurrent clients: 4 connections streaming the same warm batch.
    let clients = 4;
    let conc_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let queries = &queries;
            let addr = server.addr();
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for _ in 0..reps / clients {
                    let pairs = client.knn_join(queries, k).expect("concurrent batch");
                    std::hint::black_box(&pairs);
                }
            });
        }
    });
    rows.push(ServeRow::new(
        format!("warm-cache served batches x{reps} ({clients} concurrent connections)"),
        conc_start.elapsed().as_secs_f64(),
        (reps / clients) * clients * queries.len(),
    ));

    let stats = client.stats().expect("stats");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stage.clone(),
                format!("{:.4}", r.seconds),
                if r.queries > 0 {
                    format!("{}", r.queries)
                } else {
                    "-".into()
                },
                if r.queries > 0 {
                    format!("{:.0}", r.queries_per_sec)
                } else {
                    "-".into()
                },
            ]
        })
        .collect();
    print_table(
        "Snapshot + serving benchmark (2k queries x 10k corpus)",
        &["stage", "seconds", "queries", "queries/s"],
        &printable,
    );
    println!(
        "server stats: {} requests served, {} coalesced joins, cache {}/{} hits/misses",
        stats.served_requests, stats.batched_joins, stats.cache_hits, stats.cache_misses
    );

    let target_met = warm_cache_qps >= TARGET_QPS;
    println!(
        "warm-cache throughput: {warm_cache_qps:.0} queries/sec — target {TARGET_QPS:.0}: {}",
        if target_met { "MET" } else { "NOT MET" }
    );

    ResultWriter::new().write(
        "serve_bench",
        &ServeReport {
            rows,
            warm_cache_qps,
            target_qps: TARGET_QPS,
            target_met,
        },
    );
}
