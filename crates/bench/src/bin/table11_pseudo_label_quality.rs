//! Table XI: pseudo-label TPR/TNR.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table11_pseudo_label_quality`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table11_pseudo_quality;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table11_pseudo_quality(&config);
    table.print("Table XI: pseudo-label TPR/TNR");
    ResultWriter::new().write(&table.id, &table);
}
