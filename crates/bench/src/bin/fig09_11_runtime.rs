//! Figures 9-11: running time.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin fig09_11_runtime`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::fig09_11_runtime;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = fig09_11_runtime(&config);
    table.print("Figures 9-11: running time");
    ResultWriter::new().write(&table.id, &table);
}
