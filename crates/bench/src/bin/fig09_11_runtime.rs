//! Figures 9-11: running time, plus hot-path throughput tracking.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin fig09_11_runtime`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.
//!
//! Besides the paper's runtime table, this binary measures the primitives that dominate
//! end-to-end time — batched encoding (`embed_all`, records/sec) and the GEMM-tiled
//! blocking join (`knn_join`, pairs/sec) in the dense layout, the streaming sharded
//! layout, and the sharded layout with every shard spilled to disk under a zero
//! residency budget — and writes them to `target/experiments/fig09_11_throughput.json`
//! so successive benchmark logs track the performance trajectory.

use sudowoodo_bench::experiments::fig09_11_runtime;
use sudowoodo_bench::harness::{StageThroughput, Throughput};
use sudowoodo_bench::{HarnessConfig, ResultWriter};
use sudowoodo_core::encoder::Encoder;
use sudowoodo_datasets::em::EmProfile;
use sudowoodo_index::{CosineIndex, ShardedCosineIndex};
use sudowoodo_text::serialize::serialize_record;

/// Shard capacity of the streaming-join throughput stage (comfortably above the 256-row
/// query tile so each shard is still one big GEMM block).
const SHARD_CAPACITY: usize = 1024;

fn hot_path_throughput(config: &HarnessConfig) -> Vec<StageThroughput> {
    let dataset = EmProfile::abt_buy().generate(config.scale.max(0.2), config.seed);
    let texts_a: Vec<String> = dataset.table_a.iter().map(serialize_record).collect();
    let texts_b: Vec<String> = dataset.table_b.iter().map(serialize_record).collect();
    let encoder = Encoder::from_corpus(
        config.sudowoodo_config().encoder,
        &dataset.corpus(),
        config.seed,
    );

    let (emb_a, embed_a_t) = Throughput::measure(texts_a.len(), 0, || encoder.embed_all(&texts_a));
    let (emb_b, _) = Throughput::measure(texts_b.len(), 0, || encoder.embed_all(&texts_b));

    // The same corpus through the Transformer arm: since PR 3 this runs the batched
    // masked-attention path (padded row-blocks, fused score tiles), so its throughput is
    // tracked next to the MeanPool encoder instead of being an untimed fallback.
    let mut transformer_config = config.sudowoodo_config().encoder;
    transformer_config.kind = sudowoodo_core::EncoderKind::Transformer;
    let transformer = Encoder::from_corpus(transformer_config, &dataset.corpus(), config.seed);
    let (_, embed_tr_t) = Throughput::measure(texts_a.len(), 0, || transformer.embed_all(&texts_a));

    let k = 10;
    let index = CosineIndex::build(emb_b.clone());
    let scored_pairs = emb_a.len() * index.len();
    let (_, join_t) = Throughput::measure(emb_a.len(), scored_pairs, || index.knn_join(&emb_a, k));

    // The same join through the streaming sharded layout (ingestion included, since that
    // is what a streaming deployment pays per refresh).
    let (_, sharded_t) = Throughput::measure(emb_a.len(), scored_pairs, || {
        let sharded = ShardedCosineIndex::from_vectors(&emb_b, SHARD_CAPACITY);
        sharded.knn_join(&emb_a, k)
    });

    // And with the storage layer engaged: a zero residency budget spills every shard to
    // disk, so the join pays spill + fault I/O for each shard the routing statistics
    // cannot prune — the cost profile of a corpus that outgrows RAM.
    let (_, spilled_t) = Throughput::measure(emb_a.len(), scored_pairs, || {
        let spilled = ShardedCosineIndex::from_vectors_with_budget(&emb_b, SHARD_CAPACITY, Some(0));
        spilled.knn_join(&emb_a, k)
    });

    vec![
        StageThroughput {
            stage: "embed_all".into(),
            workload: dataset.name.clone(),
            throughput: embed_a_t,
        },
        StageThroughput {
            stage: "embed_all_transformer".into(),
            workload: dataset.name.clone(),
            throughput: embed_tr_t,
        },
        StageThroughput {
            stage: "knn_join".into(),
            workload: format!("{} k={k}", dataset.name),
            throughput: join_t,
        },
        StageThroughput {
            stage: "knn_join_sharded".into(),
            workload: format!("{} k={k} cap={SHARD_CAPACITY}", dataset.name),
            throughput: sharded_t,
        },
        StageThroughput {
            stage: "knn_join_sharded_spilled".into(),
            workload: format!(
                "{} k={k} cap={SHARD_CAPACITY} budget=0 (routed)",
                dataset.name
            ),
            throughput: spilled_t,
        },
    ]
}

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = fig09_11_runtime(&config);
    table.print("Figures 9-11: running time");
    let writer = ResultWriter::new();
    writer.write(&table.id, &table);

    let stages = hot_path_throughput(&config);
    for s in &stages {
        println!(
            "throughput {:<10} [{}]: {:.1} records/s, {:.0} pairs/s ({:.3}s)",
            s.stage,
            s.workload,
            s.throughput.records_per_sec,
            s.throughput.pairs_per_sec,
            s.throughput.seconds
        );
    }
    writer.write("fig09_11_throughput", &stages);
}
