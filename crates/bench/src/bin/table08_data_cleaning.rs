//! Table VIII: error-correction F1.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table08_data_cleaning`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table08_cleaning;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table08_cleaning(&config);
    table.print("Table VIII: error-correction F1");
    ResultWriter::new().write(&table.id, &table);
}
