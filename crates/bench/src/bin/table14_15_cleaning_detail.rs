//! Tables XIV / XV: candidate stats + cleaning ablation.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table14_15_cleaning_detail`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table14_15_cleaning_detail;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table14_15_cleaning_detail(&config);
    table.print("Tables XIV / XV: candidate stats + cleaning ablation");
    ResultWriter::new().write(&table.id, &table);
}
