//! Table XVI: difficulty-level analysis.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin table16_difficulty`.
//! Environment: `SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`, `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`.

use sudowoodo_bench::experiments::table16_difficulty;
use sudowoodo_bench::{HarnessConfig, ResultWriter};

fn main() {
    let config = HarnessConfig::from_env();
    println!("harness config: {config:?}");
    let table = table16_difficulty(&config);
    table.print("Table XVI: difficulty-level analysis");
    ResultWriter::new().write(&table.id, &table);
}
