//! Kernel/batching speedup report: new hot path vs. the naive seed kernels.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin perf_speedup`.
//!
//! Measures, on this machine:
//!
//! * square `matmul` 128–1024: blocked/SIMD kernel vs. the naive reference triple loop
//!   ([`Matrix::matmul_naive`]);
//! * `embed_all` over 4k records, for **both** encoder architectures: the batched,
//!   tape-free, rayon-chunked inference path vs. the seed's per-row tape graphs
//!   (reconstructed via `encode_text` + `stack_rows` per 64-item chunk, which is exactly
//!   what the seed's `embed_all` executed);
//! * the Transformer batched-masked-attention tentpole in isolation: `infer_chunk` vs.
//!   the frozen per-sequence inference oracle (`infer_chunk_reference`) and the batched
//!   `encode_batch` tape graph vs. one per-row graph per text;
//! * `knn_join`: the GEMM-tiled join vs. a per-query scalar scan without kernels — in
//!   the dense layout, the sharded layout (routing on and off), the sharded layout
//!   with every shard spilled to disk under a zero residency budget (routed + spilled),
//!   and the i8-quantized two-stage scan (resident and spilled; throughput ungated,
//!   with a **gated** 3.5x memory-density floor on the scan payload format);
//! * the persistence/serving subsystem: cold `ShardedCosineIndex::load_snapshot` (reads
//!   only the manifest) vs. rebuilding the same index from raw vectors, and a warm
//!   query-cache `knn_join` served over localhost TCP (`sudowoodo-serve`) vs. computing
//!   the same batch directly on the cold snapshot-loaded index.
//!
//! Writes `target/experiments/perf_speedup.json` (the raw rows, as always) and
//! `target/experiments/BENCH_perf.json` — the machine-readable report CI uploads as a
//! workflow artifact. `BENCH_perf.json` carries per-stage speedups *and* throughput
//! (records/pairs per second), plus a **regression gate**: every tracked kernel has a
//! conservative floor (~0.7x of the speedups recorded in ROADMAP.md, rounded down to
//! absorb runner variance) and a row dropping below its floor sets
//! `"regression": true` / `"any_regression": true`, which the CI gate step turns into
//! a failed job. The binary itself always exits 0 so the artifact is uploaded even
//! when the gate trips.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use sudowoodo_augment::CutoffPlan;
use sudowoodo_bench::harness::print_table;
use sudowoodo_bench::ResultWriter;
use sudowoodo_core::config::{EncoderConfig, EncoderKind};
use sudowoodo_core::encoder::Encoder;
use sudowoodo_index::{CosineIndex, QuantSpec, ShardedCosineIndex};
use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::tape::Tape;

#[derive(Clone, Debug, Serialize)]
struct SpeedupRow {
    case: String,
    naive_secs: f64,
    fast_secs: f64,
    speedup: f64,
    /// Records the fast path processes per run (0 when the case has no record notion).
    records: usize,
    /// Candidate/similarity pairs the fast path scores per run (0 when n/a).
    pairs: usize,
    /// `records / fast_secs` (0 when no records).
    records_per_sec: f64,
    /// `pairs / fast_secs` (0 when no pairs).
    pairs_per_sec: f64,
}

impl SpeedupRow {
    fn new(case: String, naive_secs: f64, fast_secs: f64, records: usize, pairs: usize) -> Self {
        let rate = |count: usize| {
            if fast_secs > 0.0 {
                count as f64 / fast_secs
            } else {
                0.0
            }
        };
        SpeedupRow {
            case,
            naive_secs,
            fast_secs,
            speedup: naive_secs / fast_secs,
            records,
            pairs,
            records_per_sec: rate(records),
            pairs_per_sec: rate(pairs),
        }
    }
}

/// Tracked kernels and their speedup floors: ~0.7x of the values recorded in
/// ROADMAP.md (measured on the 1-core CI/dev box), rounded down to absorb runner
/// variance. A tracked row falling below its floor marks the report as a regression,
/// which fails the CI gate step. Matching is by case-name prefix so fixture-size
/// suffixes can evolve without silently dropping a kernel from the gate.
const SPEEDUP_FLOORS: &[(&str, f64)] = &[
    // ROADMAP: ~6.3x on 512x512 matmul.
    ("matmul 512x512", 4.0),
    // ROADMAP: ~72x MeanPool embed_all vs the seed's per-row tape graphs.
    ("embed_all 4k records (MeanPool", 45.0),
    // ROADMAP: ~10x Transformer embed_all (this box measures ~7.8x; floor set below
    // both).
    ("embed_all 4k records (Transformer", 5.0),
    // ROADMAP: ~8.8x batched Transformer encode_batch graphs (~5.6x on this box).
    ("encode_batch tape graphs 4k records", 4.0),
    // ROADMAP: ~5.4x forward+backward (~4.6x on this box).
    ("encode_batch fwd+bwd 4k records", 3.0),
    // ROADMAP: ~17x on 2k x 10k joins.
    ("knn_join 2k queries x 10k corpus", 10.0),
    // The sharded layout must stay within striking distance of dense (~15.7x vs the
    // scalar scan on this fixture with routing on).
    ("knn_join sharded cap=1024 (", 7.0),
    // Routed + spilled: every visited shard faulted from disk per query tile; still
    // far above the scalar scan, and the floor guards the fault path from quietly
    // degrading.
    ("knn_join sharded spilled+routed", 2.0),
    // Cold snapshot loads read only the manifest (O(shards)), so they beat rebuilding
    // the index from raw vectors (normalize + copy + routing stats over the whole
    // corpus) by a wide margin; the conservative floor guards O(manifest)-ness. The
    // load also verifies the manifest CRC-32 and every payload's on-disk length
    // (crash consistency), which costs a few syscalls on a sub-millisecond
    // measurement — hence a floor with slack below the ~3x this box measures.
    ("snapshot load 10k corpus", 2.0),
    // A warm-cache served batch is one fingerprint lookup plus one localhost round
    // trip; the baseline recomputes the batch on the cold snapshot-loaded index.
    ("served knn_join warm cache", 2.0),
];

/// One tracked kernel's gate outcome inside `BENCH_perf.json`.
#[derive(Clone, Debug, Serialize)]
struct GateRow {
    case: String,
    floor: f64,
    speedup: f64,
    regression: bool,
}

/// The **gated** memory-density measurement of the quantized tier: payload bytes the
/// candidate scan touches per row, dense f32 (`4·dim`) vs i8 codes + per-row scale
/// (`dim + 4`). The ratio is a format property, not a timing, so unlike the speedup
/// floors it is immune to runner variance — the floor of 3.5x trips only if the
/// format itself regresses (padding creep, widened scales, codes stored wider).
#[derive(Clone, Debug, Serialize)]
struct MemoryDensityRow {
    case: String,
    dense_payload_bytes: usize,
    quantized_scan_bytes: usize,
    density: f64,
    floor: f64,
    regression: bool,
}

/// The served load-shed measurement: clients at 2x the admission capacity, unique
/// (cache-defeating) batches. Recorded for trend-watching only — shed rate depends on
/// runner timing, so this row is intentionally NOT in [`SPEEDUP_FLOORS`] and never
/// gates.
#[derive(Clone, Debug, Serialize)]
struct LoadShedRow {
    case: String,
    clients: usize,
    admission_queue_depth: usize,
    attempts: usize,
    answered: usize,
    shed: usize,
    shed_rate: f64,
    seconds: f64,
    answered_queries_per_sec: f64,
}

/// The distributed scatter-gather measurement: a coordinator fanning one query batch
/// out across a replicated serving cluster (`sudowoodo-coord`) and merging per-replica
/// top-k, verified bit-identical to the single-server answer before timing. Recorded
/// for trend-watching only — scatter-gather pays per-process round trips that depend
/// on runner scheduling, so this row is intentionally NOT in [`SPEEDUP_FLOORS`] and
/// never gates (it must not flip `any_regression` while the baseline is established).
#[derive(Clone, Debug, Serialize)]
struct ScatterGatherRow {
    case: String,
    processes: usize,
    replication: usize,
    virtual_nodes: usize,
    shards: usize,
    seconds: f64,
    queries: usize,
    queries_per_sec: f64,
}

/// A served model request path (`EMBED` or `MATCH`) over a cold-loaded model
/// snapshot, verified bit-identical to the in-process model before timing.
/// Recorded for trend-watching only — model inference dominates the round trip and
/// its kernels are already gated by the `embed_all`/`matmul` floors, so these rows
/// are intentionally NOT in [`SPEEDUP_FLOORS`] and never gate (they must not flip
/// `any_regression` while the baseline is established).
#[derive(Clone, Debug, Serialize)]
struct ModelServeRow {
    case: String,
    seconds: f64,
    items: usize,
    items_per_sec: f64,
}

/// The connection-scaling gate over the sweep rows. Latency is runner-dependent
/// and never floored; what IS gated is structural: the sweep must actually hold
/// its (rlimit-clamped) connection target — at least 5k on any box with fds to
/// spare — with finite, positive p50/p99 reported at that scale. A server that
/// regressed to per-connection threads or wedged under a parked crowd fails
/// this long before any latency floor would trip.
#[derive(Clone, Debug, Serialize)]
struct ConnectionGate {
    /// Connections the gate demands (5k clamped by the box's fd rlimit).
    required_connections: usize,
    /// Connections the sweep's largest level actually attached.
    attached_connections: usize,
    /// p50 at the largest attached level, milliseconds.
    p50_ms: f64,
    /// p99 at the largest attached level, milliseconds.
    p99_ms: f64,
    regression: bool,
}

/// The full machine-readable perf report (`target/experiments/BENCH_perf.json`).
#[derive(Clone, Debug, Serialize)]
struct PerfReport {
    rows: Vec<SpeedupRow>,
    gate: Vec<GateRow>,
    any_regression: bool,
    quantized_memory_density: MemoryDensityRow,
    serve_load_shed: LoadShedRow,
    scatter_gather: ScatterGatherRow,
    serve_embed: ModelServeRow,
    serve_match: ModelServeRow,
    serve_connection_sweep: Vec<sudowoodo_bench::connsweep::SweepLevel>,
    connection_gate: ConnectionGate,
}

fn build_gate(rows: &[SpeedupRow]) -> (Vec<GateRow>, bool) {
    let mut gate = Vec::with_capacity(SPEEDUP_FLOORS.len());
    let mut any_regression = false;
    for &(prefix, floor) in SPEEDUP_FLOORS {
        let row = rows
            .iter()
            .find(|r| r.case.starts_with(prefix))
            .unwrap_or_else(|| panic!("gate: no speedup row matches tracked prefix {prefix:?}"));
        // An incomparable (NaN) speedup counts as a regression too.
        let regression = !matches!(
            row.speedup.partial_cmp(&floor),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        );
        any_regression |= regression;
        gate.push(GateRow {
            case: row.case.clone(),
            floor,
            speedup: row.speedup,
            regression,
        });
    }
    (gate, any_regression)
}

fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    // One warmup rep, then the best of `reps` (stable against scheduler noise).
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn matmul_rows(rows: &mut Vec<SpeedupRow>) {
    let mut rng = StdRng::seed_from_u64(1);
    for size in [128usize, 256, 512, 1024] {
        let a = Matrix::random_normal(size, size, 1.0, &mut rng);
        let b = Matrix::random_normal(size, size, 1.0, &mut rng);
        let reps = if size >= 512 { 3 } else { 5 };
        let naive = time(reps, || a.matmul_naive(&b));
        let fast = time(reps, || a.matmul(&b));
        rows.push(SpeedupRow::new(
            format!("matmul {size}x{size}"),
            naive,
            fast,
            0,
            size * size, // output cells per product
        ));
    }
}

/// The seed's `embed_all`: chunks of 64, one tape per chunk, one *per-row* graph per text
/// (`encode_text`), stacked. Reconstructed here as the baseline.
fn embed_all_seed_style(encoder: &Encoder, texts: &[String]) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(texts.len());
    for chunk in texts.chunks(64) {
        let mut tape = Tape::new();
        let noop = CutoffPlan::noop();
        let rows: Vec<_> = chunk
            .iter()
            .map(|t| encoder.encode_text(&mut tape, t, &noop))
            .collect();
        let batch = tape.stack_rows(&rows);
        let values = tape.value(batch);
        for r in 0..values.rows() {
            out.push(values.row(r).to_vec());
        }
    }
    out
}

fn perf_corpus() -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(2);
    let words = [
        "canon",
        "ink",
        "printer",
        "paper",
        "query",
        "deluxe",
        "cyan",
        "tank",
        "survey",
        "transformer",
        "optimizer",
        "cartridge",
        "model",
        "price",
        "venue",
    ];
    // Each record carries a few unique alphanumeric codes (sku / model / reference)
    // besides the shared title words — product corpora are identifier-heavy, and the
    // resulting ~12k-token vocabulary is what the embedding table actually looks like at
    // this corpus size (the paper's EM corpora are capped at 10k records).
    (0..4_000)
        .map(|i| {
            let picks: Vec<&str> = (0..10)
                .map(|_| words[rng.gen_range(0..words.len())])
                .collect();
            format!(
                "[COL] title [VAL] {} sku{i} mdl{} [COL] price [VAL] {} ref{}",
                picks.join(" "),
                (i * 7) % 50_000,
                i % 97,
                (i * 13) % 60_000,
            )
        })
        .collect()
}

fn embed_rows(rows: &mut Vec<SpeedupRow>) {
    let corpus = perf_corpus();
    for kind in [EncoderKind::MeanPool, EncoderKind::Transformer] {
        let config = EncoderConfig {
            kind,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        };
        let encoder = Encoder::from_corpus(config, &corpus, 7);

        let naive = time(2, || embed_all_seed_style(&encoder, &corpus));
        let fast = time(2, || encoder.embed_all(&corpus));
        rows.push(SpeedupRow::new(
            format!("embed_all 4k records ({kind:?} d=32) vs seed per-row tape"),
            naive,
            fast,
            corpus.len(),
            0,
        ));

        // Sanity: both paths agree numerically (cosine of matched rows ~ 1).
        let a = embed_all_seed_style(&encoder, &corpus[..64]);
        let b = encoder.embed_all(&corpus[..64]);
        for (x, y) in a.iter().zip(b.iter()) {
            let cos = Matrix::cosine(x, y);
            assert!(cos > 1.0 - 1e-4, "embedding paths diverged: cosine {cos}");
        }
    }
}

/// Batched masked attention vs. the retained per-sequence oracle, both tape-free and on
/// the tape (the PR-3 tentpole). The oracle (`infer_chunk_reference`, per-row
/// `encode_text` graphs) is frozen, exactly like `matmul_naive` for the kernels.
fn transformer_batching_rows(rows: &mut Vec<SpeedupRow>) {
    let corpus = perf_corpus();
    let config = EncoderConfig {
        kind: EncoderKind::Transformer,
        dim: 32,
        layers: 1,
        heads: 2,
        ff_hidden: 64,
        max_len: 32,
    };
    let encoder = Encoder::from_corpus(config, &corpus, 7);

    // Tape-free inference: padded batched masked attention vs the per-sequence loop.
    let naive = time(2, || {
        corpus
            .chunks(64)
            .map(|chunk| encoder.infer_chunk_reference(chunk).rows())
            .sum::<usize>()
    });
    let fast = time(2, || {
        corpus
            .chunks(64)
            .map(|chunk| encoder.infer_chunk(chunk).rows())
            .sum::<usize>()
    });
    rows.push(SpeedupRow::new(
        "infer_chunk 4k records (Transformer) vs per-sequence oracle".into(),
        naive,
        fast,
        corpus.len(),
        0,
    ));

    // Training path: one batched tape graph per chunk vs one per-row graph per text.
    let noop = CutoffPlan::noop();
    let naive_tape = time(2, || {
        let mut nodes = 0usize;
        for chunk in corpus.chunks(64) {
            let mut tape = Tape::new();
            let tape_rows: Vec<_> = chunk
                .iter()
                .map(|t| encoder.encode_text(&mut tape, t, &noop))
                .collect();
            let batch = tape.stack_rows(&tape_rows);
            nodes += tape.value(batch).rows();
        }
        nodes
    });
    let fast_tape = time(2, || {
        let mut nodes = 0usize;
        for chunk in corpus.chunks(64) {
            let mut tape = Tape::new();
            let refs: Vec<&str> = chunk.iter().map(|s| s.as_str()).collect();
            let batch = encoder.encode_batch(&mut tape, &refs, &noop);
            nodes += tape.value(batch).rows();
        }
        nodes
    });
    rows.push(SpeedupRow::new(
        "encode_batch tape graphs 4k records (Transformer) vs per-row graphs".into(),
        naive_tape,
        fast_tape,
        corpus.len(),
        0,
    ));

    // What pre-training actually executes per step: forward AND backward. The per-row
    // graphs pay their per-sequence toll twice over here — every row's embedding gather
    // scatter-adds into its own full-vocabulary gradient buffer, while the batched graph
    // allocates one per chunk.
    let naive_step = time(2, || {
        let mut total = 0.0f32;
        for chunk in corpus.chunks(64) {
            let mut tape = Tape::new();
            let tape_rows: Vec<_> = chunk
                .iter()
                .map(|t| encoder.encode_text(&mut tape, t, &noop))
                .collect();
            let batch = tape.stack_rows(&tape_rows);
            let sq = tape.pow2(batch);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            total += tape.scalar(loss);
            std::hint::black_box(&grads);
        }
        total
    });
    let fast_step = time(2, || {
        let mut total = 0.0f32;
        for chunk in corpus.chunks(64) {
            let mut tape = Tape::new();
            let refs: Vec<&str> = chunk.iter().map(|s| s.as_str()).collect();
            let batch = encoder.encode_batch(&mut tape, &refs, &noop);
            let sq = tape.pow2(batch);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            total += tape.scalar(loss);
            std::hint::black_box(&grads);
        }
        total
    });
    rows.push(SpeedupRow::new(
        "encode_batch fwd+bwd 4k records (Transformer) vs per-row graphs".into(),
        naive_step,
        fast_step,
        corpus.len(),
        0,
    ));
}

/// Per-query scalar scan with no SIMD kernels — the seed's `knn_join`.
fn knn_scalar(corpus: &[Vec<f32>], queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
    let normalized: Vec<Vec<f32>> = corpus
        .iter()
        .map(|v| {
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if n > 1e-12 {
                v.iter().map(|x| x / n).collect()
            } else {
                v.clone()
            }
        })
        .collect();
    let mut pairs = Vec::with_capacity(queries.len() * k);
    for (qi, q) in queries.iter().enumerate() {
        let qnorm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
        let inv = if qnorm > 1e-12 { 1.0 / qnorm } else { 0.0 };
        let mut scored: Vec<(usize, f32)> = normalized
            .iter()
            .enumerate()
            .map(|(id, v)| {
                (
                    id,
                    v.iter().zip(q.iter()).map(|(a, b)| a * b).sum::<f32>() * inv,
                )
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        pairs.extend(scored.into_iter().map(|(id, s)| (qi, id, s)));
    }
    pairs
}

fn knn_rows(rows: &mut Vec<SpeedupRow>) {
    let mut rng = StdRng::seed_from_u64(3);
    let dim = 32;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let k = 20;
    let scored_pairs = queries.len() * corpus.len();
    let index = CosineIndex::build(corpus.clone());
    let naive = time(2, || knn_scalar(&corpus, &queries, k));
    let fast = time(2, || index.knn_join(&queries, k));
    rows.push(SpeedupRow::new(
        format!("knn_join 2k queries x 10k corpus (d={dim}, k={k})"),
        naive,
        fast,
        queries.len(),
        scored_pairs,
    ));

    // The streaming sharded layout over the same workload: shard-by-shard GEMM tiles
    // with routing-statistics skipping (the default), versus the same scalar scan.
    let sharded = ShardedCosineIndex::from_vectors(&corpus, 1024);
    let fast_sharded = time(2, || sharded.knn_join(&queries, k));
    rows.push(SpeedupRow::new(
        format!("knn_join sharded cap=1024 (d={dim}, k={k})"),
        naive,
        fast_sharded,
        queries.len(),
        scored_pairs,
    ));

    // Routing off: the A/B baseline for the routing layer (parallel shard-group merge,
    // no pruning).
    let mut unrouted = ShardedCosineIndex::from_vectors(&corpus, 1024);
    unrouted.set_routing_enabled(false);
    let fast_unrouted = time(2, || unrouted.knn_join(&queries, k));
    rows.push(SpeedupRow::new(
        format!("knn_join sharded cap=1024 routing off (d={dim}, k={k})"),
        naive,
        fast_unrouted,
        queries.len(),
        scored_pairs,
    ));

    // Routed + spilled: a zero residency budget puts every shard on disk, so each
    // non-pruned shard is faulted back per query tile. Routing keeps pruned shards
    // from ever touching disk; the remaining fault cost is what this row tracks.
    let spilled = ShardedCosineIndex::from_vectors_with_budget(&corpus, 1024, Some(0));
    assert_eq!(
        spilled.num_spilled_shards(),
        spilled.num_shards(),
        "zero budget must spill every shard"
    );
    let fast_spilled = time(2, || spilled.knn_join(&queries, k));
    let report = spilled.routing_report();
    rows.push(SpeedupRow::new(
        format!(
            "knn_join sharded spilled+routed cap=1024 budget=0 (d={dim}, k={k}, \
             {} faults / {} visits)",
            report.spill_faults, report.shards_visited
        ),
        naive,
        fast_spilled,
        queries.len(),
        scored_pairs,
    ));

    // Quantized two-stage scan (i8 candidate pass + exact f32 rescore), resident and
    // spilled. Throughput recorded for trend-watching only — these rows are
    // intentionally NOT in SPEEDUP_FLOORS while the baseline is established (the
    // quantized tier's *gated* property is the memory-density row, which is a format
    // invariant rather than a timing).
    let mut quantized = ShardedCosineIndex::from_vectors(&corpus, 1024);
    quantized.set_quantization(Some(QuantSpec::default()));
    quantized.compact();
    let fast_quantized = time(2, || quantized.knn_join(&queries, k));
    rows.push(SpeedupRow::new(
        format!("knn_join sharded quantized cap=1024 (d={dim}, k={k})"),
        naive,
        fast_quantized,
        queries.len(),
        scored_pairs,
    ));

    let mut quant_spilled = ShardedCosineIndex::from_vectors(&corpus, 1024);
    quant_spilled.set_quantization(Some(QuantSpec::default()));
    quant_spilled.set_memory_budget(Some(0));
    quant_spilled.compact();
    assert_eq!(
        quant_spilled.num_spilled_shards(),
        quant_spilled.num_shards(),
        "zero budget must spill every quantized shard"
    );
    let fast_quant_spilled = time(2, || quant_spilled.knn_join(&queries, k));
    let quant_report = quant_spilled.routing_report();
    rows.push(SpeedupRow::new(
        format!(
            "knn_join sharded quantized spilled+routed cap=1024 budget=0 (d={dim}, \
             k={k}, {} quant scans / {} rescored rows)",
            quant_report.quant_scans, quant_report.rescored_rows
        ),
        naive,
        fast_quant_spilled,
        queries.len(),
        scored_pairs,
    ));

    // Sanity: every sharded variant answers exactly like the dense index.
    let expected = index.knn_join(&queries[..64], k);
    for (name, variant) in [
        ("routed", &sharded),
        ("unrouted", &unrouted),
        ("spilled", &spilled),
        ("quantized", &quantized),
        ("quantized spilled", &quant_spilled),
    ] {
        assert_eq!(
            variant.knn_join(&queries[..64], k),
            expected,
            "{name} sharded join diverged from dense"
        );
    }
}

/// Measures the quantized tier's memory density: the payload bytes the candidate
/// scan reads per row under each storage format. Dense f32 shards cost `4·dim`
/// bytes/row; quantized shards cost `dim` i8 codes plus one f32 scale. At `d=64`
/// the ratio is `256/68 ≈ 3.76x`, and the 3.5x floor **gates** — see
/// [`MemoryDensityRow`] for why this floor, unlike the speedup floors, cannot be
/// tripped by a slow runner.
fn quantized_memory_density_row() -> MemoryDensityRow {
    let mut rng = StdRng::seed_from_u64(5);
    let dim = 64;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();

    let dense = ShardedCosineIndex::from_vectors(&corpus, 1024);
    let dense_payload_bytes = dense.resident_bytes();

    let mut quantized = ShardedCosineIndex::from_vectors(&corpus, 1024);
    quantized.set_quantization(Some(QuantSpec::default()));
    quantized.compact();
    assert_eq!(quantized.num_quantized_shards(), quantized.num_shards());
    let quantized_scan_bytes = quantized.quantized_payload_bytes();

    let density = dense_payload_bytes as f64 / quantized_scan_bytes as f64;
    let floor = 3.5;
    // NaN-incomparable densities count as regressions, like the speedup gate.
    let regression = !matches!(
        density.partial_cmp(&floor),
        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
    );
    MemoryDensityRow {
        case: format!("quantized scan payload density 10k corpus (d={dim}) vs dense f32"),
        dense_payload_bytes,
        quantized_scan_bytes,
        density,
        floor,
        regression,
    }
}

/// Snapshot persistence + network serving (the PR-5 subsystem): cold manifest-only
/// loads vs. full rebuilds, and warm-cache served batches vs. direct cold joins.
fn snapshot_and_serve_rows(rows: &mut Vec<SpeedupRow>) {
    use std::sync::Arc;
    use sudowoodo_index::BlockingIndex;
    use sudowoodo_serve::{ServeClient, Server};

    let mut rng = StdRng::seed_from_u64(4);
    let dim = 32;
    let k = 20;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();

    // The snapshot source: spill forced (zero budget) so saving exercises the
    // file-copy path and the snapshot equals what a memory-pressured builder writes.
    let built = ShardedCosineIndex::from_vectors_with_budget(&corpus, 1024, Some(0));
    let dir = std::env::temp_dir().join(format!("sudowoodo-perf-snap-{}", std::process::id()));
    built.save_snapshot(&dir).expect("save snapshot");

    // Cold load (manifest only) vs. rebuilding the index from the raw vectors.
    let naive = time(3, || ShardedCosineIndex::from_vectors(&corpus, 1024));
    let fast = time(3, || {
        ShardedCosineIndex::load_snapshot(&dir).expect("load snapshot")
    });
    rows.push(SpeedupRow::new(
        format!("snapshot load 10k corpus (d={dim}, cap=1024) vs rebuild from vectors"),
        naive,
        fast,
        corpus.len(),
        0,
    ));
    let loaded = ShardedCosineIndex::load_snapshot(&dir).expect("load snapshot");
    assert_eq!(
        loaded.knn_join(&queries[..64], k),
        built.knn_join(&queries[..64], k),
        "snapshot-loaded index diverged from its source"
    );

    // Served warm-cache batch (localhost TCP round trip, zero shards touched) vs.
    // computing the same batch directly on the cold snapshot-loaded index.
    let cold = ShardedCosineIndex::load_snapshot(&dir).expect("load snapshot");
    let naive_direct = time(2, || cold.knn_join(&queries, k));
    let mut serving = ShardedCosineIndex::load_snapshot(&dir).expect("load snapshot");
    serving.set_query_cache_capacity(4);
    let server = Server::spawn(Arc::new(BlockingIndex::Sharded(serving)), "127.0.0.1:0")
        .expect("spawn server");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let served = client.knn_join(&queries, k).expect("warm the cache");
    assert_eq!(served, cold.knn_join(&queries, k), "served join diverged");
    let fast_served = time(3, || client.knn_join(&queries, k).expect("served join"));
    let scored_pairs = queries.len() * corpus.len();
    rows.push(SpeedupRow::new(
        format!(
            "served knn_join warm cache 2k queries x 10k corpus (d={dim}, k={k}) \
             vs direct cold join"
        ),
        naive_direct,
        fast_served,
        queries.len(),
        scored_pairs,
    ));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Measures serving behavior at 2x the admission capacity: concurrent clients
/// streaming unique (cache-defeating) batches against a deliberately small admission
/// queue, counting answered batches vs `BUSY` load sheds. See [`LoadShedRow`] for why
/// this is recorded without a gate floor.
fn serve_load_shed_row() -> LoadShedRow {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use sudowoodo_index::BlockingIndex;
    use sudowoodo_serve::{ClientConfig, RetryPolicy, ServeClient, Server, ServerConfig};

    let mut rng = StdRng::seed_from_u64(6);
    let dim = 32;
    let k = 10;
    let corpus: Vec<Vec<f32>> = (0..4_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let depth = 2;
    let clients = 2 * (depth + 1); // comfortably past admission capacity
    let batches_per_client = 10;
    let batch = 200;

    let index = BlockingIndex::build(corpus, Some(512));
    let config = ServerConfig {
        admission_queue_depth: depth,
        ..ServerConfig::default()
    };
    let server =
        Server::spawn_with_config(Arc::new(index), "127.0.0.1:0", config).expect("spawn server");
    let answered = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (answered, shed) = (&answered, &shed);
            let addr = server.addr();
            scope.spawn(move || {
                // No retries: a shed attempt is *counted*, not hidden behind backoff.
                let client_config = ClientConfig {
                    retry: RetryPolicy {
                        max_retries: 0,
                        ..RetryPolicy::default()
                    },
                    ..ClientConfig::default()
                };
                let mut client =
                    ServeClient::connect_with_config(addr, client_config).expect("connect");
                let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                for _ in 0..batches_per_client {
                    // A fresh batch every time: the cache never answers, every
                    // admitted request costs a real join, and the queue backs up.
                    let queries: Vec<Vec<f32>> = (0..batch)
                        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                        .collect();
                    match client.knn_join(&queries, k) {
                        Ok(pairs) => {
                            std::hint::black_box(&pairs);
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("load-shed client hit a non-BUSY error: {e}"),
                    }
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    let answered = answered.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let attempts = clients * batches_per_client;
    assert_eq!(answered + shed, attempts, "every attempt must be accounted");
    assert_eq!(
        shed as u64, stats.busy_rejections,
        "client-observed sheds must match the server's busy_rejections counter"
    );
    LoadShedRow {
        case: format!(
            "serve_load_shed {clients} clients x {batches_per_client} unique batches \
             ({batch} queries, d={dim}, k={k}) vs admission depth {depth}"
        ),
        clients,
        admission_queue_depth: depth,
        attempts,
        answered,
        shed,
        shed_rate: shed as f64 / attempts as f64,
        seconds,
        answered_queries_per_sec: if seconds > 0.0 {
            (answered * batch) as f64 / seconds
        } else {
            0.0
        },
    }
}

/// Measures distributed scatter-gather throughput: a [`sudowoodo_coord::Coordinator`]
/// over an in-process [`sudowoodo_coord::LocalCluster`], shaped by `SUDOWOODO_CLUSTER`
/// (`processes[xreplication[xvirtual_nodes]]`, default `3x2x64`). The distributed
/// answer is asserted bit-identical to the direct join before anything is timed.
fn scatter_gather_row() -> ScatterGatherRow {
    use std::sync::Arc;
    use sudowoodo_coord::{Coordinator, CoordinatorConfig, LocalCluster};
    use sudowoodo_core::ClusterSpec;
    use sudowoodo_index::BlockingIndex;

    let spec = match std::env::var("SUDOWOODO_CLUSTER") {
        Ok(raw) => ClusterSpec::parse(&raw).expect("SUDOWOODO_CLUSTER"),
        Err(_) => ClusterSpec::default(),
    };

    let mut rng = StdRng::seed_from_u64(7);
    let dim = 32;
    let k = 10;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();

    let index = Arc::new(BlockingIndex::build(corpus, Some(1024)));
    let expected = index.knn_join(&queries, k);
    let cluster = LocalCluster::spawn(Arc::clone(&index), spec.processes).expect("spawn cluster");
    let mut coord = Coordinator::connect(
        &cluster.endpoints(),
        CoordinatorConfig {
            replication: spec.replication,
            virtual_nodes: spec.virtual_nodes,
            ..CoordinatorConfig::default()
        },
    )
    .expect("connect coordinator");
    assert_eq!(
        coord.knn_join(&queries, k).expect("scatter-gather join"),
        expected,
        "scatter-gather join diverged from the direct join"
    );

    let seconds = time(3, || {
        coord.knn_join(&queries, k).expect("scatter-gather join")
    });
    ScatterGatherRow {
        case: format!(
            "scatter_gather knn_join 2k queries x 10k corpus (d={dim}, k={k}) over \
             {} processes, R={}, vnodes={}",
            spec.processes, spec.replication, spec.virtual_nodes
        ),
        processes: spec.processes,
        replication: spec.replication,
        virtual_nodes: spec.virtual_nodes,
        shards: coord.num_shards(),
        seconds,
        queries: queries.len(),
        queries_per_sec: if seconds > 0.0 {
            queries.len() as f64 / seconds
        } else {
            0.0
        },
    }
}

/// Measures the served `EMBED` and `MATCH` request paths: a tiny matcher is trained,
/// snapshotted (`SWMODEL1`), cold-loaded, and served; both answers are verified
/// bit-identical to the in-process model before timing. See [`ModelServeRow`] for
/// why these rows never gate.
fn model_serve_rows() -> (ModelServeRow, ModelServeRow) {
    use std::sync::Arc;
    use sudowoodo_core::matcher::{FineTuneConfig, PairMatcher, TrainPair};
    use sudowoodo_core::model_snapshot::{self, MatcherBackend};
    use sudowoodo_index::BlockingIndex;
    use sudowoodo_serve::{ServeClient, Server, ServerConfig};

    let texts = perf_corpus();
    let texts = &texts[..1_000];
    let encoder = Encoder::from_corpus(
        EncoderConfig {
            kind: EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        },
        texts,
        9,
    );
    let mut matcher = PairMatcher::new(encoder, true, 9);
    let train: Vec<TrainPair> = (0..32)
        .map(|i| TrainPair::new(texts[i].clone(), texts[(i + 5) % 64].clone(), i % 2 == 0))
        .collect();
    matcher.fine_tune(
        &train,
        &FineTuneConfig {
            epochs: 1,
            batch_size: 8,
            learning_rate: 1e-3,
            seed: 9,
        },
    );

    // Through the snapshot: the served model is a cold load, like production.
    let path = std::env::temp_dir().join(format!(
        "sudowoodo-perf-model-{}.swmodel",
        std::process::id()
    ));
    model_snapshot::save_matcher(&matcher, &path).expect("save model snapshot");
    let cold = model_snapshot::load_matcher(&path).expect("load model snapshot");
    let _ = std::fs::remove_file(&path);

    let mut rng = StdRng::seed_from_u64(10);
    let index: Vec<Vec<f32>> = (0..256)
        .map(|_| (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let server = Server::spawn_with_model(
        Arc::new(BlockingIndex::build(index, Some(64))),
        Arc::new(MatcherBackend(cold)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("spawn model server");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    let batch = &texts[..512];
    let served = client.embed(batch).expect("served embed");
    assert!(
        served.iter().flatten().map(|x| x.to_bits()).eq(matcher
            .encoder
            .embed_all(batch)
            .iter()
            .flatten()
            .map(|x| x.to_bits())),
        "served embeddings diverged from the in-process model"
    );
    let embed_secs = time(3, || client.embed(batch).expect("served embed"));
    let serve_embed = ModelServeRow {
        case: "serve_embed 512 texts (MeanPool d=32) over a cold model snapshot".into(),
        seconds: embed_secs,
        items: batch.len(),
        items_per_sec: if embed_secs > 0.0 {
            batch.len() as f64 / embed_secs
        } else {
            0.0
        },
    };

    let pairs: Vec<(String, String)> = (0..128)
        .map(|i| (texts[i].clone(), texts[(i + 13) % 256].clone()))
        .collect();
    let served = client.match_pairs(&pairs).expect("served match");
    assert!(
        served
            .iter()
            .map(|x| x.to_bits())
            .eq(matcher.predict_scores(&pairs).iter().map(|x| x.to_bits())),
        "served match scores diverged from the in-process model"
    );
    let match_secs = time(3, || client.match_pairs(&pairs).expect("served match"));
    let serve_match = ModelServeRow {
        case: "serve_match 128 pairs (MeanPool d=32) over a cold model snapshot".into(),
        seconds: match_secs,
        items: pairs.len(),
        items_per_sec: if match_secs > 0.0 {
            pairs.len() as f64 / match_secs
        } else {
            0.0
        },
    };

    server.shutdown();
    (serve_embed, serve_match)
}

/// Runs the connection-count sweep against a small served index and derives the
/// structural [`ConnectionGate`] from its largest level. See [`ConnectionGate`]
/// for what gates (connection count, finite percentiles) and what does not
/// (the latencies themselves).
fn connection_sweep_rows() -> (Vec<sudowoodo_bench::connsweep::SweepLevel>, ConnectionGate) {
    use std::sync::Arc;
    use sudowoodo_bench::connsweep;
    use sudowoodo_index::BlockingIndex;
    use sudowoodo_serve::Server;

    let mut rng = StdRng::seed_from_u64(8);
    let dim = 32;
    let k = 10;
    let corpus: Vec<Vec<f32>> = (0..4_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let index = BlockingIndex::build(corpus, Some(512));
    let server = Server::spawn(Arc::new(index), "127.0.0.1:0").expect("spawn sweep server");

    let levels: Vec<_> = [512usize, 5_000]
        .into_iter()
        .map(|target| connsweep::sweep_level(server.addr(), &queries, k, target, 2, 25))
        .collect();
    server.shutdown();

    let top = levels.last().expect("sweep has levels");
    let required_connections = connsweep::clamp_idle_target(5_000);
    let finite = |ms: f64| ms.is_finite() && ms > 0.0;
    let gate = ConnectionGate {
        required_connections,
        attached_connections: top.idle_attached,
        p50_ms: top.p50_ms,
        p99_ms: top.p99_ms,
        regression: top.idle_attached < required_connections
            || !finite(top.p50_ms)
            || !finite(top.p99_ms),
    };
    (levels, gate)
}

fn main() {
    let mut rows = Vec::new();
    matmul_rows(&mut rows);
    embed_rows(&mut rows);
    transformer_batching_rows(&mut rows);
    knn_rows(&mut rows);
    snapshot_and_serve_rows(&mut rows);
    let serve_load_shed = serve_load_shed_row();
    println!(
        "load shed at 2x admission capacity: {}/{} batches shed ({:.0}% shed rate), \
         {:.0} answered queries/sec",
        serve_load_shed.shed,
        serve_load_shed.attempts,
        serve_load_shed.shed_rate * 100.0,
        serve_load_shed.answered_queries_per_sec
    );
    let scatter_gather = scatter_gather_row();
    println!(
        "scatter-gather: {} shards over {} processes (R={}): {:.0} queries/sec \
         (ungated; trend only)",
        scatter_gather.shards,
        scatter_gather.processes,
        scatter_gather.replication,
        scatter_gather.queries_per_sec
    );
    let (serve_embed, serve_match) = model_serve_rows();
    println!(
        "multi-task serving: EMBED {:.0} texts/sec, MATCH {:.0} pairs/sec over a cold \
         model snapshot (ungated; trend only)",
        serve_embed.items_per_sec, serve_match.items_per_sec
    );
    let (serve_connection_sweep, connection_gate) = connection_sweep_rows();
    for level in &serve_connection_sweep {
        println!(
            "conn sweep: {} idle + {} active: p50 {:.3} ms, p99 {:.3} ms, \
             {:.0} queries/sec",
            level.idle_attached,
            level.active_clients,
            level.p50_ms,
            level.p99_ms,
            level.queries_per_sec
        );
    }
    println!(
        "connection gate: {}/{} connections held, p99 {:.3} ms — {}",
        connection_gate.attached_connections,
        connection_gate.required_connections,
        connection_gate.p99_ms,
        if connection_gate.regression {
            "REGRESSION"
        } else {
            "ok"
        }
    );

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.case.clone(),
                format!("{:.4}", r.naive_secs),
                format!("{:.4}", r.fast_secs),
                format!("{:.2}x", r.speedup),
                if r.records > 0 {
                    format!("{:.0}", r.records_per_sec)
                } else {
                    "-".into()
                },
                if r.pairs > 0 {
                    format!("{:.0}", r.pairs_per_sec)
                } else {
                    "-".into()
                },
            ]
        })
        .collect();
    print_table(
        "Hot-path speedups vs naive seed kernels",
        &[
            "case",
            "naive (s)",
            "kernels (s)",
            "speedup",
            "records/s",
            "pairs/s",
        ],
        &printable,
    );

    let quantized_memory_density = quantized_memory_density_row();
    println!(
        "quantized memory density: {} -> {} payload bytes ({:.2}x, floor {:.1}x) — {}",
        quantized_memory_density.dense_payload_bytes,
        quantized_memory_density.quantized_scan_bytes,
        quantized_memory_density.density,
        quantized_memory_density.floor,
        if quantized_memory_density.regression {
            "REGRESSION"
        } else {
            "ok"
        }
    );

    let (gate, mut any_regression) = build_gate(&rows);
    any_regression |= connection_gate.regression;
    any_regression |= quantized_memory_density.regression;
    let gate_printable: Vec<Vec<String>> = gate
        .iter()
        .map(|g| {
            vec![
                g.case.clone(),
                format!("{:.2}x", g.floor),
                format!("{:.2}x", g.speedup),
                if g.regression { "REGRESSION" } else { "ok" }.into(),
            ]
        })
        .collect();
    print_table(
        "Perf-regression gate (floors ~0.7x of ROADMAP-recorded speedups)",
        &["tracked kernel", "floor", "measured", "status"],
        &gate_printable,
    );

    let writer = ResultWriter::new();
    writer.write("perf_speedup", &rows);
    writer.write(
        "BENCH_perf",
        &PerfReport {
            rows,
            gate,
            any_regression,
            quantized_memory_density,
            serve_load_shed,
            scatter_gather,
            serve_embed,
            serve_match,
            serve_connection_sweep,
            connection_gate,
        },
    );
    if any_regression {
        // Exit 0 regardless so CI can upload the artifact; the gate *step* greps
        // BENCH_perf.json for `"any_regression": true` and fails the job.
        eprintln!("perf_speedup: REGRESSION — a tracked kernel fell below its speedup floor");
    }
}
