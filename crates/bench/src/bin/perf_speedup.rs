//! Kernel/batching speedup report: new hot path vs. the naive seed kernels.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin perf_speedup`.
//!
//! Measures, on this machine:
//!
//! * square `matmul` 128–1024: blocked/SIMD kernel vs. the naive reference triple loop
//!   ([`Matrix::matmul_naive`]);
//! * `embed_all` over 4k records, for **both** encoder architectures: the batched,
//!   tape-free, rayon-chunked inference path vs. the seed's per-row tape graphs
//!   (reconstructed via `encode_text` + `stack_rows` per 64-item chunk, which is exactly
//!   what the seed's `embed_all` executed);
//! * the Transformer batched-masked-attention tentpole in isolation: `infer_chunk` vs.
//!   the frozen per-sequence inference oracle (`infer_chunk_reference`) and the batched
//!   `encode_batch` tape graph vs. one per-row graph per text;
//! * `knn_join`: the GEMM-tiled join vs. a per-query scalar scan without kernels.
//!
//! Writes `target/experiments/perf_speedup.json` so benchmark logs track the trajectory.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use sudowoodo_augment::CutoffPlan;
use sudowoodo_bench::harness::print_table;
use sudowoodo_bench::ResultWriter;
use sudowoodo_core::config::{EncoderConfig, EncoderKind};
use sudowoodo_core::encoder::Encoder;
use sudowoodo_index::{CosineIndex, ShardedCosineIndex};
use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::tape::Tape;

#[derive(Clone, Debug, Serialize)]
struct SpeedupRow {
    case: String,
    naive_secs: f64,
    fast_secs: f64,
    speedup: f64,
}

fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    // One warmup rep, then the best of `reps` (stable against scheduler noise).
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn matmul_rows(rows: &mut Vec<SpeedupRow>) {
    let mut rng = StdRng::seed_from_u64(1);
    for size in [128usize, 256, 512, 1024] {
        let a = Matrix::random_normal(size, size, 1.0, &mut rng);
        let b = Matrix::random_normal(size, size, 1.0, &mut rng);
        let reps = if size >= 512 { 3 } else { 5 };
        let naive = time(reps, || a.matmul_naive(&b));
        let fast = time(reps, || a.matmul(&b));
        rows.push(SpeedupRow {
            case: format!("matmul {size}x{size}"),
            naive_secs: naive,
            fast_secs: fast,
            speedup: naive / fast,
        });
    }
}

/// The seed's `embed_all`: chunks of 64, one tape per chunk, one *per-row* graph per text
/// (`encode_text`), stacked. Reconstructed here as the baseline.
fn embed_all_seed_style(encoder: &Encoder, texts: &[String]) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(texts.len());
    for chunk in texts.chunks(64) {
        let mut tape = Tape::new();
        let noop = CutoffPlan::noop();
        let rows: Vec<_> = chunk
            .iter()
            .map(|t| encoder.encode_text(&mut tape, t, &noop))
            .collect();
        let batch = tape.stack_rows(&rows);
        let values = tape.value(batch);
        for r in 0..values.rows() {
            out.push(values.row(r).to_vec());
        }
    }
    out
}

fn perf_corpus() -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(2);
    let words = [
        "canon",
        "ink",
        "printer",
        "paper",
        "query",
        "deluxe",
        "cyan",
        "tank",
        "survey",
        "transformer",
        "optimizer",
        "cartridge",
        "model",
        "price",
        "venue",
    ];
    // Each record carries a few unique alphanumeric codes (sku / model / reference)
    // besides the shared title words — product corpora are identifier-heavy, and the
    // resulting ~12k-token vocabulary is what the embedding table actually looks like at
    // this corpus size (the paper's EM corpora are capped at 10k records).
    (0..4_000)
        .map(|i| {
            let picks: Vec<&str> = (0..10)
                .map(|_| words[rng.gen_range(0..words.len())])
                .collect();
            format!(
                "[COL] title [VAL] {} sku{i} mdl{} [COL] price [VAL] {} ref{}",
                picks.join(" "),
                (i * 7) % 50_000,
                i % 97,
                (i * 13) % 60_000,
            )
        })
        .collect()
}

fn embed_rows(rows: &mut Vec<SpeedupRow>) {
    let corpus = perf_corpus();
    for kind in [EncoderKind::MeanPool, EncoderKind::Transformer] {
        let config = EncoderConfig {
            kind,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        };
        let encoder = Encoder::from_corpus(config, &corpus, 7);

        let naive = time(2, || embed_all_seed_style(&encoder, &corpus));
        let fast = time(2, || encoder.embed_all(&corpus));
        rows.push(SpeedupRow {
            case: format!("embed_all 4k records ({kind:?} d=32) vs seed per-row tape"),
            naive_secs: naive,
            fast_secs: fast,
            speedup: naive / fast,
        });

        // Sanity: both paths agree numerically (cosine of matched rows ~ 1).
        let a = embed_all_seed_style(&encoder, &corpus[..64]);
        let b = encoder.embed_all(&corpus[..64]);
        for (x, y) in a.iter().zip(b.iter()) {
            let cos = Matrix::cosine(x, y);
            assert!(cos > 1.0 - 1e-4, "embedding paths diverged: cosine {cos}");
        }
    }
}

/// Batched masked attention vs. the retained per-sequence oracle, both tape-free and on
/// the tape (the PR-3 tentpole). The oracle (`infer_chunk_reference`, per-row
/// `encode_text` graphs) is frozen, exactly like `matmul_naive` for the kernels.
fn transformer_batching_rows(rows: &mut Vec<SpeedupRow>) {
    let corpus = perf_corpus();
    let config = EncoderConfig {
        kind: EncoderKind::Transformer,
        dim: 32,
        layers: 1,
        heads: 2,
        ff_hidden: 64,
        max_len: 32,
    };
    let encoder = Encoder::from_corpus(config, &corpus, 7);

    // Tape-free inference: padded batched masked attention vs the per-sequence loop.
    let naive = time(2, || {
        corpus
            .chunks(64)
            .map(|chunk| encoder.infer_chunk_reference(chunk).rows())
            .sum::<usize>()
    });
    let fast = time(2, || {
        corpus
            .chunks(64)
            .map(|chunk| encoder.infer_chunk(chunk).rows())
            .sum::<usize>()
    });
    rows.push(SpeedupRow {
        case: "infer_chunk 4k records (Transformer) vs per-sequence oracle".into(),
        naive_secs: naive,
        fast_secs: fast,
        speedup: naive / fast,
    });

    // Training path: one batched tape graph per chunk vs one per-row graph per text.
    let noop = CutoffPlan::noop();
    let naive_tape = time(2, || {
        let mut nodes = 0usize;
        for chunk in corpus.chunks(64) {
            let mut tape = Tape::new();
            let tape_rows: Vec<_> = chunk
                .iter()
                .map(|t| encoder.encode_text(&mut tape, t, &noop))
                .collect();
            let batch = tape.stack_rows(&tape_rows);
            nodes += tape.value(batch).rows();
        }
        nodes
    });
    let fast_tape = time(2, || {
        let mut nodes = 0usize;
        for chunk in corpus.chunks(64) {
            let mut tape = Tape::new();
            let refs: Vec<&str> = chunk.iter().map(|s| s.as_str()).collect();
            let batch = encoder.encode_batch(&mut tape, &refs, &noop);
            nodes += tape.value(batch).rows();
        }
        nodes
    });
    rows.push(SpeedupRow {
        case: "encode_batch tape graphs 4k records (Transformer) vs per-row graphs".into(),
        naive_secs: naive_tape,
        fast_secs: fast_tape,
        speedup: naive_tape / fast_tape,
    });

    // What pre-training actually executes per step: forward AND backward. The per-row
    // graphs pay their per-sequence toll twice over here — every row's embedding gather
    // scatter-adds into its own full-vocabulary gradient buffer, while the batched graph
    // allocates one per chunk.
    let naive_step = time(2, || {
        let mut total = 0.0f32;
        for chunk in corpus.chunks(64) {
            let mut tape = Tape::new();
            let tape_rows: Vec<_> = chunk
                .iter()
                .map(|t| encoder.encode_text(&mut tape, t, &noop))
                .collect();
            let batch = tape.stack_rows(&tape_rows);
            let sq = tape.pow2(batch);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            total += tape.scalar(loss);
            std::hint::black_box(&grads);
        }
        total
    });
    let fast_step = time(2, || {
        let mut total = 0.0f32;
        for chunk in corpus.chunks(64) {
            let mut tape = Tape::new();
            let refs: Vec<&str> = chunk.iter().map(|s| s.as_str()).collect();
            let batch = encoder.encode_batch(&mut tape, &refs, &noop);
            let sq = tape.pow2(batch);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            total += tape.scalar(loss);
            std::hint::black_box(&grads);
        }
        total
    });
    rows.push(SpeedupRow {
        case: "encode_batch fwd+bwd 4k records (Transformer) vs per-row graphs".into(),
        naive_secs: naive_step,
        fast_secs: fast_step,
        speedup: naive_step / fast_step,
    });
}

/// Per-query scalar scan with no SIMD kernels — the seed's `knn_join`.
fn knn_scalar(corpus: &[Vec<f32>], queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
    let normalized: Vec<Vec<f32>> = corpus
        .iter()
        .map(|v| {
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if n > 1e-12 {
                v.iter().map(|x| x / n).collect()
            } else {
                v.clone()
            }
        })
        .collect();
    let mut pairs = Vec::with_capacity(queries.len() * k);
    for (qi, q) in queries.iter().enumerate() {
        let qnorm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
        let inv = if qnorm > 1e-12 { 1.0 / qnorm } else { 0.0 };
        let mut scored: Vec<(usize, f32)> = normalized
            .iter()
            .enumerate()
            .map(|(id, v)| {
                (
                    id,
                    v.iter().zip(q.iter()).map(|(a, b)| a * b).sum::<f32>() * inv,
                )
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        pairs.extend(scored.into_iter().map(|(id, s)| (qi, id, s)));
    }
    pairs
}

fn knn_rows(rows: &mut Vec<SpeedupRow>) {
    let mut rng = StdRng::seed_from_u64(3);
    let dim = 32;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let k = 20;
    let index = CosineIndex::build(corpus.clone());
    let naive = time(2, || knn_scalar(&corpus, &queries, k));
    let fast = time(2, || index.knn_join(&queries, k));
    rows.push(SpeedupRow {
        case: format!("knn_join 2k queries x 10k corpus (d={dim}, k={k})"),
        naive_secs: naive,
        fast_secs: fast,
        speedup: naive / fast,
    });

    // The streaming sharded layout over the same workload: shard-by-shard GEMM tiles with
    // the bounded-heap merge, versus the same scalar scan.
    let sharded = ShardedCosineIndex::from_vectors(&corpus, 1024);
    let fast_sharded = time(2, || sharded.knn_join(&queries, k));
    rows.push(SpeedupRow {
        case: format!("knn_join sharded cap=1024 (d={dim}, k={k})"),
        naive_secs: naive,
        fast_secs: fast_sharded,
        speedup: naive / fast_sharded,
    });
}

fn main() {
    let mut rows = Vec::new();
    matmul_rows(&mut rows);
    embed_rows(&mut rows);
    transformer_batching_rows(&mut rows);
    knn_rows(&mut rows);

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.case.clone(),
                format!("{:.4}", r.naive_secs),
                format!("{:.4}", r.fast_secs),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        "Hot-path speedups vs naive seed kernels",
        &["case", "naive (s)", "kernels (s)", "speedup"],
        &printable,
    );
    ResultWriter::new().write("perf_speedup", &rows);
}
