//! Kernel/batching speedup report: new hot path vs. the naive seed kernels.
//!
//! Run with `cargo run --release -p sudowoodo-bench --bin perf_speedup`.
//!
//! Measures, on this machine:
//!
//! * square `matmul` 128–1024: blocked/SIMD kernel vs. the naive reference triple loop
//!   ([`Matrix::matmul_naive`]);
//! * `embed_all` over 4k records: the batched, tape-free, rayon-chunked inference path
//!   vs. the seed's per-row tape graphs (reconstructed via `encode_text` + `stack_rows`
//!   per 64-item chunk, which is exactly what the seed's `embed_all` executed);
//! * `knn_join`: the GEMM-tiled join vs. a per-query scalar scan without kernels.
//!
//! Writes `target/experiments/perf_speedup.json` so benchmark logs track the trajectory.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use sudowoodo_augment::CutoffPlan;
use sudowoodo_bench::harness::print_table;
use sudowoodo_bench::ResultWriter;
use sudowoodo_core::config::{EncoderConfig, EncoderKind};
use sudowoodo_core::encoder::Encoder;
use sudowoodo_index::{CosineIndex, ShardedCosineIndex};
use sudowoodo_nn::matrix::Matrix;
use sudowoodo_nn::tape::Tape;

#[derive(Clone, Debug, Serialize)]
struct SpeedupRow {
    case: String,
    naive_secs: f64,
    fast_secs: f64,
    speedup: f64,
}

fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    // One warmup rep, then the best of `reps` (stable against scheduler noise).
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn matmul_rows(rows: &mut Vec<SpeedupRow>) {
    let mut rng = StdRng::seed_from_u64(1);
    for size in [128usize, 256, 512, 1024] {
        let a = Matrix::random_normal(size, size, 1.0, &mut rng);
        let b = Matrix::random_normal(size, size, 1.0, &mut rng);
        let reps = if size >= 512 { 3 } else { 5 };
        let naive = time(reps, || a.matmul_naive(&b));
        let fast = time(reps, || a.matmul(&b));
        rows.push(SpeedupRow {
            case: format!("matmul {size}x{size}"),
            naive_secs: naive,
            fast_secs: fast,
            speedup: naive / fast,
        });
    }
}

/// The seed's `embed_all`: chunks of 64, one tape per chunk, one *per-row* graph per text
/// (`encode_text`), stacked. Reconstructed here as the baseline.
fn embed_all_seed_style(encoder: &Encoder, texts: &[String]) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(texts.len());
    for chunk in texts.chunks(64) {
        let mut tape = Tape::new();
        let noop = CutoffPlan::noop();
        let rows: Vec<_> = chunk
            .iter()
            .map(|t| encoder.encode_text(&mut tape, t, &noop))
            .collect();
        let batch = tape.stack_rows(&rows);
        let values = tape.value(batch);
        for r in 0..values.rows() {
            out.push(values.row(r).to_vec());
        }
    }
    out
}

fn embed_rows(rows: &mut Vec<SpeedupRow>) {
    let mut rng = StdRng::seed_from_u64(2);
    let words = [
        "canon",
        "ink",
        "printer",
        "paper",
        "query",
        "deluxe",
        "cyan",
        "tank",
        "survey",
        "transformer",
        "optimizer",
        "cartridge",
        "model",
        "price",
        "venue",
    ];
    let corpus: Vec<String> = (0..4_000)
        .map(|i| {
            let picks: Vec<&str> = (0..10)
                .map(|_| words[rng.gen_range(0..words.len())])
                .collect();
            format!(
                "[COL] title [VAL] {} sku{i} [COL] price [VAL] {}",
                picks.join(" "),
                i % 97
            )
        })
        .collect();
    let config = EncoderConfig {
        kind: EncoderKind::MeanPool,
        dim: 32,
        layers: 1,
        heads: 2,
        ff_hidden: 64,
        max_len: 32,
    };
    let encoder = Encoder::from_corpus(config, &corpus, 7);

    let naive = time(2, || embed_all_seed_style(&encoder, &corpus));
    let fast = time(2, || encoder.embed_all(&corpus));
    rows.push(SpeedupRow {
        case: "embed_all 4k records (MeanPool d=32)".into(),
        naive_secs: naive,
        fast_secs: fast,
        speedup: naive / fast,
    });

    // Sanity: both paths agree numerically (cosine of matched rows ~ 1).
    let a = embed_all_seed_style(&encoder, &corpus[..64]);
    let b = encoder.embed_all(&corpus[..64]);
    for (x, y) in a.iter().zip(b.iter()) {
        let cos = Matrix::cosine(x, y);
        assert!(cos > 1.0 - 1e-4, "embedding paths diverged: cosine {cos}");
    }
}

/// Per-query scalar scan with no SIMD kernels — the seed's `knn_join`.
fn knn_scalar(corpus: &[Vec<f32>], queries: &[Vec<f32>], k: usize) -> Vec<(usize, usize, f32)> {
    let normalized: Vec<Vec<f32>> = corpus
        .iter()
        .map(|v| {
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if n > 1e-12 {
                v.iter().map(|x| x / n).collect()
            } else {
                v.clone()
            }
        })
        .collect();
    let mut pairs = Vec::with_capacity(queries.len() * k);
    for (qi, q) in queries.iter().enumerate() {
        let qnorm: f32 = q.iter().map(|x| x * x).sum::<f32>().sqrt();
        let inv = if qnorm > 1e-12 { 1.0 / qnorm } else { 0.0 };
        let mut scored: Vec<(usize, f32)> = normalized
            .iter()
            .enumerate()
            .map(|(id, v)| {
                (
                    id,
                    v.iter().zip(q.iter()).map(|(a, b)| a * b).sum::<f32>() * inv,
                )
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        pairs.extend(scored.into_iter().map(|(id, s)| (qi, id, s)));
    }
    pairs
}

fn knn_rows(rows: &mut Vec<SpeedupRow>) {
    let mut rng = StdRng::seed_from_u64(3);
    let dim = 32;
    let corpus: Vec<Vec<f32>> = (0..10_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let k = 20;
    let index = CosineIndex::build(corpus.clone());
    let naive = time(2, || knn_scalar(&corpus, &queries, k));
    let fast = time(2, || index.knn_join(&queries, k));
    rows.push(SpeedupRow {
        case: format!("knn_join 2k queries x 10k corpus (d={dim}, k={k})"),
        naive_secs: naive,
        fast_secs: fast,
        speedup: naive / fast,
    });

    // The streaming sharded layout over the same workload: shard-by-shard GEMM tiles with
    // the bounded-heap merge, versus the same scalar scan.
    let sharded = ShardedCosineIndex::from_vectors(&corpus, 1024);
    let fast_sharded = time(2, || sharded.knn_join(&queries, k));
    rows.push(SpeedupRow {
        case: format!("knn_join sharded cap=1024 (d={dim}, k={k})"),
        naive_secs: naive,
        fast_secs: fast_sharded,
        speedup: naive / fast_sharded,
    });
}

fn main() {
    let mut rows = Vec::new();
    matmul_rows(&mut rows);
    embed_rows(&mut rows);
    knn_rows(&mut rows);

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.case.clone(),
                format!("{:.4}", r.naive_secs),
                format!("{:.4}", r.fast_secs),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        "Hot-path speedups vs naive seed kernels",
        &["case", "naive (s)", "kernels (s)", "speedup"],
        &printable,
    );
    ResultWriter::new().write("perf_speedup", &rows);
}
