//! Shared harness utilities: run configuration, markdown-ish table printing, and JSON
//! result persistence.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Configuration shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Dataset scale factor relative to the profile sizes.
    pub scale: f32,
    /// Restrict sweeps to a representative subset.
    pub quick: bool,
    /// Base random seed.
    pub seed: u64,
    /// Label budget for the semi-supervised EM experiments (the paper uses 500).
    pub label_budget: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 0.2,
            quick: false,
            seed: 42,
            label_budget: 100,
        }
    }
}

impl HarnessConfig {
    /// Builds the configuration from the environment (`SUDOWOODO_SCALE`, `SUDOWOODO_QUICK`,
    /// `SUDOWOODO_SEED`, `SUDOWOODO_LABELS`).
    pub fn from_env() -> Self {
        let mut config = HarnessConfig::default();
        if let Ok(scale) = std::env::var("SUDOWOODO_SCALE") {
            if let Ok(v) = scale.parse() {
                config.scale = v;
            }
        }
        if let Ok(quick) = std::env::var("SUDOWOODO_QUICK") {
            config.quick = quick == "1" || quick.eq_ignore_ascii_case("true");
        }
        if let Ok(seed) = std::env::var("SUDOWOODO_SEED") {
            if let Ok(v) = seed.parse() {
                config.seed = v;
            }
        }
        if let Ok(labels) = std::env::var("SUDOWOODO_LABELS") {
            if let Ok(v) = labels.parse() {
                config.label_budget = v;
            }
        }
        config
    }

    /// A Sudowoodo configuration sized for harness runs (small encoder, few epochs) so a
    /// full experiment sweep finishes on a laptop CPU; the *relative* comparisons between
    /// variants are what the harness reports.
    pub fn sudowoodo_config(&self) -> sudowoodo_core::SudowoodoConfig {
        let mut c = sudowoodo_core::SudowoodoConfig::test_config();
        c.encoder = sudowoodo_core::EncoderConfig {
            kind: sudowoodo_core::EncoderKind::MeanPool,
            dim: 32,
            layers: 1,
            heads: 2,
            ff_hidden: 64,
            max_len: 32,
        };
        c.projector_dim = 32;
        c.pretrain_epochs = if self.quick { 2 } else { 3 };
        c.batch_size = 16;
        c.max_corpus_size = 2_000;
        c.finetune_epochs = if self.quick { 4 } else { 6 };
        c.finetune_batch_size = 16;
        c.num_clusters = 12;
        c.blocking_k = 10;
        c.seed = self.seed;
        c
    }
}

/// Wall-clock throughput of one pipeline stage, persisted alongside experiment tables so
/// successive `BENCH_*.json` files track the performance trajectory of the hot path.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Throughput {
    /// Wall-clock seconds of the stage.
    pub seconds: f64,
    /// Records processed (0 when not applicable).
    pub records: usize,
    /// Candidate/similarity pairs processed (0 when not applicable).
    pub pairs: usize,
    /// `records / seconds` (0 when no records).
    pub records_per_sec: f64,
    /// `pairs / seconds` (0 when no pairs).
    pub pairs_per_sec: f64,
}

impl Throughput {
    /// Builds a throughput record from raw counts; rates are 0 when `seconds` is 0.
    pub fn from_counts(seconds: f64, records: usize, pairs: usize) -> Self {
        let rate = |count: usize| {
            if seconds > 0.0 {
                count as f64 / seconds
            } else {
                0.0
            }
        };
        Throughput {
            seconds,
            records,
            pairs,
            records_per_sec: rate(records),
            pairs_per_sec: rate(pairs),
        }
    }

    /// Times `f` over `records` records / `pairs` pairs and builds the record.
    pub fn measure<T>(records: usize, pairs: usize, f: impl FnOnce() -> T) -> (T, Self) {
        let start = std::time::Instant::now();
        let out = f();
        let t = Self::from_counts(start.elapsed().as_secs_f64(), records, pairs);
        (out, t)
    }
}

/// A labeled throughput measurement (`stage` names the pipeline step).
#[derive(Clone, Debug, Serialize)]
pub struct StageThroughput {
    /// Pipeline step, e.g. `embed_all` or `knn_join`.
    pub stage: String,
    /// Dataset or workload label.
    pub workload: String,
    /// The measurement.
    pub throughput: Throughput,
}

/// Prints an aligned text table (header + rows) to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Persists experiment results as JSON under `target/experiments/<name>.json`.
pub struct ResultWriter {
    directory: PathBuf,
}

impl Default for ResultWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultWriter {
    /// Creates the writer (and the output directory).
    pub fn new() -> Self {
        let directory = PathBuf::from("target/experiments");
        let _ = fs::create_dir_all(&directory);
        ResultWriter { directory }
    }

    /// Writes a serializable value as pretty JSON; failures are reported but non-fatal.
    pub fn write<T: Serialize>(&self, name: &str, value: &T) {
        let path = self.directory.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("(results written to {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
        }
    }
}

/// Formats an `f32` with one decimal as the paper's F1 tables do (scores in percent).
pub fn pct(x: f32) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_falls_back_to_defaults() {
        let c = HarnessConfig::default();
        assert_eq!(c.scale, 0.2);
        assert!(!c.quick);
        let sc = c.sudowoodo_config();
        assert!(sc.max_corpus_size <= 2_000);
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.783), "78.3");
        assert_eq!(pct(1.0), "100.0");
    }

    #[test]
    fn throughput_rates_follow_counts() {
        let t = Throughput::from_counts(2.0, 4_000, 40_000);
        assert_eq!(t.records_per_sec, 2_000.0);
        assert_eq!(t.pairs_per_sec, 20_000.0);
        let zero = Throughput::from_counts(0.0, 10, 10);
        assert_eq!(zero.records_per_sec, 0.0);
        let (value, m) = Throughput::measure(8, 0, || 42);
        assert_eq!(value, 42);
        assert_eq!(m.records, 8);
        assert!(m.seconds >= 0.0);
    }

    #[test]
    fn result_writer_creates_files() {
        let writer = ResultWriter::new();
        writer.write("harness_smoke_test", &vec![1, 2, 3]);
        assert!(std::path::Path::new("target/experiments/harness_smoke_test.json").exists());
    }
}
