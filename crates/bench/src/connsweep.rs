//! Connection-count sweep for the readiness-polled serving layer.
//!
//! Parks a crowd of **idle** connections against a running server, then drives a
//! small **active** client set through the crowd, timing every request. Under the
//! old thread-per-connection server each idle connection cost a handler thread
//! polling on a read timeout; under the reactor they are parked descriptors, so
//! per-request latency (p50/p99) should hold roughly flat from a handful of
//! connections to ten thousand. `serve_bench` prints the sweep and
//! `perf_speedup` gates on it (structurally — the sweep must attach its clamped
//! connection target and report finite percentiles; latency itself is
//! runner-dependent and never floored).
//!
//! An in-process sweep pays **two** file descriptors per connection (client end
//! and server end live in the same process), so targets are clamped against the
//! soft fd rlimit with headroom for everything else the process has open.

use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;
use sudowoodo_serve::ServeClient;

/// Descriptor headroom reserved for everything that is not a sweep connection
/// (snapshot files, listener, wakers, stdio, ...).
const FD_HEADROOM: u64 = 512;

/// One measured sweep level: a fixed idle-connection crowd plus a small active
/// client set, with aggregate throughput and per-request latency percentiles.
#[derive(Clone, Debug, Serialize)]
pub struct SweepLevel {
    /// Idle connections the level asked for.
    pub idle_target: usize,
    /// Idle connections actually parked: the target clamped by the fd rlimit
    /// (see [`clamp_idle_target`]).
    pub idle_attached: usize,
    /// Concurrently querying clients driven through the idle crowd.
    pub active_clients: usize,
    /// Requests timed across all active clients.
    pub requests: usize,
    /// Queries per request batch.
    pub batch: usize,
    /// Wall-clock seconds for the active phase (idle setup excluded).
    pub seconds: f64,
    /// `requests * batch / seconds`.
    pub queries_per_sec: f64,
    /// Median per-request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency in milliseconds.
    pub p99_ms: f64,
}

/// The process's soft limit on open file descriptors, parsed from
/// `/proc/self/limits`. `None` where that file does not exist (non-Linux) or
/// the limit is unlimited.
pub fn fd_soft_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line["Max open files".len()..]
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// Clamps an idle-connection target so the sweep never exhausts descriptors:
/// two fds per in-process connection, 512 reserved as headroom. Falls back to
/// 1024 connections when the limit cannot be read.
pub fn clamp_idle_target(target: usize) -> usize {
    match fd_soft_limit() {
        Some(limit) => target.min((limit.saturating_sub(FD_HEADROOM) / 2) as usize),
        None => target.min(1024),
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0.0 ..= 1.0).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs one sweep level against a live server: parks `idle_target` (clamped)
/// idle connections, then times `active_clients` clients each sending
/// `requests_per_client` identical `knn_join` batches through the crowd.
///
/// # Panics
/// If an idle connection cannot be established after retries, or an active
/// request fails — a sweep level that cannot hold its connections is a bug in
/// the serving layer, not a measurement.
pub fn sweep_level(
    addr: SocketAddr,
    queries: &[Vec<f32>],
    k: usize,
    idle_target: usize,
    active_clients: usize,
    requests_per_client: usize,
) -> SweepLevel {
    let idle_attached = clamp_idle_target(idle_target);
    let mut idle = Vec::with_capacity(idle_attached);
    for i in 0..idle_attached {
        // A connect burst can momentarily outrun the accept backlog; retry
        // briefly instead of failing the sweep on a transient refusal.
        let conn = (0..200)
            .find_map(|attempt| match TcpStream::connect(addr) {
                Ok(conn) => Some(conn),
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(1 + attempt / 50));
                    None
                }
            })
            .unwrap_or_else(|| panic!("idle connection {i}/{idle_attached} failed to attach"));
        idle.push(conn);
    }

    let latencies_ms = Mutex::new(Vec::with_capacity(active_clients * requests_per_client));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..active_clients {
            let latencies_ms = &latencies_ms;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("active sweep connect");
                let mut local = Vec::with_capacity(requests_per_client);
                for _ in 0..requests_per_client {
                    let sent = Instant::now();
                    let pairs = client.knn_join(queries, k).expect("sweep join");
                    std::hint::black_box(&pairs);
                    local.push(sent.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms.lock().unwrap().extend(local);
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    drop(idle);

    let mut sorted_ms = latencies_ms.into_inner().unwrap();
    sorted_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = sorted_ms.len();
    SweepLevel {
        idle_target,
        idle_attached,
        active_clients,
        requests,
        batch: queries.len(),
        seconds,
        queries_per_sec: if seconds > 0.0 {
            (requests * queries.len()) as f64 / seconds
        } else {
            0.0
        },
        p50_ms: percentile(&sorted_ms, 0.50),
        p99_ms: percentile(&sorted_ms, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&sorted, 0.50), 3.0);
        assert_eq!(percentile(&sorted, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn clamping_respects_the_fd_budget() {
        if let Some(limit) = fd_soft_limit() {
            let clamped = clamp_idle_target(usize::MAX);
            assert!(2 * clamped as u64 + FD_HEADROOM <= limit);
        }
        assert!(clamp_idle_target(6) <= 6);
    }
}
