//! One function per table / figure of the paper's evaluation section.
//!
//! Every function prints the table to stdout and returns a [`TableResult`] that the binary
//! wrappers persist as JSON. The functions honour [`HarnessConfig::quick`] by restricting
//! sweeps to representative subsets.

use serde::Serialize;

use sudowoodo_baselines::{
    run_auto_fuzzy_join, run_baran, run_column_baseline_grid, run_deepmatcher_full, run_ditto,
    run_dlblock_curve, run_rotom, run_zeroer, ErrorDetection,
};
use sudowoodo_core::config::SudowoodoConfig;
use sudowoodo_core::pipeline::{CleaningPipeline, ColumnPipeline, EmPipeline};
use sudowoodo_datasets::cleaning::CleaningProfile;
use sudowoodo_datasets::columns::{sample_labeled_pairs, ColumnProfile};
use sudowoodo_datasets::difficulty::difficulty_levels;
use sudowoodo_datasets::em::{EmDataset, EmProfile};

use crate::harness::{pct, print_table, HarnessConfig};

/// A printed table in machine-readable form.
#[derive(Clone, Debug, Serialize)]
pub struct TableResult {
    /// Experiment identifier (e.g. `table05`).
    pub id: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl TableResult {
    fn new(id: &str, header: &[&str], rows: Vec<Vec<String>>) -> Self {
        TableResult {
            id: id.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    /// Prints the table.
    pub fn print(&self, title: &str) {
        let header: Vec<&str> = self.header.iter().map(|s| s.as_str()).collect();
        print_table(title, &header, &self.rows);
    }
}

fn em_profiles(config: &HarnessConfig) -> Vec<EmProfile> {
    if config.quick {
        vec![EmProfile::dblp_acm(), EmProfile::walmart_amazon()]
    } else {
        EmProfile::semi_supervised_suite()
    }
}

fn generate(profile: &EmProfile, config: &HarnessConfig) -> EmDataset {
    profile.generate(config.scale, config.seed)
}

/// Table II / XVII — EM dataset statistics.
pub fn table02_em_datasets(config: &HarnessConfig) -> TableResult {
    let mut rows = Vec::new();
    for profile in EmProfile::full_suite() {
        let stats = profile.generate(config.scale, config.seed).stats();
        rows.push(vec![
            stats.name,
            stats.size_a.to_string(),
            stats.size_b.to_string(),
            stats.train_valid.to_string(),
            stats.test.to_string(),
            format!("{:.1}%", stats.positive_rate * 100.0),
        ]);
    }
    TableResult::new(
        "table02",
        &["Dataset", "TableA", "TableB", "Train+Valid", "Test", "%pos"],
        rows,
    )
}

/// Table V — F1 for semi-supervised matching, including the ablation variants.
pub fn table05_semi_supervised(config: &HarnessConfig) -> TableResult {
    let base = config.sudowoodo_config();
    let budget = config.label_budget;
    let datasets: Vec<EmDataset> = em_profiles(config)
        .iter()
        .map(|p| generate(p, config))
        .collect();

    // (name, runner) pairs; each runner returns the test F1 for one dataset.
    type Runner<'a> = Box<dyn Fn(&EmDataset) -> f32 + 'a>;
    let mut methods: Vec<(String, Runner)> = Vec::new();
    if !config.quick {
        let b = base.clone();
        methods.push((
            "DeepMatcher (full)".to_string(),
            Box::new(move |d| run_deepmatcher_full(d, &b).matching.f1),
        ));
        let b = base.clone();
        methods.push((
            format!("Ditto ({budget})"),
            Box::new(move |d| run_ditto(d, Some(budget), &b).matching.f1),
        ));
        let b = base.clone();
        let larger = budget + budget / 2;
        methods.push((
            format!("Ditto ({larger})"),
            Box::new(move |d| run_ditto(d, Some(larger), &b).matching.f1),
        ));
        let b = base.clone();
        methods.push((
            format!("Rotom ({budget})"),
            Box::new(move |d| run_rotom(d, Some(budget), &b).matching.f1),
        ));
    } else {
        let b = base.clone();
        methods.push((
            format!("Ditto ({budget})"),
            Box::new(move |d| run_ditto(d, Some(budget), &b).matching.f1),
        ));
    }

    let variants: Vec<SudowoodoConfig> = if config.quick {
        vec![
            base.clone().simclr(),
            base.clone().without("PL"),
            base.clone(),
        ]
    } else {
        vec![
            base.clone().simclr(),
            base.clone().without("cut").without("RR").without("cls"),
            base.clone().without("cut").without("RR"),
            base.clone().without("cut"),
            base.clone().without("PL"),
            base.clone().without("RR"),
            base.clone().without("cls"),
            base.clone(),
        ]
    };
    for variant in variants {
        let name = variant.variant_name();
        methods.push((
            name,
            Box::new(move |d| {
                EmPipeline::new(variant.clone())
                    .run(d, Some(budget))
                    .matching
                    .f1
            }),
        ));
    }

    let mut header: Vec<String> = vec!["Method".to_string()];
    header.extend(datasets.iter().map(|d| d.name.clone()));
    header.push("average".to_string());
    let mut rows = Vec::new();
    for (name, runner) in methods {
        let mut row = vec![name];
        let mut scores = Vec::new();
        for dataset in &datasets {
            let f1 = runner(dataset);
            scores.push(f1);
            row.push(pct(f1));
        }
        row.push(pct(scores.iter().sum::<f32>() / scores.len().max(1) as f32));
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    TableResult::new("table05", &header_refs, rows)
}

/// Table VI — F1 for unsupervised matching.
pub fn table06_unsupervised(config: &HarnessConfig) -> TableResult {
    let base = config.sudowoodo_config();
    let datasets: Vec<EmDataset> = em_profiles(config)
        .iter()
        .map(|p| generate(p, config))
        .collect();
    let mut header: Vec<String> = vec!["Method".to_string()];
    header.extend(datasets.iter().map(|d| d.name.clone()));
    header.push("average".to_string());

    type Runner<'a> = Box<dyn Fn(&EmDataset) -> f32 + 'a>;
    let seed = config.seed;
    let simple_variant = base.clone().without("cut").without("RR").without("cls");
    let full_variant = base.clone();
    let methods: Vec<(String, Runner)> = vec![
        (
            "ZeroER".to_string(),
            Box::new(move |d| run_zeroer(d, seed).matching.f1),
        ),
        (
            "Auto-FuzzyJoin".to_string(),
            Box::new(|d| run_auto_fuzzy_join(d).matching.f1),
        ),
        (
            "Sudowoodo (-cut,-RR,-cls)".to_string(),
            Box::new(move |d| {
                EmPipeline::new(simple_variant.clone())
                    .run(d, Some(0))
                    .matching
                    .f1
            }),
        ),
        (
            "Sudowoodo".to_string(),
            Box::new(move |d| {
                EmPipeline::new(full_variant.clone())
                    .run(d, Some(0))
                    .matching
                    .f1
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, runner) in methods {
        let mut row = vec![name];
        let mut scores = Vec::new();
        for dataset in &datasets {
            let f1 = runner(dataset);
            scores.push(f1);
            row.push(pct(f1));
        }
        row.push(pct(scores.iter().sum::<f32>() / scores.len().max(1) as f32));
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    TableResult::new("table06", &header_refs, rows)
}

/// Table VII + Figure 7 — blocking quality (recall / candidate counts / CSSR curves).
pub fn table07_fig07_blocking(config: &HarnessConfig) -> TableResult {
    let base = config.sudowoodo_config();
    let ks: Vec<usize> = if config.quick {
        vec![1, 5, 10, 20]
    } else {
        vec![1, 2, 5, 10, 15, 20]
    };
    let mut rows = Vec::new();
    for profile in em_profiles(config) {
        let dataset = generate(&profile, config);
        let dlblock = run_dlblock_curve(&dataset, &ks);
        let sudowoodo = EmPipeline::new(base.clone()).blocking_curve(&dataset, &ks);
        for (dl, sw) in dlblock.iter().zip(sudowoodo.iter()) {
            rows.push(vec![
                dataset.name.clone(),
                dl.k.to_string(),
                format!("{:.3}", dl.quality.recall),
                dl.quality.num_candidates.to_string(),
                format!("{:.2}%", dl.quality.cssr * 100.0),
                format!("{:.3}", sw.1.recall),
                sw.1.num_candidates.to_string(),
                format!("{:.2}%", sw.1.cssr * 100.0),
            ]);
        }
    }
    TableResult::new(
        "table07_fig07",
        &[
            "Dataset",
            "k",
            "DL-Block R",
            "DL-Block #cand",
            "DL-Block CSSR",
            "Sudowoodo R",
            "Sudowoodo #cand",
            "Sudowoodo CSSR",
        ],
        rows,
    )
}

/// Table VIII — error-correction F1 for data cleaning.
pub fn table08_cleaning(config: &HarnessConfig) -> TableResult {
    let profiles = if config.quick {
        vec![CleaningProfile::beers(), CleaningProfile::hospital()]
    } else {
        CleaningProfile::suite()
    };
    let labeled_rows = 20;
    let base = config.sudowoodo_config();
    let mut no_pretrain = base.clone();
    no_pretrain.pretrain_epochs = 0; // the "RoBERTa-base" analog: fine-tuning only

    let mut header = vec!["Method".to_string()];
    header.extend(profiles.iter().map(|p| p.name.to_string()));
    header.push("average".to_string());
    let mut table: Vec<(String, Vec<f32>)> = vec![
        ("Raha + Baran".to_string(), Vec::new()),
        ("Perfect ED + Baran".to_string(), Vec::new()),
        ("RoBERTa-base (no pre-training)".to_string(), Vec::new()),
        ("Sudowoodo".to_string(), Vec::new()),
    ];
    for profile in &profiles {
        let dataset = profile.generate(config.scale, config.seed);
        table[0].1.push(
            run_baran(
                &dataset,
                ErrorDetection::RahaLike,
                labeled_rows,
                config.seed,
            )
            .correction
            .f1,
        );
        table[1].1.push(
            run_baran(&dataset, ErrorDetection::Perfect, labeled_rows, config.seed)
                .correction
                .f1,
        );
        table[2].1.push(
            CleaningPipeline::new(no_pretrain.clone())
                .run(&dataset, labeled_rows)
                .correction
                .f1,
        );
        table[3].1.push(
            CleaningPipeline::new(base.clone())
                .run(&dataset, labeled_rows)
                .correction
                .f1,
        );
    }
    let rows = table
        .into_iter()
        .map(|(name, scores)| {
            let mut row = vec![name];
            row.extend(scores.iter().map(|&f| pct(f)));
            row.push(pct(scores.iter().sum::<f32>() / scores.len().max(1) as f32));
            row
        })
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    TableResult::new("table08", &header_refs, rows)
}

fn column_setup(
    config: &HarnessConfig,
) -> (
    sudowoodo_datasets::columns::ColumnCorpus,
    Vec<sudowoodo_datasets::ColumnPair>,
    Vec<sudowoodo_datasets::ColumnPair>,
    Vec<sudowoodo_datasets::ColumnPair>,
) {
    let corpus =
        ColumnProfile::default().generate(if config.quick { 0.4 } else { 1.0 }, config.seed);
    // Candidate pairs enriched in same-type pairs, mirroring kNN blocking output.
    let mut candidates = Vec::new();
    for i in 0..corpus.len() {
        if let Some(j) = (i + 1..corpus.len()).find(|&j| corpus.same_type(i, j)) {
            candidates.push((i, j));
        }
        let other = (i * 53 + 17) % corpus.len();
        if other != i {
            candidates.push((i.min(other), i.max(other)));
        }
    }
    let num_pairs = if config.quick { 240 } else { 600 };
    let (train, valid, test) = sample_labeled_pairs(&corpus, &candidates, num_pairs, config.seed);
    (corpus, train, valid, test)
}

/// Tables X / XII — column matching: Sherlock/Sato × classifiers versus Sudowoodo.
pub fn table10_12_column_matching(config: &HarnessConfig) -> TableResult {
    let (corpus, train, valid, test) = column_setup(config);
    let mut rows = Vec::new();
    for result in run_column_baseline_grid(&corpus, &train, &valid, &test, config.seed) {
        rows.push(vec![
            result.method,
            pct(result.valid.precision),
            pct(result.valid.recall),
            pct(result.valid.f1),
            pct(result.test.precision),
            pct(result.test.recall),
            pct(result.test.f1),
        ]);
    }
    let pipeline = ColumnPipeline::new(config.sudowoodo_config());
    let sw = pipeline.run(&corpus, &train, &valid, &test);
    rows.push(vec![
        "Sudowoodo".to_string(),
        pct(sw.valid.precision),
        pct(sw.valid.recall),
        pct(sw.valid.f1),
        pct(sw.test.precision),
        pct(sw.test.recall),
        pct(sw.test.f1),
    ]);
    TableResult::new(
        "table10_12",
        &[
            "Method", "Valid P", "Valid R", "Valid F1", "Test P", "Test R", "Test F1",
        ],
        rows,
    )
}

/// Tables IX / XIII — discovered column clusters: counts, purity, and example clusters.
pub fn table09_13_column_clusters(config: &HarnessConfig) -> TableResult {
    let (corpus, train, valid, test) = column_setup(config);
    let pipeline = ColumnPipeline::new(config.sudowoodo_config());
    let result = pipeline.run(&corpus, &train, &valid, &test);
    let mut rows = vec![
        vec!["#columns".to_string(), corpus.len().to_string()],
        vec![
            "#labeled pairs (train)".to_string(),
            result.labeled_pairs.to_string(),
        ],
        vec![
            "#clusters discovered".to_string(),
            result.num_clusters.to_string(),
        ],
        vec![
            "#multi-column clusters".to_string(),
            result.num_multi_clusters.to_string(),
        ],
        vec![
            "cluster purity".to_string(),
            format!("{:.1}%", result.purity * 100.0),
        ],
        vec![
            "blocking time (s)".to_string(),
            format!("{:.2}", result.blocking_secs),
        ],
        vec![
            "matching time (s)".to_string(),
            format!("{:.2}", result.matching_secs),
        ],
    ];
    // Example fine-grained subtypes present in the corpus (Table IX flavour).
    for fine in ["central eu city", "baseball in-game event", "company name"] {
        if let Some(fine_idx) = corpus.fine_names.iter().position(|n| n == fine) {
            let examples: Vec<String> = corpus
                .columns
                .iter()
                .zip(&corpus.fine_labels)
                .filter(|(_, &f)| f == fine_idx)
                .take(1)
                .flat_map(|(c, _)| c.values.iter().take(3).cloned())
                .collect();
            rows.push(vec![
                format!("example subtype: {fine}"),
                examples.join(" | "),
            ]);
        }
    }
    TableResult::new("table09_13", &["Quantity", "Value"], rows)
}

/// Table XI — pseudo-label quality (TPR / TNR of the generated training set).
pub fn table11_pseudo_quality(config: &HarnessConfig) -> TableResult {
    let base = config.sudowoodo_config();
    let mut rows = Vec::new();
    for profile in em_profiles(config) {
        let dataset = generate(&profile, config);
        for (name, variant, budget) in [
            (
                "SimCLR",
                {
                    // SimCLR with pseudo labels re-enabled to measure raw label quality.
                    let mut v = base.clone().simclr();
                    v.use_pseudo_labels = true;
                    v
                },
                Some(config.label_budget),
            ),
            ("Sudowoodo", base.clone(), Some(config.label_budget)),
            ("Sudowoodo (no label)", base.clone(), Some(0)),
        ] {
            let result = EmPipeline::new(variant).run(&dataset, budget);
            if let Some((tpr, tnr)) = result.pseudo_quality {
                rows.push(vec![
                    dataset.name.clone(),
                    name.to_string(),
                    pct(tpr),
                    pct(tnr),
                    result.num_pseudo_labels.to_string(),
                ]);
            }
        }
    }
    TableResult::new(
        "table11",
        &["Dataset", "Method", "TPR", "TNR", "#pseudo labels"],
        rows,
    )
}

/// Figure 8 — hyper-parameter sensitivity sweeps on one dataset.
pub fn fig08_sensitivity(config: &HarnessConfig) -> TableResult {
    let profile = EmProfile::abt_buy();
    let dataset = generate(&profile, config);
    let base = config.sudowoodo_config();
    let budget = Some(config.label_budget);
    let mut rows = Vec::new();

    let cutoff_ratios: Vec<f32> = if config.quick {
        vec![0.01, 0.05]
    } else {
        vec![0.01, 0.03, 0.05, 0.08]
    };
    for r in cutoff_ratios {
        let mut v = base.clone();
        v.cutoff_ratio = r;
        let f1 = EmPipeline::new(v).run(&dataset, budget).matching.f1;
        rows.push(vec!["cutoff_ratio".into(), format!("{r}"), pct(f1)]);
    }
    let cluster_counts: Vec<usize> = if config.quick {
        vec![4, 16]
    } else {
        vec![4, 8, 16, 32]
    };
    for k in cluster_counts {
        let mut v = base.clone();
        v.num_clusters = k;
        let f1 = EmPipeline::new(v).run(&dataset, budget).matching.f1;
        rows.push(vec!["num_clusters".into(), k.to_string(), pct(f1)]);
    }
    let alphas: Vec<f32> = if config.quick {
        vec![1e-3, 1e-1]
    } else {
        vec![1e-4, 1e-3, 1e-2, 1e-1]
    };
    for a in alphas {
        let mut v = base.clone();
        v.bt_alpha = a;
        let f1 = EmPipeline::new(v).run(&dataset, budget).matching.f1;
        rows.push(vec!["alpha_bt".into(), format!("{a}"), pct(f1)]);
    }
    let multipliers: Vec<usize> = if config.quick {
        vec![2, 8]
    } else {
        vec![2, 4, 6, 8, 10]
    };
    for m in multipliers {
        let mut v = base.clone();
        v.pseudo_multiplier = m;
        let f1 = EmPipeline::new(v).run(&dataset, budget).matching.f1;
        rows.push(vec!["multiplier".into(), m.to_string(), pct(f1)]);
    }
    TableResult::new("fig08", &["Hyper-parameter", "Value", "F1 (Abt-Buy)"], rows)
}

/// Figures 9 / 10 / 11 — running time of EM, blocking, and data cleaning.
pub fn fig09_11_runtime(config: &HarnessConfig) -> TableResult {
    let base = config.sudowoodo_config();
    let budget = Some(config.label_budget);
    let mut rows = Vec::new();
    for profile in em_profiles(config) {
        let dataset = generate(&profile, config);
        let simclr = EmPipeline::new(base.clone().simclr()).run(&dataset, budget);
        let sudowoodo = EmPipeline::new(base.clone()).run(&dataset, budget);
        let ditto = run_ditto(&dataset, budget, &base);
        let dm = run_deepmatcher_full(&dataset, &base);
        rows.push(vec![
            "EM (Fig 9)".into(),
            dataset.name.clone(),
            format!("{:.2}", simclr.timings.total_secs),
            format!("{:.2}", ditto.seconds),
            format!("{:.2}", sudowoodo.timings.total_secs),
            format!("{:.2}", dm.seconds),
        ]);
        rows.push(vec![
            "Blocking (Fig 10)".into(),
            dataset.name.clone(),
            format!("{:.2}", sudowoodo.timings.blocking_secs),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    let cleaning_profiles = if config.quick {
        vec![CleaningProfile::beers()]
    } else {
        CleaningProfile::suite()
    };
    let mut no_pretrain = base.clone();
    no_pretrain.pretrain_epochs = 0;
    for profile in cleaning_profiles {
        let dataset = profile.generate(config.scale, config.seed);
        let plain = CleaningPipeline::new(no_pretrain.clone()).run(&dataset, 20);
        let sudowoodo = CleaningPipeline::new(base.clone()).run(&dataset, 20);
        rows.push(vec![
            "Cleaning (Fig 11)".into(),
            dataset.name.clone(),
            format!("{:.2}", plain.pretrain_secs + plain.finetune_secs),
            String::new(),
            format!("{:.2}", sudowoodo.pretrain_secs + sudowoodo.finetune_secs),
            String::new(),
        ]);
    }
    TableResult::new(
        "fig09_11",
        &[
            "Figure",
            "Dataset",
            "SimCLR/RoBERTa (s)",
            "Ditto (s)",
            "Sudowoodo (s)",
            "DeepMatcher full (s)",
        ],
        rows,
    )
}

/// Tables XIV / XV — candidate-correction statistics and the cleaning ablation.
pub fn table14_15_cleaning_detail(config: &HarnessConfig) -> TableResult {
    let profiles = if config.quick {
        vec![CleaningProfile::beers(), CleaningProfile::rayyan()]
    } else {
        CleaningProfile::suite()
    };
    let base = config.sudowoodo_config();
    let mut rows = Vec::new();
    for profile in &profiles {
        let dataset = profile.generate(config.scale, config.seed);
        let stats = dataset.stats();
        rows.push(vec![
            "candidates (Table XIV)".into(),
            stats.name.clone(),
            format!("coverage {:.1}%", stats.coverage * 100.0),
            format!("#cand {:.1}", stats.avg_candidates),
            format!("error rate {:.1}%", stats.error_rate * 100.0),
        ]);
        for variant in [
            base.clone().without("cut"),
            base.clone().without("RR"),
            base.clone().without("cls"),
            base.clone(),
        ] {
            let name = variant.variant_name();
            let result = CleaningPipeline::new(variant).run(&dataset, 20);
            rows.push(vec![
                "ablation (Table XV)".into(),
                stats.name.clone(),
                name,
                pct(result.correction.f1),
                String::new(),
            ]);
        }
    }
    TableResult::new(
        "table14_15",
        &["Section", "Dataset", "Entry", "Value", "Extra"],
        rows,
    )
}

/// Table XVI — performance gain of Sudowoodo over Ditto per Jaccard difficulty level.
pub fn table16_difficulty(config: &HarnessConfig) -> TableResult {
    let base = config.sudowoodo_config();
    let budget = Some(config.label_budget);
    let mut rows = Vec::new();
    let profiles = if config.quick {
        vec![EmProfile::abt_buy()]
    } else {
        vec![
            EmProfile::abt_buy(),
            EmProfile::walmart_amazon(),
            EmProfile::dblp_acm(),
        ]
    };
    for profile in profiles {
        let dataset = generate(&profile, config);
        // Train both systems once, then evaluate per difficulty level.
        let pipeline = EmPipeline::new(base.clone());
        let (encoder, _) = pipeline.pretrain_encoder(&dataset);
        let (candidates, _) = pipeline.block(&encoder, &dataset, base.blocking_k);
        let labeled = pipeline.sample_labels(&dataset, budget);
        let gold: std::collections::HashSet<(usize, usize)> =
            dataset.gold_matches.iter().copied().collect();
        let pseudo = sudowoodo_core::generate_pseudo_labels(
            &candidates,
            base.pseudo_positive_ratio,
            labeled.len() * base.pseudo_multiplier.saturating_sub(1),
        );
        let _ = &gold;
        let texts_a: Vec<String> = dataset
            .table_a
            .iter()
            .map(sudowoodo_text::serialize_record)
            .collect();
        let texts_b: Vec<String> = dataset
            .table_b
            .iter()
            .map(sudowoodo_text::serialize_record)
            .collect();
        let mut train_pairs: Vec<sudowoodo_core::TrainPair> = labeled
            .iter()
            .map(|p| {
                sudowoodo_core::TrainPair::new(texts_a[p.a].clone(), texts_b[p.b].clone(), p.label)
            })
            .collect();
        train_pairs.extend(pseudo.labels.iter().map(|p| {
            sudowoodo_core::TrainPair::new(texts_a[p.a].clone(), texts_b[p.b].clone(), p.label)
        }));
        let mut sudowoodo_matcher =
            sudowoodo_core::PairMatcher::new(encoder, base.use_diff_head, base.seed);
        sudowoodo_matcher.fine_tune(
            &train_pairs,
            &sudowoodo_core::FineTuneConfig {
                epochs: base.finetune_epochs,
                batch_size: base.finetune_batch_size,
                learning_rate: base.finetune_lr,
                seed: base.seed,
            },
        );
        // Ditto-like: random-init encoder, labeled pairs only, concat head.
        let ditto_encoder =
            sudowoodo_core::Encoder::from_corpus(base.encoder, &dataset.corpus(), base.seed);
        let mut ditto_matcher = sudowoodo_core::PairMatcher::new(ditto_encoder, false, base.seed);
        let labeled_pairs: Vec<sudowoodo_core::TrainPair> = labeled
            .iter()
            .map(|p| {
                sudowoodo_core::TrainPair::new(texts_a[p.a].clone(), texts_b[p.b].clone(), p.label)
            })
            .collect();
        ditto_matcher.fine_tune(
            &labeled_pairs,
            &sudowoodo_core::FineTuneConfig {
                epochs: base.finetune_epochs,
                batch_size: base.finetune_batch_size,
                learning_rate: base.finetune_lr,
                seed: base.seed,
            },
        );

        for level in difficulty_levels(&dataset, &dataset.test, 5) {
            let sw = sudowoodo_core::pipeline::em::evaluate_matcher(
                &sudowoodo_matcher,
                &dataset,
                &level.pairs,
                0.5,
            );
            let ditto = sudowoodo_core::pipeline::em::evaluate_matcher(
                &ditto_matcher,
                &dataset,
                &level.pairs,
                0.5,
            );
            rows.push(vec![
                dataset.name.clone(),
                level.level.to_string(),
                pct(ditto.f1),
                pct(sw.f1),
                format!(
                    "[{:.2}, {:.2}]",
                    level.positive_jaccard_range.0, level.positive_jaccard_range.1
                ),
                format!(
                    "[{:.2}, {:.2}]",
                    level.negative_jaccard_range.0, level.negative_jaccard_range.1
                ),
            ]);
        }
    }
    TableResult::new(
        "table16",
        &[
            "Dataset",
            "Difficulty",
            "Ditto F1",
            "Sudowoodo F1",
            "pos Jaccard",
            "neg Jaccard",
        ],
        rows,
    )
}

/// Table XVIII — fully supervised EM.
pub fn table18_full_supervised(config: &HarnessConfig) -> TableResult {
    let base = config.sudowoodo_config();
    let profiles = if config.quick {
        vec![EmProfile::beer(), EmProfile::fodors_zagats()]
    } else {
        EmProfile::full_suite()
    };
    let mut rows = Vec::new();
    for profile in profiles {
        let dataset = generate(&profile, config);
        let dm = run_deepmatcher_full(&dataset, &base).matching.f1;
        let ditto = run_ditto(&dataset, None, &base).matching.f1;
        let mut no_pl = base.clone().without("PL"); // full supervision: no pseudo labels
        no_pl.use_pseudo_labels = false;
        let without_rr = EmPipeline::new(no_pl.clone().without("RR"))
            .run(&dataset, None)
            .matching
            .f1;
        let full = EmPipeline::new(no_pl).run(&dataset, None).matching.f1;
        rows.push(vec![
            dataset.name.clone(),
            pct(dm),
            pct(ditto),
            pct(without_rr),
            pct(full),
        ]);
    }
    TableResult::new(
        "table18",
        &[
            "Dataset",
            "DeepMatcher",
            "Ditto",
            "Sudowoodo (w/o RR)",
            "Sudowoodo",
        ],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> HarnessConfig {
        HarnessConfig {
            scale: 0.06,
            quick: true,
            seed: 3,
            label_budget: 30,
        }
    }

    #[test]
    fn table02_lists_all_eight_datasets() {
        let t = table02_em_datasets(&tiny_harness());
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.header.len(), 6);
    }

    #[test]
    fn quick_blocking_table_has_rows_for_each_k_and_dataset() {
        let t = table07_fig07_blocking(&tiny_harness());
        assert_eq!(t.rows.len(), 2 * 4); // 2 quick datasets x 4 ks
    }

    #[test]
    fn quick_unsupervised_table_runs() {
        let t = table06_unsupervised(&tiny_harness());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.header.len(), 2 + 2); // Method + 2 datasets + average
    }

    #[test]
    fn quick_pseudo_quality_table_runs() {
        let t = table11_pseudo_quality(&tiny_harness());
        assert!(!t.rows.is_empty());
        assert_eq!(t.header.len(), 5);
    }
}
