//! # sudowoodo-bench
//!
//! The experiment harness: one function (and one binary under `src/bin/`) per table and
//! figure of the paper's evaluation section. Every function prints the same rows/series the
//! paper reports and writes a machine-readable JSON copy under `target/experiments/`.
//!
//! Runtime is controlled by two environment variables:
//!
//! * `SUDOWOODO_SCALE` — dataset scale factor (default 0.2; the paper's datasets are larger
//!   but the synthetic generators preserve their relative difficulty at any scale);
//! * `SUDOWOODO_QUICK` — when set to `1`, restricts sweeps to fewer datasets / variants so a
//!   full pass of all binaries completes in minutes on a laptop.

#![warn(missing_docs)]

pub mod connsweep;
pub mod experiments;
pub mod harness;

pub use harness::{HarnessConfig, ResultWriter};
